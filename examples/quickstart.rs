//! Quickstart: compress an ensemble of time-series classifiers into one
//! lightweight (8-bit) model with LightTS.
//!
//! This walks the paper's Problem Scenario 1 end-to-end on a small synthetic
//! dataset: train a teacher ensemble, run adaptive ensemble distillation
//! with confident teacher removal, and compare the student against the
//! full-precision ensemble on held-out data.
//!
//! Run with: `cargo run --release --example quickstart`

use lightts::prelude::*;
use lightts_bench_free::*;

/// Tiny helpers so the example stays self-contained.
mod lightts_bench_free {
    use lightts::prelude::*;

    /// Test-set accuracy of any classifier.
    pub fn test_accuracy(clf: &dyn Classifier, splits: &Splits) -> f64 {
        let probs = clf.predict_proba_dataset(&splits.test).expect("prediction");
        accuracy(&probs, splits.test.labels()).expect("accuracy")
    }
}

fn main() {
    // 1. Data: the synthetic analogue of UCR's FaceAll (14 classes).
    //    Scale::quick() keeps everything laptop-sized.
    let spec = lightts::data::archive::table1("FaceAll").expect("known dataset");
    let splits = spec.generate(Scale::quick());
    println!(
        "dataset: {} — {} classes, {} train / {} val / {} test series of length {}",
        splits.name(),
        splits.num_classes(),
        splits.train.len(),
        splits.validation.len(),
        splits.test.len(),
        splits.train.series_len()
    );

    // 2. Teachers: an ensemble of 5 InceptionTime base models with
    //    decorrelated seeds (the paper uses 10).
    let ens_cfg = EnsembleTrainConfig {
        n_members: 5,
        filters: 6,
        inception: TrainConfig { epochs: 16, ..TrainConfig::default() },
        ..EnsembleTrainConfig::default()
    };
    println!("training {} InceptionTime teachers…", ens_cfg.n_members);
    let ensemble =
        train_ensemble(BaseModelKind::InceptionTime, &splits.train, &ens_cfg).expect("teachers");
    let ens_acc = test_accuracy(&ensemble, &splits);
    println!("FP-Ensem test accuracy: {ens_acc:.3}");

    // 3. LightTS: distill into an 8-bit student (3 blocks × 3 layers).
    let mut cfg = LightTsConfig { filters: 6, ..LightTsConfig::default() };
    cfg.distill.aed.train.epochs = 16;
    cfg.distill.aed.v = 4;
    let lightts = LightTs::new(cfg);
    println!("distilling an 8-bit student with AED + confident teacher removal…");
    let outcome = lightts.distill(&splits, &ensemble, 8).expect("distillation");

    // 4. Compare.
    let student_acc = test_accuracy(&outcome.student, &splits);
    println!(
        "LightTS student: test accuracy {:.3} (val {:.3}), kept teachers {:?}",
        student_acc, outcome.val_accuracy, outcome.kept_teachers
    );
    println!(
        "model size: student {} KB vs ensemble member count {} × full precision",
        outcome.student.size_bits() / 8 / 1024,
        ensemble.len()
    );
    println!("compression: the 8-bit student stores {} bits/parameter instead of 32", 8);
}
