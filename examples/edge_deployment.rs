//! Edge deployment: pick the best model under a device storage budget.
//!
//! The paper's motivating scenario (Section 1): power-electronics edge
//! devices with hard memory limits need the most accurate classifier that
//! *fits*. This example runs Problem Scenario 2 — encoded multi-objective
//! Bayesian optimization over student settings — and then answers two
//! device queries from the resulting Pareto frontier, like Figure 2's
//! "Device #1 (100K) → Model U, Device #2 (140K) → Model V".
//!
//! Run with: `cargo run --release --example edge_deployment`

use lightts::prelude::*;
use lightts::search::encoder::EncoderConfig;

fn main() {
    // Workload classification on a PE-like synthetic dataset: use the UWave
    // analogue (multivariate, 8 classes) for variety.
    let spec = lightts::data::archive::table1("UWave").expect("known dataset");
    let splits = spec.generate(Scale::quick());
    println!(
        "dataset: {} — {} classes, {}-dimensional series",
        splits.name(),
        splits.num_classes(),
        splits.train.dims()
    );

    // Teachers (kept small so the example runs in ~2 minutes).
    let ens_cfg = EnsembleTrainConfig {
        n_members: 4,
        filters: 6,
        inception: TrainConfig { epochs: 12, ..TrainConfig::default() },
        ..EnsembleTrainConfig::default()
    };
    println!("training {} teachers…", ens_cfg.n_members);
    let ensemble =
        train_ensemble(BaseModelKind::InceptionTime, &splits.train, &ens_cfg).expect("teachers");
    let teachers = TeacherProbs::compute(&ensemble, &splits).expect("teacher probs");

    // Scenario 2: search the accuracy/size trade-off space.
    let mut cfg = LightTsConfig { filters: 6, ..LightTsConfig::default() };
    cfg.distill.aed.train.epochs = 10;
    cfg.distill.aed.v = 4;
    cfg.mobo = MoboConfig {
        q: 12,
        p_init: 4,
        candidates: 128,
        repr: SpaceRepr::TwoPhaseEncoder,
        encoder: EncoderConfig { epochs: 40, r_samples: 384, ..EncoderConfig::default() },
        encoder_refresh: 8,
        seed: 7,
    };
    let lightts = LightTs::new(cfg);
    let space = lightts.default_space(&splits);
    println!(
        "searching {} candidate settings with encoded MOBO ({} AED evaluations)…",
        space.cardinality(),
        lightts.config().mobo.q
    );
    let run = lightts.pareto_frontier(&splits, &teachers, &space).expect("search");
    println!(
        "evaluated {} settings in {:.1}s; frontier has {} points:",
        run.stats.evaluations,
        run.stats.oracle_seconds,
        run.frontier().len()
    );
    println!("  setting                         accuracy  size");
    for p in run.frontier() {
        println!(
            "  {:<30}  {:.3}     {:>7.1} KB",
            p.setting.display(),
            p.accuracy,
            lightts::nn::size::bits_to_kb(p.size_bits)
        );
    }

    // Device queries: the paper's Figure 2 selection.
    let sizes: Vec<u64> = run.frontier().iter().map(|p| p.size_bits / 8).collect();
    let mid = sizes.iter().sum::<u64>() / sizes.len().max(1) as u64;
    for (device, budget_bytes) in [("Device #1", mid / 2), ("Device #2", mid * 2)] {
        match lightts.select_for_budget(run.frontier(), budget_bytes) {
            Some(p) => println!(
                "{device} (budget {} KB): use {} — accuracy {:.3} at {:.1} KB",
                budget_bytes / 1024,
                p.setting.display(),
                p.accuracy,
                lightts::nn::size::bits_to_kb(p.size_bits)
            ),
            None => println!(
                "{device} (budget {} KB): no frontier model fits; relax the budget",
                budget_bytes / 1024
            ),
        }
    }
}
