//! LightTS is model-agnostic: distilling from non-deep teachers.
//!
//! The paper's Table 4 shows LightTS transferring knowledge from Temporal
//! Dictionary Ensembles, Canonical Interval Forests, and Time Series
//! Forests into a quantized convolutional student — teachers and student
//! share nothing but the class-distribution interface. This example runs
//! one such transfer per teacher family and contrasts LightTS with Classic
//! KD.
//!
//! Run with: `cargo run --release --example nondeep_teachers`

use lightts::prelude::*;

fn test_accuracy(clf: &dyn Classifier, splits: &Splits) -> f64 {
    let probs = clf.predict_proba_dataset(&splits.test).expect("prediction");
    accuracy(&probs, splits.test.labels()).expect("accuracy")
}

fn main() {
    let spec = lightts::data::archive::table1("Adiac").expect("known dataset");
    let splits = spec.generate(Scale::quick());
    println!("dataset: {} ({} classes)\n", splits.name(), splits.num_classes());

    let mut cfg = LightTsConfig { filters: 6, ..LightTsConfig::default() };
    cfg.distill.aed.train.epochs = 14;
    cfg.distill.aed.v = 4;
    let lightts = LightTs::new(cfg.clone());

    println!("teachers       FP-Ensem   Classic KD   LightTS   (4-bit students)");
    for kind in [BaseModelKind::Tde, BaseModelKind::Cif, BaseModelKind::Forest] {
        let ens_cfg = EnsembleTrainConfig { n_members: 5, ..EnsembleTrainConfig::default() };
        let ensemble = train_ensemble(kind, &splits.train, &ens_cfg).expect("teachers");
        let teachers = TeacherProbs::compute(&ensemble, &splits).expect("teacher probs");
        let ens_acc = test_accuracy(&ensemble, &splits);

        let student_cfg = InceptionConfig::student(
            splits.train.dims(),
            splits.train.series_len(),
            splits.num_classes(),
            6,
            4,
        );
        let classic = run_method(Method::ClassicKd, &splits, &teachers, &student_cfg, &cfg.distill)
            .expect("classic KD");
        let classic_acc = test_accuracy(&classic.student, &splits);

        let ours = lightts.distill_with_config(&splits, &teachers, &student_cfg).expect("LightTS");
        let ours_acc = test_accuracy(&ours.student, &splits);

        println!(
            "{:<14} {:>8.3}   {:>10.3}   {:>7.3}   kept {:?}",
            kind.as_str(),
            ens_acc,
            classic_acc,
            ours_acc,
            ours.kept_teachers
        );
    }
    println!("\nThe architecture gap between tree/dictionary teachers and the");
    println!("convolutional student is where adaptive teacher selection matters most.");
}
