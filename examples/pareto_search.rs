//! Comparing search strategies for the accuracy/size Pareto frontier.
//!
//! Reproduces the spirit of the paper's Figure 22 interactively: the same
//! AED accuracy oracle explored by Random search, classic MOBO on the raw
//! setting space, and Encoded MOBO on the two-phase latent — then compares
//! the resulting frontiers by hypervolume.
//!
//! Run with: `cargo run --release --example pareto_search`

use lightts::distill::aed::run_aed;
use lightts::prelude::*;
use lightts::search::encoder::EncoderConfig;
use lightts::search::mobo::{random_search, run_mobo};
use lightts::search::pareto::hypervolume;

fn main() {
    let spec = lightts::data::archive::table1("Crop").expect("known dataset");
    let splits = spec.generate(Scale::quick());
    println!("dataset: {} ({} classes)", splits.name(), splits.num_classes());

    let ens_cfg = EnsembleTrainConfig {
        n_members: 4,
        filters: 6,
        inception: TrainConfig { epochs: 12, ..TrainConfig::default() },
        ..EnsembleTrainConfig::default()
    };
    let ensemble =
        train_ensemble(BaseModelKind::InceptionTime, &splits.train, &ens_cfg).expect("teachers");
    let teachers = TeacherProbs::compute(&ensemble, &splits).expect("teacher probs");

    let space = SearchSpace::paper_default(
        splits.train.dims(),
        splits.train.series_len(),
        splits.num_classes(),
        6,
    );
    let aed = AedConfig {
        train: StudentTrainOpts { epochs: 10, ..StudentTrainOpts::default() },
        v: 4,
        ..AedConfig::default()
    };
    let oracle = |s: &StudentSetting| -> Result<f64, String> {
        run_aed(&splits, &teachers, &s.to_config(&space), &aed)
            .map(|r| r.val_accuracy)
            .map_err(|e| e.to_string())
    };

    let q = 10usize;
    let base_mobo = MoboConfig {
        q,
        p_init: 4,
        candidates: 128,
        repr: SpaceRepr::Original,
        encoder: EncoderConfig { epochs: 40, r_samples: 384, ..EncoderConfig::default() },
        encoder_refresh: 8,
        seed: 11,
    };

    println!("running Random / MOBO / Encoded MOBO with Q = {q} AED evaluations each…");
    let random = random_search(&space, oracle, q, 11).expect("random");
    let mobo = run_mobo(&space, oracle, &base_mobo).expect("mobo");
    let encoded =
        run_mobo(&space, oracle, &MoboConfig { repr: SpaceRepr::TwoPhaseEncoder, ..base_mobo })
            .expect("encoded mobo");

    let ref_size = space.max_size_bits();
    println!("\nstrategy       frontier  hypervolume");
    for (name, out) in [("Random", &random), ("MOBO", &mobo), ("Encoded MOBO", &encoded)] {
        println!(
            "{name:<14} {:>8}  {:.4e}",
            out.frontier.len(),
            hypervolume(&out.frontier, ref_size)
        );
    }
    println!("\nEncoded MOBO frontier:");
    for p in &encoded.frontier {
        println!(
            "  {:<30} acc {:.3} @ {:>7.1} KB",
            p.setting.display(),
            p.accuracy,
            lightts::nn::size::bits_to_kb(p.size_bits)
        );
    }
}
