//! Forecasting with AED — the paper's Section 3.2.1 extension.
//!
//! Replaces the cross-entropy term of the AED loss with mean squared error:
//! an ensemble of convolutional forecasters teaches a small quantized
//! forecaster, with the same bi-level teacher weighting and confident
//! removal as classification.
//!
//! Run with: `cargo run --release --example forecast_distill`

use lightts::data::forecast::{synthetic_series, windows_from_series};
use lightts::distill::forecast::{forecast_lightts, ForecastAedConfig, ForecastTeachers};
use lightts::models::forecaster::{ForecastConfig, Forecaster};
use lightts::tensor::rng::seeded;

fn main() {
    // A long synthetic series with trend + two seasonalities.
    let series = synthetic_series(1, 600, 0.08, 42);
    let splits =
        windows_from_series("grid-load", &series, 24, 4, 2, 0.15, 0.15).expect("windowing");
    println!(
        "forecasting task: history {} → horizon {}, {} train / {} val / {} test windows",
        splits.train.history(),
        splits.train.horizon(),
        splits.train.len(),
        splits.validation.len(),
        splits.test.len()
    );

    // Teacher ensemble: four full-precision forecasters, different seeds.
    println!("training 4 teacher forecasters…");
    let teachers: Vec<Forecaster> = (0..4)
        .map(|i| {
            let cfg = ForecastConfig::for_task(&splits.train, 6, 32);
            let mut rng = seeded(100 + i);
            let mut f = Forecaster::new(cfg, &mut rng).expect("teacher");
            f.fit(&splits.train, 25, 0.01, 200 + i).expect("teacher training");
            f
        })
        .collect();
    for (i, t) in teachers.iter().enumerate() {
        println!("  teacher {i}: test MSE {:.4}", t.mse_on(&splits.test).expect("eval"));
    }
    let tprobs = ForecastTeachers::compute(&teachers, &splits).expect("teacher predictions");

    // Distill into an 8-bit student with forecast LightTS.
    let student_cfg = ForecastConfig::for_task(&splits.train, 6, 8);
    let aed = ForecastAedConfig { epochs: 20, v: 4, ..ForecastAedConfig::default() };
    println!("distilling an 8-bit student (AED-MSE + teacher removal)…");
    let result = forecast_lightts(&splits, &tprobs, &student_cfg, &aed).expect("distillation");
    println!(
        "student: validation MSE {:.4}, test MSE {:.4}, size {} KB",
        result.val_mse,
        result.student.mse_on(&splits.test).expect("eval"),
        result.student.size_bits() / 8 / 1024
    );
    println!("final teacher weights: {:?}", result.weights);
}
