//! Process-wide runtime configuration for the tensor execution layer.
//!
//! The tensor kernels (convolution, matmul, elementwise, reductions) run on
//! a shared thread pool when the `parallel` cargo feature is enabled (the
//! default). This module is the user-facing switchboard:
//!
//! ```no_run
//! // Pin the kernels to 4 threads (including the calling thread).
//! lightts::runtime::set_num_threads(4);
//! assert_eq!(lightts::runtime::num_threads(), 4);
//! ```
//!
//! Thread-count resolution order:
//! 1. [`set_num_threads`] — takes effect for all subsequent kernel calls;
//! 2. the `LIGHTTS_NUM_THREADS` environment variable;
//! 3. `std::thread::available_parallelism()`.
//!
//! Setting one thread (or building with `--no-default-features`) yields the
//! fully serial kernels. Either way results are bitwise identical: parallel
//! kernels only split work along disjoint output rows and reduce in fixed
//! chunk order, never reassociating arithmetic across threads.

pub use lightts_tensor::par::{num_threads, set_num_threads};
