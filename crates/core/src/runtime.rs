//! Process-wide runtime configuration for the tensor execution layer.
//!
//! The tensor kernels (convolution, matmul, elementwise, reductions) run on
//! a shared thread pool when the `parallel` cargo feature is enabled (the
//! default). This module is the user-facing switchboard:
//!
//! ```no_run
//! // Pin the kernels to 4 threads (including the calling thread).
//! lightts::runtime::set_num_threads(4);
//! assert_eq!(lightts::runtime::num_threads(), 4);
//! ```
//!
//! Thread-count resolution order:
//! 1. [`set_num_threads`] — takes effect for all subsequent kernel calls;
//! 2. the `LIGHTTS_NUM_THREADS` environment variable;
//! 3. `std::thread::available_parallelism()`.
//!
//! Setting one thread (or building with `--no-default-features`) yields the
//! fully serial kernels. Either way results are bitwise identical: parallel
//! kernels only split work along disjoint output rows and reduce in fixed
//! chunk order, never reassociating arithmetic across threads.
//!
//! The same kernels also dispatch onto a SIMD backend (AVX2+FMA, SSE2, or
//! a scalar oracle), resolved once per process:
//! 1. [`set_simd_backend`] — explicit override, clamped to CPU support;
//! 2. the `LIGHTTS_SIMD` environment variable (`avx2`/`sse2`/`scalar`);
//! 3. runtime CPU feature detection.
//!
//! Unlike the thread count, the backend *can* change result bits — but only
//! for the FMA-fused GEMM/convolution family, only between AVX2 and the
//! scalar/SSE2 pair, and deterministically per backend. The full contract
//! is in `docs/NUMERICS.md`.

pub use lightts_tensor::par::{num_threads, set_num_threads};
pub use lightts_tensor::simd::{
    backend as simd_backend, cpu_supports, set_simd_backend, SimdBackend,
};
