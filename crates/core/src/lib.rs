//! # lightts
//!
//! **LightTS: Lightweight Time Series Classification with Adaptive Ensemble
//! Distillation** — a from-scratch Rust reproduction of the SIGMOD 2023
//! paper by Campos et al.
//!
//! LightTS compresses a large ensemble of time-series classifiers into a
//! single lightweight (quantized) model while keeping competitive accuracy.
//! It supports the paper's two problem scenarios:
//!
//! 1. **A student setting is given** (layers, filter lengths, bit-widths):
//!    [`LightTs::distill`] runs adaptive ensemble distillation with
//!    confident Gumbel teacher removal (paper Section 3.2) and returns the
//!    best student found.
//! 2. **Only a storage budget is known**: [`LightTs::pareto_frontier`]
//!    explores the student search space with encoded multi-objective
//!    Bayesian optimization (Section 3.3) and returns the accuracy/size
//!    Pareto frontier; [`LightTs::select_for_budget`] then picks the best
//!    setting under a byte budget.
//!
//! ```no_run
//! use lightts::prelude::*;
//!
//! // data: any UCR-style splits (here: the synthetic Adiac analogue)
//! let spec = lightts::data::archive::table1("Adiac").unwrap();
//! let splits = spec.generate(Scale::quick());
//!
//! // teachers: an ensemble of 10 InceptionTime base models
//! let cfg = EnsembleTrainConfig::default();
//! let ensemble = train_ensemble(BaseModelKind::InceptionTime, &splits.train, &cfg).unwrap();
//!
//! // scenario 1: distill into a 3×3-block 8-bit student
//! let lightts = LightTs::new(LightTsConfig::default());
//! let outcome = lightts.distill(&splits, &ensemble, 8).unwrap();
//! println!("student size: {} bytes", outcome.student.size_bits() / 8);
//! ```
//!
//! The sub-crates are re-exported under short names: [`tensor`], [`nn`],
//! [`data`], [`models`], [`distill`], [`search`], [`serve`], [`stats`];
//! the kernel thread pool is configured through [`runtime`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use lightts_data as data;
pub use lightts_distill as distill;
pub use lightts_models as models;
pub use lightts_nn as nn;
pub use lightts_search as search;
pub use lightts_serve as serve;
pub use lightts_stats as stats;
pub use lightts_tensor as tensor;

mod error;
mod pipeline;
pub mod runtime;

pub use error::LightTsError;
pub use pipeline::{LightTs, LightTsConfig, OracleStats, ParetoRun};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LightTsError>;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::data::{archive, LabeledDataset, Scale, Splits, TimeSeries};
    pub use crate::distill::{
        aed::AedConfig, method::DistillOpts, run_method, trainer::StudentTrainOpts, DistillOutcome,
        Method, TeacherProbs,
    };
    pub use crate::models::ensemble::{
        train_ensemble, BaseModelKind, Ensemble, EnsembleTrainConfig,
    };
    pub use crate::models::inception::{BlockSpec, InceptionConfig, InceptionTime, TrainConfig};
    pub use crate::models::metrics::{accuracy, top_k_accuracy};
    pub use crate::models::Classifier;
    pub use crate::search::mobo::{MoboConfig, SpaceRepr};
    pub use crate::search::pareto::best_under_budget;
    pub use crate::search::{Evaluated, SearchSpace, StudentSetting};
    pub use crate::serve::{ModelRegistry, ServeConfig, Server};
    pub use crate::{LightTs, LightTsConfig, ParetoRun};
}
