//! Top-level error type aggregating every subsystem.

use lightts_data::DataError;
use lightts_distill::DistillError;
use lightts_models::ModelError;
use lightts_search::SearchError;
use lightts_stats::StatsError;
use lightts_tensor::TensorError;
use std::fmt;

/// Errors surfaced by the high-level LightTS pipeline.
#[derive(Debug)]
pub enum LightTsError {
    /// Tensor/autodiff failure.
    Tensor(TensorError),
    /// Dataset failure.
    Data(DataError),
    /// Classifier failure.
    Model(ModelError),
    /// Distillation failure.
    Distill(DistillError),
    /// Search failure.
    Search(SearchError),
    /// Statistics failure.
    Stats(StatsError),
    /// Pipeline-level misconfiguration.
    BadConfig {
        /// Description of the violated constraint.
        what: String,
    },
}

impl fmt::Display for LightTsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor: {e}"),
            Self::Data(e) => write!(f, "data: {e}"),
            Self::Model(e) => write!(f, "model: {e}"),
            Self::Distill(e) => write!(f, "distill: {e}"),
            Self::Search(e) => write!(f, "search: {e}"),
            Self::Stats(e) => write!(f, "stats: {e}"),
            Self::BadConfig { what } => write!(f, "bad configuration: {what}"),
        }
    }
}

impl std::error::Error for LightTsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            Self::Data(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::Distill(e) => Some(e),
            Self::Search(e) => Some(e),
            Self::Stats(e) => Some(e),
            Self::BadConfig { .. } => None,
        }
    }
}

macro_rules! from_impl {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for LightTsError {
            fn from(e: $ty) -> Self {
                LightTsError::$variant(e)
            }
        }
    };
}

from_impl!(Tensor, TensorError);
from_impl!(Data, DataError);
from_impl!(Model, ModelError);
from_impl!(Distill, DistillError);
from_impl!(Search, SearchError);
from_impl!(Stats, StatsError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: LightTsError = TensorError::Empty { op: "x" }.into();
        assert!(e.to_string().starts_with("tensor:"));
        let e: LightTsError = StatsError::BadInput { what: "w".into() }.into();
        assert!(e.to_string().starts_with("stats:"));
    }
}
