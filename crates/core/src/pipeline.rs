//! The high-level LightTS pipeline: the two problem scenarios of paper
//! Figure 6 behind one ergonomic type.

use crate::{LightTsError, Result};
use lightts_data::Splits;
use lightts_distill::method::{run_method, DistillOpts};
use lightts_distill::removal::RemovalStrategy;
use lightts_distill::{DistillOutcome, Method, TeacherProbs};
use lightts_models::ensemble::Ensemble;
use lightts_models::inception::InceptionConfig;
use lightts_search::mobo::{run_mobo, MoboConfig, MoboOutcome};
use lightts_search::pareto::best_under_budget;
use lightts_search::{Evaluated, SearchSpace, StudentSetting};
use std::cell::RefCell;

/// Configuration of the high-level pipeline.
#[derive(Debug, Clone)]
pub struct LightTsConfig {
    /// Student width (convolution filters per layer).
    pub filters: usize,
    /// Distillation options (AED schedule, baselines' knobs).
    pub distill: DistillOpts,
    /// MOBO options for Problem Scenario 2.
    pub mobo: MoboConfig,
    /// Use the full removal loop inside the Scenario-2 accuracy oracle.
    ///
    /// The paper's complexity analysis runs AED *with* teacher removal for
    /// each of the `Q` evaluations (`O(Q·N·E·BP_w)`); that is faithful but
    /// expensive, so the default uses a single AED run per setting and
    /// reserves the removal loop for the final chosen setting.
    pub oracle_with_removal: bool,
}

impl Default for LightTsConfig {
    fn default() -> Self {
        LightTsConfig {
            filters: 8,
            distill: DistillOpts::default(),
            mobo: MoboConfig::default(),
            oracle_with_removal: false,
        }
    }
}

/// Book-keeping from a Scenario-2 run.
#[derive(Debug, Clone, Default)]
pub struct OracleStats {
    /// Number of AED evaluations performed.
    pub evaluations: usize,
    /// Total seconds spent inside the accuracy oracle.
    pub oracle_seconds: f64,
}

/// The result of a Pareto-frontier search.
#[derive(Debug)]
pub struct ParetoRun {
    /// The underlying search outcome (all evaluations + frontier).
    pub outcome: MoboOutcome,
    /// Oracle accounting.
    pub stats: OracleStats,
}

impl ParetoRun {
    /// The frontier points.
    pub fn frontier(&self) -> &[Evaluated] {
        &self.outcome.frontier
    }
}

/// The LightTS framework object.
///
/// Holds the configuration; all state (data, teachers) is passed per call so
/// one `LightTs` can serve many datasets.
#[derive(Debug, Clone, Default)]
pub struct LightTs {
    config: LightTsConfig,
}

impl LightTs {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: LightTsConfig) -> Self {
        LightTs { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LightTsConfig {
        &self.config
    }

    /// **Problem Scenario 1**: distill the ensemble into a student with the
    /// paper's fixed setting (3 blocks × 3 layers, filter length 40) at the
    /// given uniform bit-width, using full LightTS (AED + confident Gumbel
    /// removal).
    pub fn distill(
        &self,
        splits: &Splits,
        ensemble: &Ensemble,
        bits: u8,
    ) -> Result<DistillOutcome> {
        let teachers = TeacherProbs::compute(ensemble, splits)?;
        let config = InceptionConfig::student(
            splits.train.dims(),
            splits.train.series_len(),
            splits.num_classes(),
            self.config.filters,
            bits,
        );
        self.distill_with_config(splits, &teachers, &config)
    }

    /// Scenario 1 with an explicit student configuration and pre-computed
    /// teacher probabilities.
    pub fn distill_with_config(
        &self,
        splits: &Splits,
        teachers: &TeacherProbs,
        config: &InceptionConfig,
    ) -> Result<DistillOutcome> {
        Ok(run_method(Method::LightTs, splits, teachers, config, &self.config.distill)?)
    }

    /// The paper's default search space for this data shape.
    pub fn default_space(&self, splits: &Splits) -> SearchSpace {
        SearchSpace::paper_default(
            splits.train.dims(),
            splits.train.series_len(),
            splits.num_classes(),
            self.config.filters,
        )
    }

    /// **Problem Scenario 2**: explore `space` with encoded MOBO, using AED
    /// as the accuracy oracle, and return the Pareto frontier.
    pub fn pareto_frontier(
        &self,
        splits: &Splits,
        teachers: &TeacherProbs,
        space: &SearchSpace,
    ) -> Result<ParetoRun> {
        if teachers.is_empty() {
            return Err(LightTsError::BadConfig { what: "no teachers".into() });
        }
        let stats = RefCell::new(OracleStats::default());
        let oracle = |setting: &StudentSetting| -> std::result::Result<f64, String> {
            let t0 = std::time::Instant::now();
            let config = setting.to_config(space);
            let res = if self.config.oracle_with_removal {
                lightts_distill::removal::lightts_removal(
                    splits,
                    teachers,
                    &config,
                    &self.config.distill.aed,
                    RemovalStrategy::GumbelConfident,
                )
                .map(|r| r.val_accuracy)
            } else {
                lightts_distill::aed::run_aed(splits, teachers, &config, &self.config.distill.aed)
                    .map(|r| r.val_accuracy)
            };
            let mut s = stats.borrow_mut();
            s.evaluations += 1;
            s.oracle_seconds += t0.elapsed().as_secs_f64();
            res.map_err(|e| e.to_string())
        };
        let outcome = run_mobo(space, oracle, &self.config.mobo)?;
        Ok(ParetoRun { outcome, stats: stats.into_inner() })
    }

    /// Picks the most accurate frontier setting whose size fits `budget`
    /// bytes (the paper's device-selection query, Figure 2).
    pub fn select_for_budget<'a>(
        &self,
        frontier: &'a [Evaluated],
        budget_bytes: u64,
    ) -> Option<&'a Evaluated> {
        best_under_budget(frontier, budget_bytes.saturating_mul(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::synth::{Generator, SynthConfig};
    use lightts_distill::aed::AedConfig;
    use lightts_distill::trainer::StudentTrainOpts;
    use lightts_distill::weights::WeightTransform;
    use lightts_models::ensemble::{train_ensemble, BaseModelKind, EnsembleTrainConfig};
    use lightts_search::encoder::EncoderConfig;
    use lightts_search::mobo::SpaceRepr;

    fn splits(seed: u64) -> Splits {
        let gen = Generator::new(
            SynthConfig { classes: 2, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
            seed,
        );
        gen.splits("pipeline-test", 40, 20, 20, seed + 1).unwrap()
    }

    fn quick() -> LightTs {
        LightTs::new(LightTsConfig {
            filters: 4,
            distill: DistillOpts {
                aed: AedConfig {
                    train: StudentTrainOpts { epochs: 6, batch_size: 16, ..Default::default() },
                    v: 3,
                    lambda_lr: 2.0,
                    transform: WeightTransform::GumbelConfident { tau: 0.5 },
                },
                ..Default::default()
            },
            mobo: MoboConfig {
                q: 6,
                p_init: 3,
                candidates: 16,
                repr: SpaceRepr::Normalized,
                encoder: EncoderConfig { epochs: 5, r_samples: 32, ..Default::default() },
                encoder_refresh: 8,
                seed: 1,
            },
            oracle_with_removal: false,
        })
    }

    #[test]
    fn scenario1_end_to_end() {
        let s = splits(200);
        let cfg = EnsembleTrainConfig {
            n_members: 2,
            filters: 4,
            inception: lightts_models::inception::TrainConfig {
                epochs: 8,
                batch_size: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        let ens = train_ensemble(BaseModelKind::Forest, &s.train, &cfg).unwrap();
        let out = quick().distill(&s, &ens, 8).unwrap();
        assert!(out.val_accuracy > 0.4, "val acc {}", out.val_accuracy);
        assert!(!out.kept_teachers.is_empty());
        // student really is 8-bit sized: smaller than its 32-bit twin
        let cfg32 = InceptionConfig::student(1, 24, 2, 4, 32);
        assert!(out.student.size_bits() < cfg32.size_bits());
    }

    #[test]
    fn scenario2_small_search() {
        let s = splits(201);
        let cfg =
            EnsembleTrainConfig { n_members: 2, filters: 4, ..EnsembleTrainConfig::default() };
        let ens = train_ensemble(BaseModelKind::Forest, &s.train, &cfg).unwrap();
        let teachers = TeacherProbs::compute(&ens, &s).unwrap();
        let lt = quick();
        // a tiny space so the test is fast
        let mut space = lt.default_space(&s);
        space.layer_choices = vec![1, 2];
        space.filter_choices = vec![8];
        space.bit_choices = vec![4, 8];
        space.blocks = 2;
        let run = lt.pareto_frontier(&s, &teachers, &space).unwrap();
        assert_eq!(run.stats.evaluations, 6);
        assert!(!run.frontier().is_empty());
        assert!(run.stats.oracle_seconds > 0.0);
        // frontier points carry consistent sizes
        for p in run.frontier() {
            assert_eq!(p.size_bits, space.size_bits(&p.setting));
        }
        // budget selection returns the best point that fits
        let largest = run.frontier().iter().map(|p| p.size_bits).max().unwrap();
        let pick = lt.select_for_budget(run.frontier(), largest.div_ceil(8)).unwrap();
        let best_acc = run.frontier().iter().map(|p| p.accuracy).fold(f64::NEG_INFINITY, f64::max);
        assert!((pick.accuracy - best_acc).abs() < 1e-12);
    }

    #[test]
    fn oracle_with_removal_runs_the_full_loop_per_setting() {
        let s = splits(203);
        let cfg =
            EnsembleTrainConfig { n_members: 2, filters: 4, ..EnsembleTrainConfig::default() };
        let ens = train_ensemble(BaseModelKind::Forest, &s.train, &cfg).unwrap();
        let teachers = TeacherProbs::compute(&ens, &s).unwrap();
        let mut lt = quick();
        lt.config.oracle_with_removal = true;
        lt.config.mobo.q = 3;
        lt.config.mobo.p_init = 2;
        let mut space = lt.default_space(&s);
        space.blocks = 1;
        space.layer_choices = vec![1];
        space.filter_choices = vec![8];
        space.bit_choices = vec![4, 8, 16, 32];
        let run = lt.pareto_frontier(&s, &teachers, &space).unwrap();
        assert_eq!(run.stats.evaluations, 3);
        assert!(!run.frontier().is_empty());
    }

    #[test]
    fn empty_teachers_rejected() {
        let s = splits(202);
        let lt = quick();
        let empty =
            TeacherProbs { train: vec![], val: vec![], val_accuracy: vec![], num_classes: 2 };
        let space = lt.default_space(&s);
        assert!(lt.pareto_frontier(&s, &empty, &space).is_err());
    }
}
