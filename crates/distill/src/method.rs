//! Uniform dispatch over every distillation method of the evaluation.
//!
//! The experiment harness compares seven methods on identical students,
//! teachers, and data (paper Section 4.1.3). [`run_method`] runs any of them
//! and returns a [`DistillOutcome`] carrying the trained student, the
//! validation metrics used for selection, the teacher provenance, and the
//! wall-clock training time (for the Figure 18 / Table 6 timings).

use crate::aed::{run_aed, AedConfig};
use crate::baselines::{
    aekd_weights, cawpe_weights, classic_weights, distill_combined, reinforced_weights,
};
use crate::loo::aed_loo;
use crate::removal::{lightts_removal, RemovalStrategy};
use crate::teacher::TeacherProbs;
use crate::trainer::eval_student;
use crate::weights::WeightTransform;
use crate::Result;
use lightts_data::Splits;
use lightts_models::inception::{InceptionConfig, InceptionTime};
use std::time::Instant;

/// The distillation methods compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Classic knowledge distillation from the uniform-average ensemble.
    ClassicKd,
    /// Adaptive ensemble KD via gradient-space min-norm weights.
    AeKd,
    /// Reinforced multi-teacher selection.
    Reinforced,
    /// Cross-validation-accuracy weighted probabilistic ensemble.
    Cawpe,
    /// AED without teacher removal (Algorithm 1 once).
    AedOne,
    /// AED with leave-one-out removal.
    AedLoo,
    /// Full LightTS: AED with confident Gumbel teacher removal.
    LightTs,
}

impl Method {
    /// All methods, in the paper's table order.
    pub fn all() -> [Method; 7] {
        [
            Method::ClassicKd,
            Method::AeKd,
            Method::Reinforced,
            Method::Cawpe,
            Method::AedOne,
            Method::AedLoo,
            Method::LightTs,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::ClassicKd => "Classic KD",
            Method::AeKd => "AE-KD",
            Method::Reinforced => "Reinforced",
            Method::Cawpe => "CAWPE",
            Method::AedOne => "AED-One",
            Method::AedLoo => "AED-LOO",
            Method::LightTs => "LightTS",
        }
    }
}

/// Knobs shared by [`run_method`] across methods.
#[derive(Debug, Clone, Copy)]
pub struct DistillOpts {
    /// AED configuration (also supplies the student-training options every
    /// baseline uses).
    pub aed: AedConfig,
    /// Evaluation budget for AED-LOO.
    pub loo_max_evals: usize,
    /// Episodes for the Reinforced baseline.
    pub reinforced_episodes: usize,
    /// Learning rate of the Reinforced policy update.
    pub reinforced_lr: f32,
}

impl Default for DistillOpts {
    fn default() -> Self {
        DistillOpts {
            aed: AedConfig::default(),
            loo_max_evals: 12,
            reinforced_episodes: 3,
            reinforced_lr: 4.0,
        }
    }
}

/// The result of running one distillation method.
#[derive(Debug)]
pub struct DistillOutcome {
    /// The trained quantized student.
    pub student: InceptionTime,
    /// Validation accuracy (model-selection metric).
    pub val_accuracy: f64,
    /// Validation top-5 accuracy.
    pub val_top5: f64,
    /// Teacher weights over the *original* ensemble indices (zero for
    /// removed teachers).
    pub teacher_weights: Vec<f32>,
    /// Indices of the teachers the final student was distilled from.
    pub kept_teachers: Vec<usize>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// Number of AED runs executed (1 for single-shot methods).
    pub aed_runs: usize,
}

fn expand_weights(n: usize, kept: &[usize], weights: &[f32]) -> Vec<f32> {
    let mut full = vec![0.0f32; n];
    for (&k, &w) in kept.iter().zip(weights.iter()) {
        full[k] = w;
    }
    full
}

/// Runs `method` and reports the trained student plus provenance/timing.
pub fn run_method(
    method: Method,
    splits: &Splits,
    teachers: &TeacherProbs,
    student_config: &InceptionConfig,
    opts: &DistillOpts,
) -> Result<DistillOutcome> {
    let n = teachers.len();
    let start = Instant::now();
    let outcome = match method {
        Method::ClassicKd | Method::Cawpe | Method::AeKd | Method::Reinforced => {
            let weights = match method {
                Method::ClassicKd => classic_weights(n),
                Method::Cawpe => cawpe_weights(&teachers.val_accuracy),
                Method::AeKd => {
                    aekd_weights(teachers, splits, student_config, opts.aed.train.seed)?
                }
                Method::Reinforced => reinforced_weights(
                    splits,
                    teachers,
                    student_config,
                    &opts.aed.train,
                    opts.reinforced_episodes,
                    (opts.aed.train.epochs / 4).max(2),
                    opts.reinforced_lr,
                    opts.aed.train.seed,
                )?,
                _ => unreachable!(),
            };
            let student =
                distill_combined(splits, teachers, &weights, student_config, &opts.aed.train)?;
            let (val_accuracy, val_top5) = eval_student(&student, &splits.validation)?;
            DistillOutcome {
                student,
                val_accuracy,
                val_top5,
                teacher_weights: weights,
                kept_teachers: (0..n).collect(),
                train_seconds: 0.0,
                aed_runs: 1,
            }
        }
        Method::AedOne => {
            let mut cfg = opts.aed;
            cfg.transform = WeightTransform::Softmax;
            let res = run_aed(splits, teachers, student_config, &cfg)?;
            DistillOutcome {
                teacher_weights: res.weights.clone(),
                kept_teachers: (0..n).collect(),
                student: res.student,
                val_accuracy: res.val_accuracy,
                val_top5: res.val_top5,
                train_seconds: 0.0,
                aed_runs: 1,
            }
        }
        Method::AedLoo => {
            let res = aed_loo(splits, teachers, student_config, &opts.aed, opts.loo_max_evals)?;
            let last_weights = res
                .history
                .iter()
                .rev()
                .find(|r| r.kept == res.kept)
                .map(|r| r.weights.clone())
                .unwrap_or_else(|| classic_weights(res.kept.len()));
            DistillOutcome {
                teacher_weights: expand_weights(n, &res.kept, &last_weights),
                kept_teachers: res.kept.clone(),
                student: res.student,
                val_accuracy: res.val_accuracy,
                val_top5: res.val_top5,
                train_seconds: 0.0,
                aed_runs: res.aed_runs,
            }
        }
        Method::LightTs => {
            let res = lightts_removal(
                splits,
                teachers,
                student_config,
                &opts.aed,
                RemovalStrategy::GumbelConfident,
            )?;
            let last_weights = res
                .history
                .iter()
                .rev()
                .find(|r| r.kept == res.kept)
                .map(|r| r.weights.clone())
                .unwrap_or_else(|| classic_weights(res.kept.len()));
            DistillOutcome {
                teacher_weights: expand_weights(n, &res.kept, &last_weights),
                kept_teachers: res.kept.clone(),
                student: res.student,
                val_accuracy: res.val_accuracy,
                val_top5: res.val_top5,
                train_seconds: 0.0,
                aed_runs: res.aed_runs,
            }
        }
    };
    Ok(DistillOutcome { train_seconds: start.elapsed().as_secs_f64(), ..outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::StudentTrainOpts;
    use lightts_data::synth::{Generator, SynthConfig};
    use lightts_models::inception::BlockSpec;
    use lightts_tensor::Tensor;

    fn splits(seed: u64) -> Splits {
        let gen = Generator::new(
            SynthConfig { classes: 2, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
            seed,
        );
        gen.splits("method-test", 40, 20, 20, seed + 1).unwrap()
    }

    fn student_cfg() -> InceptionConfig {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits: 8 }; 2],
            filters: 4,
            in_dims: 1,
            in_len: 24,
            num_classes: 2,
        }
    }

    fn teachers(s: &Splits) -> TeacherProbs {
        let mk = |ds: &lightts_data::LabeledDataset, invert: bool| {
            let k = ds.num_classes();
            let sharp = 0.9f32;
            let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
            for (i, &l) in ds.labels().iter().enumerate() {
                let target = if invert { (l + 1) % k } else { l };
                t.set(&[i, target], sharp).unwrap();
            }
            t
        };
        TeacherProbs::from_raw(
            vec![mk(&s.train, false), mk(&s.train, false), mk(&s.train, true)],
            vec![mk(&s.validation, false), mk(&s.validation, false), mk(&s.validation, true)],
            s.validation.labels(),
        )
        .unwrap()
    }

    fn quick_opts(epochs: usize) -> DistillOpts {
        DistillOpts {
            aed: AedConfig {
                train: StudentTrainOpts { epochs, batch_size: 16, ..Default::default() },
                v: 3,
                lambda_lr: 2.0,
                transform: WeightTransform::GumbelConfident { tau: 0.5 },
            },
            loo_max_evals: 4,
            reinforced_episodes: 2,
            reinforced_lr: 4.0,
        }
    }

    #[test]
    fn every_method_produces_a_student() {
        let s = splits(130);
        let t = teachers(&s);
        let opts = quick_opts(6);
        for method in Method::all() {
            let out = run_method(method, &s, &t, &student_cfg(), &opts).unwrap();
            assert_eq!(out.teacher_weights.len(), 3, "{}", method.as_str());
            assert!(out.train_seconds > 0.0);
            assert!(out.aed_runs >= 1);
            assert!(!out.kept_teachers.is_empty());
            assert!(
                (0.0..=1.0).contains(&out.val_accuracy),
                "{}: acc {}",
                method.as_str(),
                out.val_accuracy
            );
        }
    }

    #[test]
    fn lightts_weights_cover_removed_teachers_with_zero() {
        let s = splits(131);
        let t = teachers(&s);
        let out = run_method(Method::LightTs, &s, &t, &student_cfg(), &quick_opts(6)).unwrap();
        for (i, w) in out.teacher_weights.iter().enumerate() {
            if out.kept_teachers.contains(&i) {
                assert!(*w >= 0.0);
            } else {
                assert_eq!(*w, 0.0);
            }
        }
    }

    #[test]
    fn method_names_match_paper() {
        let names: Vec<&str> = Method::all().iter().map(|m| m.as_str()).collect();
        assert_eq!(
            names,
            vec!["Classic KD", "AE-KD", "Reinforced", "CAWPE", "AED-One", "AED-LOO", "LightTS"]
        );
    }
}
