//! AED for forecasting — the paper's Section 3.2.1 extension.
//!
//! "In addition to classification, the proposal can be applied to
//! forecasting by replacing the cross entropy term in Equation 2 by a
//! forecasting error term, e.g., mean square error." This module implements
//! exactly that: the student minimizes
//!
//! ```text
//! L = α·MSE(p_w, y) + (1 − α)·Σ_i λ̂_i · MSE(q_i, p_w)
//! ```
//!
//! with the same bi-level λ optimization (inner on train, outer on
//! validation) and the same confident Gumbel teacher-removal loop, except
//! that "accuracy" becomes *negative validation MSE*.

use crate::weights::{argmin_weight, WeightTransform};
use crate::{DistillError, Result};
use lightts_data::forecast::{ForecastDataset, ForecastSplits};
use lightts_models::forecaster::{ForecastConfig, Forecaster};
use lightts_nn::loss::mse;
use lightts_nn::optim::Adam;
use lightts_nn::optim::Optimizer;
use lightts_nn::{Bindings, Mode};
use lightts_tensor::rng::seeded;
use lightts_tensor::tape::Tape;
use lightts_tensor::Tensor;
use rand::seq::SliceRandom;

/// Per-teacher forecast predictions on the train and validation windows.
#[derive(Debug, Clone)]
pub struct ForecastTeachers {
    /// Predictions on the training windows, per teacher `[n_train, out]`.
    pub train: Vec<Tensor>,
    /// Predictions on the validation windows, per teacher `[n_val, out]`.
    pub val: Vec<Tensor>,
}

impl ForecastTeachers {
    /// Evaluates trained teacher forecasters on both splits.
    pub fn compute(teachers: &[Forecaster], splits: &ForecastSplits) -> Result<Self> {
        if teachers.is_empty() {
            return Err(DistillError::BadInput { what: "no forecast teachers".into() });
        }
        let train = teachers
            .iter()
            .map(|t| t.predict(splits.train.inputs()).map_err(DistillError::from))
            .collect::<Result<Vec<_>>>()?;
        let val = teachers
            .iter()
            .map(|t| t.predict(splits.validation.inputs()).map_err(DistillError::from))
            .collect::<Result<Vec<_>>>()?;
        Ok(ForecastTeachers { train, val })
    }

    /// Number of teachers.
    pub fn len(&self) -> usize {
        self.train.len()
    }

    /// Whether there are no teachers.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty()
    }

    /// Restriction to the teachers at `keep`.
    pub fn subset(&self, keep: &[usize]) -> Result<Self> {
        if keep.is_empty() {
            return Err(DistillError::BadInput { what: "empty teacher subset".into() });
        }
        let pick = |v: &[Tensor]| -> Result<Vec<Tensor>> {
            keep.iter()
                .map(|&i| {
                    v.get(i).cloned().ok_or(DistillError::BadInput {
                        what: format!("teacher {i} out of {}", v.len()),
                    })
                })
                .collect()
        };
        Ok(ForecastTeachers { train: pick(&self.train)?, val: pick(&self.val)? })
    }
}

/// Configuration of forecast AED.
#[derive(Debug, Clone, Copy)]
pub struct ForecastAedConfig {
    /// Loss mix α between ground-truth MSE and distillation MSE.
    pub alpha: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (Adam).
    pub lr: f32,
    /// Inner epochs per outer λ update.
    pub v: usize,
    /// Outer λ learning rate.
    pub lambda_lr: f32,
    /// Weight parameterization.
    pub transform: WeightTransform,
    /// Seed.
    pub seed: u64,
}

impl Default for ForecastAedConfig {
    fn default() -> Self {
        ForecastAedConfig {
            alpha: 0.5,
            epochs: 24,
            batch_size: 32,
            lr: 0.01,
            v: 4,
            lambda_lr: 2.0,
            transform: WeightTransform::GumbelConfident { tau: 0.5 },
            seed: 17,
        }
    }
}

/// Outcome of one forecast-AED run.
pub struct ForecastAedResult {
    /// The trained quantized student forecaster.
    pub student: Forecaster,
    /// Final simplex weights λ̂.
    pub weights: Vec<f32>,
    /// Mean squared error on the validation windows (selection metric).
    pub val_mse: f32,
}

#[allow(clippy::too_many_arguments)]
fn train_slice(
    student: &mut Forecaster,
    train: &ForecastDataset,
    q_train: &[Tensor],
    weights: &[f32],
    cfg: &ForecastAedConfig,
    opt: &mut Adam,
    rng: &mut rand::rngs::StdRng,
    epochs: usize,
) -> Result<()> {
    let all: Vec<usize> = (0..train.len()).collect();
    // Reused tape/bindings: reset per mini-batch keeps the steady-state step
    // allocation-free (see `lightts_tensor::pool`).
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    for _ in 0..epochs {
        let mut order = all.clone();
        order.shuffle(rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let (x, y) = train.batch(chunk)?;
            tape.reset();
            bind.reset();
            let pred = student.forward_train(&mut tape, &mut bind, &x, Mode::Train)?;
            let gt = tape.mse_to_target(pred, &y)?;
            let mut loss = tape.scale(gt, cfg.alpha)?;
            for (q, &w) in q_train.iter().zip(weights.iter()) {
                if w <= 1e-6 {
                    continue;
                }
                let q_rows = q.gather_rows(chunk)?;
                let d = tape.mse_to_target(pred, &q_rows)?;
                let term = tape.scale(d, (1.0 - cfg.alpha) * w)?;
                loss = tape.add(loss, term)?;
            }
            let grads = tape.backward(loss)?;
            let pairs = bind.collect_grads(grads);
            opt.step(student.store_mut(), &pairs)?;
        }
    }
    Ok(())
}

/// Runs bi-level forecast AED (Algorithm 1 with MSE terms).
pub fn run_forecast_aed(
    splits: &ForecastSplits,
    teachers: &ForecastTeachers,
    config: &ForecastConfig,
    cfg: &ForecastAedConfig,
) -> Result<ForecastAedResult> {
    if teachers.is_empty() {
        return Err(DistillError::BadInput { what: "no forecast teachers".into() });
    }
    let n = teachers.len();
    let mut rng = seeded(cfg.seed);
    let mut student = Forecaster::new(config.clone(), &mut rng)?;
    let mut opt = Adam::new(cfg.lr);
    let mut lambda = vec![0.0f32; n];
    let mut state = cfg.transform.weights(&lambda, &mut rng);

    let v = cfg.v.max(1);
    let mut remaining = cfg.epochs;
    while remaining > 0 {
        let slice = v.min(remaining);
        train_slice(
            &mut student,
            &splits.train,
            &teachers.train,
            &state.weights,
            cfg,
            &mut opt,
            &mut rng,
            slice,
        )?;
        remaining -= slice;
        if remaining == 0 {
            break;
        }
        // outer λ step: distances are MSEs between teacher and student
        // predictions on the validation windows
        let p_val = student.predict(splits.validation.inputs())?;
        let distances: Vec<f32> =
            teachers.val.iter().map(|q| mse(q, &p_val)).collect::<std::result::Result<_, _>>()?;
        let grad = cfg.transform.grad(&state, &distances);
        for (l, g) in lambda.iter_mut().zip(grad.iter()) {
            *l -= cfg.lambda_lr * g;
        }
        state = cfg.transform.weights(&lambda, &mut rng);
    }
    let val_mse = student.mse_on(&splits.validation)?;
    Ok(ForecastAedResult { student, weights: state.weights, val_mse })
}

/// Forecast LightTS: AED with confident teacher removal, selecting the
/// round with the lowest validation MSE.
pub fn forecast_lightts(
    splits: &ForecastSplits,
    teachers: &ForecastTeachers,
    config: &ForecastConfig,
    cfg: &ForecastAedConfig,
) -> Result<ForecastAedResult> {
    let mut kept: Vec<usize> = (0..teachers.len()).collect();
    let mut best: Option<ForecastAedResult> = None;
    loop {
        let sub = teachers.subset(&kept)?;
        let res = run_forecast_aed(splits, &sub, config, cfg)?;
        let weights = res.weights.clone();
        if best.as_ref().is_none_or(|b| res.val_mse < b.val_mse) {
            best = Some(res);
        }
        if kept.len() == 1 {
            break;
        }
        let victim = argmin_weight(&weights).expect("non-empty weights");
        kept.remove(victim);
    }
    Ok(best.expect("at least one round"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::forecast::{synthetic_series, windows_from_series};

    fn task(seed: u64) -> ForecastSplits {
        let series = synthetic_series(1, 200, 0.05, seed);
        windows_from_series("fc", &series, 16, 2, 2, 0.15, 0.15).unwrap()
    }

    fn trained_teachers(splits: &ForecastSplits, n: usize, epochs: usize) -> Vec<Forecaster> {
        (0..n)
            .map(|i| {
                let cfg = ForecastConfig::for_task(&splits.train, 4, 32);
                let mut rng = seeded(100 + i as u64);
                let mut f = Forecaster::new(cfg, &mut rng).unwrap();
                f.fit(&splits.train, epochs, 0.01, 200 + i as u64).unwrap();
                f
            })
            .collect()
    }

    #[test]
    fn forecast_aed_distills_a_quantized_student() {
        let splits = task(1);
        let teachers = trained_teachers(&splits, 2, 15);
        let tprobs = ForecastTeachers::compute(&teachers, &splits).unwrap();
        let student_cfg = ForecastConfig::for_task(&splits.train, 4, 8);
        let cfg = ForecastAedConfig { epochs: 12, v: 4, ..Default::default() };
        let res = run_forecast_aed(&splits, &tprobs, &student_cfg, &cfg).unwrap();
        // the distilled student beats the mean-predictor baseline
        let mean = splits.train.targets().mean();
        let mut base = 0.0f32;
        for &v in splits.validation.targets().data() {
            base += (v - mean) * (v - mean);
        }
        base /= splits.validation.targets().len() as f32;
        assert!(res.val_mse < base, "student MSE {} vs baseline {base}", res.val_mse);
        let sum: f32 = res.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn bad_teacher_gets_downweighted_in_forecasting() {
        let splits = task(2);
        // teacher 0: trained; teacher 1: untrained (random predictions)
        let good = {
            let mut t = trained_teachers(&splits, 1, 15);
            t.pop().unwrap()
        };
        let bad = {
            let cfg = ForecastConfig::for_task(&splits.train, 4, 32);
            let mut rng = seeded(999);
            Forecaster::new(cfg, &mut rng).unwrap()
        };
        let tprobs = ForecastTeachers::compute(&[good, bad], &splits).unwrap();
        let student_cfg = ForecastConfig::for_task(&splits.train, 4, 32);
        let cfg = ForecastAedConfig {
            epochs: 12,
            v: 3,
            transform: WeightTransform::Softmax,
            ..Default::default()
        };
        let res = run_forecast_aed(&splits, &tprobs, &student_cfg, &cfg).unwrap();
        assert!(
            res.weights[0] > res.weights[1],
            "untrained teacher should be downweighted: {:?}",
            res.weights
        );
    }

    #[test]
    fn forecast_lightts_removal_never_hurts_selection() {
        let splits = task(3);
        let teachers = trained_teachers(&splits, 3, 10);
        let tprobs = ForecastTeachers::compute(&teachers, &splits).unwrap();
        let student_cfg = ForecastConfig::for_task(&splits.train, 4, 8);
        let cfg = ForecastAedConfig { epochs: 8, v: 4, ..Default::default() };
        let one = run_forecast_aed(&splits, &tprobs, &student_cfg, &cfg).unwrap();
        let best = forecast_lightts(&splits, &tprobs, &student_cfg, &cfg).unwrap();
        // the removal loop selects by val MSE, so it can only match or beat
        // the single run (same seed ⇒ first round identical)
        assert!(best.val_mse <= one.val_mse + 1e-6);
    }

    #[test]
    fn empty_teachers_rejected() {
        let splits = task(4);
        let empty = ForecastTeachers { train: vec![], val: vec![] };
        let student_cfg = ForecastConfig::for_task(&splits.train, 4, 8);
        assert!(run_forecast_aed(&splits, &empty, &student_cfg, &Default::default()).is_err());
        assert!(ForecastTeachers::compute(&[], &splits).is_err());
    }
}
