//! The four single-teacher baselines (paper Section 4.1.3).
//!
//! All four reduce the ensemble to **one** combined teacher `q̄ = Σ w_i q_i`
//! and distill with the classic loss (Eq. 1); they differ only in the
//! weights `w`:
//!
//! * **Classic KD** (\[25, 52\]) — uniform `1/N`.
//! * **CAWPE** (\[31\]) — validation accuracy raised to the 4th power.
//! * **AE-KD** (\[17\]) — the minimum-norm point over per-teacher distillation
//!   gradients (gradient-space diversity), found by Frank–Wolfe.
//! * **Reinforced** (\[54\]) — REINFORCE over weight logits with the student's
//!   validation reward.
//!
//! As the paper argues, folding all teachers into one distribution before
//! distilling is what limits these methods on heavily quantized students.

use crate::teacher::TeacherProbs;
use crate::trainer::{eval_student, train_student, StudentTrainOpts};
use crate::{DistillError, Result};
use lightts_data::Splits;
use lightts_models::inception::{InceptionConfig, InceptionTime};
use lightts_models::Classifier;
use lightts_nn::loss::softmax_slice;
use lightts_tensor::rng::seeded;
use rand::Rng;

/// Uniform weights `1/N` (Classic KD).
pub fn classic_weights(n: usize) -> Vec<f32> {
    vec![1.0 / n.max(1) as f32; n]
}

/// CAWPE weights: validation accuracy to the 4th power, normalized.
pub fn cawpe_weights(val_accuracy: &[f64]) -> Vec<f32> {
    let pow: Vec<f64> = val_accuracy.iter().map(|&a| a.max(1e-6).powi(4)).collect();
    let sum: f64 = pow.iter().sum();
    pow.into_iter().map(|p| (p / sum) as f32).collect()
}

/// The minimum-norm point of the convex hull of `vectors`, via Frank–Wolfe.
///
/// This is the MGDA-style objective AE-KD optimizes to balance teacher
/// diversity in gradient space: find `w ∈ Δ` minimizing `‖Σ w_i g_i‖²`.
pub fn min_norm_weights(vectors: &[Vec<f32>], iters: usize) -> Vec<f32> {
    let n = vectors.len();
    if n == 0 {
        return Vec::new();
    }
    // Gram matrix G[i][j] = ⟨g_i, g_j⟩
    let mut gram = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i..n {
            let dot: f64 = vectors[i]
                .iter()
                .zip(vectors[j].iter())
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            gram[i][j] = dot;
            gram[j][i] = dot;
        }
    }
    let mut w = vec![1.0f64 / n as f64; n];
    for _ in 0..iters {
        // gradient of ‖Gw‖-style objective: (Gw)
        let gw: Vec<f64> = (0..n).map(|i| (0..n).map(|j| gram[i][j] * w[j]).sum()).collect();
        let t = (0..n).min_by(|&a, &b| gw[a].total_cmp(&gw[b])).expect("n > 0");
        // line search between w and e_t
        let mut d = vec![0.0f64; n];
        for (i, di) in d.iter_mut().enumerate() {
            *di = (if i == t { 1.0 } else { 0.0 }) - w[i];
        }
        let gd: Vec<f64> = (0..n).map(|i| (0..n).map(|j| gram[i][j] * d[j]).sum()).collect();
        let num: f64 = -(0..n).map(|i| d[i] * gw[i]).sum::<f64>();
        let den: f64 = (0..n).map(|i| d[i] * gd[i]).sum();
        let gamma = if den > 1e-12 { (num / den).clamp(0.0, 1.0) } else { 1.0 };
        for (wi, di) in w.iter_mut().zip(d.iter()) {
            *wi += gamma * di;
        }
    }
    w.into_iter().map(|v| v as f32).collect()
}

/// AE-KD weights: the min-norm combination of the per-teacher distillation
/// gradients `∂KL(q_i ‖ p)/∂logits = p − q_i`, evaluated at the untrained
/// student's validation distribution `p₀`.
pub fn aekd_weights(
    teachers: &TeacherProbs,
    splits: &Splits,
    config: &InceptionConfig,
    seed: u64,
) -> Result<Vec<f32>> {
    let mut rng = seeded(seed);
    let p0 =
        InceptionTime::new(config.clone(), &mut rng)?.predict_proba_dataset(&splits.validation)?;
    let grads: Vec<Vec<f32>> = teachers
        .val
        .iter()
        .map(|q| p0.data().iter().zip(q.data().iter()).map(|(&p, &qi)| p - qi).collect())
        .collect();
    Ok(min_norm_weights(&grads, 64))
}

/// Reinforced weights (\[54\]): Gaussian-perturbation REINFORCE on weight
/// logits. Each episode samples logits `θ + ε`, trains a short student with
/// `softmax(θ + ε)` weights, and reinforces `ε` by the validation-accuracy
/// advantage.
#[allow(clippy::too_many_arguments)]
pub fn reinforced_weights(
    splits: &Splits,
    teachers: &TeacherProbs,
    config: &InceptionConfig,
    opts: &StudentTrainOpts,
    episodes: usize,
    episode_epochs: usize,
    rl_lr: f32,
    seed: u64,
) -> Result<Vec<f32>> {
    let n = teachers.len();
    let mut theta = vec![0.0f32; n];
    let sigma = 0.5f32;
    let mut rng = seeded(seed);
    let mut baseline = 0.0f64;
    for ep in 0..episodes {
        let eps: Vec<f32> = (0..n)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * sigma
            })
            .collect();
        let logits: Vec<f32> = theta.iter().zip(eps.iter()).map(|(&t, &e)| t + e).collect();
        let w = softmax_slice(&logits);
        let q_bar = teachers.combined_train(&w)?;
        let mut ep_opts = *opts;
        ep_opts.epochs = episode_epochs.max(1);
        ep_opts.seed = seed.wrapping_add(ep as u64 + 1);
        let student = train_student(config, &splits.train, &[q_bar], &[1.0], &ep_opts)?;
        let (reward, _) = eval_student(&student, &splits.validation)?;
        let advantage = reward - baseline;
        baseline = if ep == 0 { reward } else { 0.7 * baseline + 0.3 * reward };
        for (t, &e) in theta.iter_mut().zip(eps.iter()) {
            *t += rl_lr * advantage as f32 * e / (sigma * sigma);
        }
    }
    Ok(softmax_slice(&theta))
}

/// Distills a student from the single combined teacher `q̄ = Σ w_i q_i`
/// (Eq. 1 with the given weights).
pub fn distill_combined(
    splits: &Splits,
    teachers: &TeacherProbs,
    weights: &[f32],
    config: &InceptionConfig,
    opts: &StudentTrainOpts,
) -> Result<InceptionTime> {
    if weights.len() != teachers.len() {
        return Err(DistillError::BadInput {
            what: format!("{} weights for {} teachers", weights.len(), teachers.len()),
        });
    }
    let q_bar = teachers.combined_train(weights)?;
    train_student(config, &splits.train, &[q_bar], &[1.0], opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_weights_uniform() {
        let w = classic_weights(4);
        assert_eq!(w, vec![0.25; 4]);
        assert_eq!(classic_weights(0).len(), 0);
    }

    #[test]
    fn cawpe_prefers_accurate_teachers() {
        let w = cawpe_weights(&[0.9, 0.3, 0.6]);
        assert!(w[0] > w[2] && w[2] > w[1]);
        let s: f32 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        // 4th power amplifies: 0.9^4/0.3^4 = 81
        assert!(w[0] / w[1] > 50.0);
    }

    #[test]
    fn min_norm_of_opposing_vectors_balances() {
        // g0 = (1, 0), g1 = (−1, 0): min-norm point is 0 at w = (0.5, 0.5)
        let w = min_norm_weights(&[vec![1.0, 0.0], vec![-1.0, 0.0]], 100);
        assert!((w[0] - 0.5).abs() < 1e-3, "{w:?}");
        assert!((w[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn min_norm_prefers_small_vectors() {
        // one tiny gradient, one huge: weight concentrates on the tiny one
        let w = min_norm_weights(&[vec![0.1, 0.0], vec![10.0, 0.0]], 100);
        assert!(w[0] > 0.9, "{w:?}");
        let s: f32 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn min_norm_weights_stay_on_simplex() {
        let vecs = vec![vec![0.3, -0.2, 0.5], vec![-0.1, 0.4, 0.2], vec![0.0, 0.1, -0.3]];
        let w = min_norm_weights(&vecs, 50);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(w.iter().all(|&x| (-1e-6..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn min_norm_empty_input() {
        assert!(min_norm_weights(&[], 10).is_empty());
    }
}
