//! Pre-computed teacher knowledge.
//!
//! Teachers are *already trained* when LightTS starts (paper Figure 6), so
//! their class distributions over the training and validation sets are
//! constants throughout distillation. [`TeacherProbs`] computes them once
//! and hands aligned rows to the student trainer, which is what makes the
//! repeated AED runs of the removal loop affordable.

use crate::{DistillError, Result};
use lightts_data::Splits;
use lightts_models::ensemble::Ensemble;
use lightts_models::metrics::accuracy;
use lightts_tensor::Tensor;

/// Per-teacher class distributions over the train and validation splits,
/// plus each teacher's validation accuracy (used by CAWPE).
#[derive(Debug, Clone)]
pub struct TeacherProbs {
    /// `q_i` on the training split: per teacher `[n_train, classes]`.
    pub train: Vec<Tensor>,
    /// `q_i` on the validation split: per teacher `[n_val, classes]`.
    pub val: Vec<Tensor>,
    /// Validation accuracy per teacher.
    pub val_accuracy: Vec<f64>,
    /// Number of classes.
    pub num_classes: usize,
}

impl TeacherProbs {
    /// Evaluates every ensemble member on the train and validation splits.
    pub fn compute(ensemble: &Ensemble, splits: &Splits) -> Result<Self> {
        let train = ensemble.member_probs_dataset(&splits.train)?;
        let val = ensemble.member_probs_dataset(&splits.validation)?;
        let val_labels = splits.validation.labels();
        let val_accuracy = val
            .iter()
            .map(|p| accuracy(p, val_labels).map_err(DistillError::from))
            .collect::<Result<Vec<_>>>()?;
        let num_classes = splits.num_classes();
        Ok(TeacherProbs { train, val, val_accuracy, num_classes })
    }

    /// Builds teacher probabilities from raw per-teacher tensors (useful for
    /// tests and synthetic teachers).
    pub fn from_raw(train: Vec<Tensor>, val: Vec<Tensor>, val_labels: &[usize]) -> Result<Self> {
        if train.is_empty() || train.len() != val.len() {
            return Err(DistillError::BadInput {
                what: format!("{} train vs {} val teachers", train.len(), val.len()),
            });
        }
        let num_classes = train[0].dims()[1];
        for t in train.iter().chain(val.iter()) {
            if t.rank() != 2 || t.dims()[1] != num_classes {
                return Err(DistillError::BadInput {
                    what: "teacher tensors must be [n, classes] with equal classes".into(),
                });
            }
        }
        let val_accuracy = val
            .iter()
            .map(|p| accuracy(p, val_labels).map_err(DistillError::from))
            .collect::<Result<Vec<_>>>()?;
        Ok(TeacherProbs { train, val, val_accuracy, num_classes })
    }

    /// Number of teachers `N`.
    pub fn len(&self) -> usize {
        self.train.len()
    }

    /// Whether there are no teachers (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.train.is_empty()
    }

    /// Restriction to the teachers at `keep` (removal loop support).
    pub fn subset(&self, keep: &[usize]) -> Result<Self> {
        if keep.is_empty() {
            return Err(DistillError::BadInput { what: "empty teacher subset".into() });
        }
        let pick = |v: &[Tensor]| -> Result<Vec<Tensor>> {
            keep.iter()
                .map(|&i| {
                    v.get(i).cloned().ok_or(DistillError::BadInput {
                        what: format!("teacher index {i} out of {}", v.len()),
                    })
                })
                .collect()
        };
        Ok(TeacherProbs {
            train: pick(&self.train)?,
            val: pick(&self.val)?,
            val_accuracy: keep.iter().map(|&i| self.val_accuracy[i]).collect(),
            num_classes: self.num_classes,
        })
    }

    /// The uniform-average combined teacher `q̄ = 1/N Σ q_i` on the training
    /// split (Classic KD's knowledge source).
    pub fn combined_train(&self, weights: &[f32]) -> Result<Tensor> {
        if weights.len() != self.len() {
            return Err(DistillError::BadInput {
                what: format!("{} weights for {} teachers", weights.len(), self.len()),
            });
        }
        let mut acc = Tensor::zeros(self.train[0].dims());
        for (q, &w) in self.train.iter().zip(weights.iter()) {
            acc.axpy(q, w)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(v: &[f32], n: usize, k: usize) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[n, k]).unwrap()
    }

    fn toy() -> TeacherProbs {
        // 2 teachers, 2 validation rows, 2 classes
        let t0 = probs(&[0.9, 0.1, 0.2, 0.8], 2, 2);
        let t1 = probs(&[0.6, 0.4, 0.7, 0.3], 2, 2);
        TeacherProbs::from_raw(vec![t0.clone(), t1.clone()], vec![t0, t1], &[0, 1]).unwrap()
    }

    #[test]
    fn val_accuracy_per_teacher() {
        let tp = toy();
        assert_eq!(tp.len(), 2);
        assert!((tp.val_accuracy[0] - 1.0).abs() < 1e-12); // teacher 0 right on both
        assert!((tp.val_accuracy[1] - 0.5).abs() < 1e-12); // teacher 1 right on row 0 only
    }

    #[test]
    fn subset_keeps_selected() {
        let tp = toy();
        let sub = tp.subset(&[1]).unwrap();
        assert_eq!(sub.len(), 1);
        assert!((sub.val_accuracy[0] - 0.5).abs() < 1e-12);
        assert!(tp.subset(&[]).is_err());
        assert!(tp.subset(&[7]).is_err());
    }

    #[test]
    fn combined_train_weights() {
        let tp = toy();
        let c = tp.combined_train(&[0.5, 0.5]).unwrap();
        assert!((c.get(&[0, 0]).unwrap() - 0.75).abs() < 1e-6);
        assert!(tp.combined_train(&[1.0]).is_err());
    }

    #[test]
    fn from_raw_validates() {
        let t = probs(&[1.0, 0.0], 1, 2);
        assert!(TeacherProbs::from_raw(vec![t.clone()], vec![], &[]).is_err());
        let bad = probs(&[1.0, 0.0, 0.0], 1, 3);
        assert!(TeacherProbs::from_raw(vec![t.clone()], vec![bad], &[0]).is_err());
    }
}
