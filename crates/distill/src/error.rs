//! Error type for distillation.

use lightts_data::DataError;
use lightts_models::ModelError;
use lightts_nn::NnError;
use lightts_tensor::TensorError;
use std::fmt;

/// Errors produced by distillation methods.
#[derive(Debug, Clone, PartialEq)]
pub enum DistillError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying layer/optimizer operation failed.
    Nn(NnError),
    /// An underlying dataset operation failed.
    Data(DataError),
    /// An underlying model operation failed.
    Model(ModelError),
    /// Inconsistent distillation inputs (teacher/student/class mismatches).
    BadInput {
        /// Description of the inconsistency.
        what: String,
    },
    /// Writing or reading a training checkpoint failed (I/O error,
    /// corrupted snapshot, or a snapshot from an incompatible run).
    Checkpoint {
        /// Description of the failure.
        what: String,
    },
    /// An injected fault fired (a `lightts_obs::failpoint` with an `err`
    /// action) — only ever seen under chaos testing.
    Fault {
        /// The failpoint's description of the injection.
        what: String,
    },
}

impl fmt::Display for DistillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::Nn(e) => write!(f, "nn error: {e}"),
            Self::Data(e) => write!(f, "data error: {e}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::BadInput { what } => write!(f, "bad distillation input: {what}"),
            Self::Checkpoint { what } => write!(f, "checkpoint error: {what}"),
            Self::Fault { what } => write!(f, "injected fault: {what}"),
        }
    }
}

impl std::error::Error for DistillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            Self::Nn(e) => Some(e),
            Self::Data(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::BadInput { .. } | Self::Checkpoint { .. } | Self::Fault { .. } => None,
        }
    }
}

impl From<TensorError> for DistillError {
    fn from(e: TensorError) -> Self {
        DistillError::Tensor(e)
    }
}

impl From<NnError> for DistillError {
    fn from(e: NnError) -> Self {
        DistillError::Nn(e)
    }
}

impl From<DataError> for DistillError {
    fn from(e: DataError) -> Self {
        DistillError::Data(e)
    }
}

impl From<ModelError> for DistillError {
    fn from(e: ModelError) -> Self {
        DistillError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: DistillError = TensorError::Empty { op: "x" }.into();
        assert!(matches!(e, DistillError::Tensor(_)));
        let e: DistillError = ModelError::NotTrained { model: "m" }.into();
        assert!(e.to_string().contains('m'));
    }
}
