//! Teacher-weight parameterizations and their gradients.
//!
//! AED maintains raw teacher logits `λ ∈ ℝ^N` and derives the simplex
//! weights that multiply the per-teacher distillation distances in Eq. 2.
//! Two parameterizations are used:
//!
//! * **Softmax** — `σ(λ)`, the plain normalization of Algorithm 1.
//! * **Gumbel-confident** (Section 3.2.2) — the "unimportance"
//!   `γ = softmax((−λ + g)/τ)` with Gumbel noise `g` and temperature `τ`,
//!   re-parameterized back to importance `λ̂ = softmax(−γ)`. As `τ → 0` the
//!   unimportance approaches a one-hot argmin of `λ`, making the weakest
//!   teacher *confidently identifiable* (paper Figure 10) while keeping the
//!   whole chain differentiable.
//!
//! The outer-level λ update (Eq. 3) needs `∂/∂λ Σ_i w_i d_i` for fixed
//! distances `d`. Both transforms provide that gradient in closed form
//! (softmax Jacobians composed by the chain rule), verified against finite
//! differences in the tests.

use lightts_nn::loss::softmax_slice;
use lightts_tensor::rng::gumbel_vec;
use rand::Rng;

/// How raw teacher logits `λ` map to simplex weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightTransform {
    /// `w = softmax(λ)`.
    Softmax,
    /// The confident Gumbel chain `λ̂ = softmax(−softmax((−λ + g)/τ))`.
    GumbelConfident {
        /// Temperature `τ` controlling the sharpness of the unimportance.
        tau: f32,
    },
}

/// The weights produced by a transform plus the auxiliary state needed to
/// differentiate through it (the sampled noise and intermediate softmaxes).
#[derive(Debug, Clone)]
pub struct WeightState {
    /// The simplex weights `w` applied to the distillation distances.
    pub weights: Vec<f32>,
    /// The unimportance `γ` (Gumbel chain only).
    gamma: Option<Vec<f32>>,
    /// The noise `g` used (Gumbel chain only).
    noise: Option<Vec<f32>>,
}

impl WeightTransform {
    /// Computes weights from logits, sampling fresh Gumbel noise if needed.
    pub fn weights<R: Rng>(&self, lambda: &[f32], rng: &mut R) -> WeightState {
        match *self {
            WeightTransform::Softmax => {
                WeightState { weights: softmax_slice(lambda), gamma: None, noise: None }
            }
            WeightTransform::GumbelConfident { tau } => {
                let g = gumbel_vec(rng, lambda.len());
                let u: Vec<f32> =
                    lambda.iter().zip(g.iter()).map(|(&l, &gi)| (-l + gi) / tau).collect();
                let gamma = softmax_slice(&u);
                let z: Vec<f32> = gamma.iter().map(|&x| -x).collect();
                let weights = softmax_slice(&z);
                WeightState { weights, gamma: Some(gamma), noise: Some(g) }
            }
        }
    }

    /// Gradient of `L(λ) = Σ_i w_i(λ) · d_i` with respect to `λ`, holding
    /// the distances `d` (and, for Gumbel, the sampled noise) fixed.
    pub fn grad(&self, state: &WeightState, d: &[f32]) -> Vec<f32> {
        let w = &state.weights;
        // dL/dz for w = softmax(z): w_j (d_j − Σ_i w_i d_i)
        let wd: f32 = w.iter().zip(d.iter()).map(|(&a, &b)| a * b).sum();
        let dl_dz: Vec<f32> = w.iter().zip(d.iter()).map(|(&wj, &dj)| wj * (dj - wd)).collect();
        match *self {
            WeightTransform::Softmax => dl_dz,
            WeightTransform::GumbelConfident { tau } => {
                // z = −γ ⇒ dL/dγ_k = −dL/dz_k
                let dl_dgamma: Vec<f32> = dl_dz.iter().map(|&v| -v).collect();
                // γ = softmax(u) ⇒ dL/du_j = γ_j (dL/dγ_j − Σ_k γ_k dL/dγ_k)
                let gamma = state.gamma.as_ref().expect("gumbel state carries gamma");
                let gdot: f32 = gamma.iter().zip(dl_dgamma.iter()).map(|(&a, &b)| a * b).sum();
                let dl_du: Vec<f32> =
                    gamma.iter().zip(dl_dgamma.iter()).map(|(&gj, &dj)| gj * (dj - gdot)).collect();
                // u_j = (−λ_j + g_j)/τ ⇒ dL/dλ_j = −dL/du_j / τ
                dl_du.into_iter().map(|v| -v / tau).collect()
            }
        }
    }

    /// Recomputes weights for given logits *reusing* the noise in `state`
    /// (used by the finite-difference tests and by deterministic replay).
    pub fn weights_with_noise(&self, lambda: &[f32], state: &WeightState) -> Vec<f32> {
        match *self {
            WeightTransform::Softmax => softmax_slice(lambda),
            WeightTransform::GumbelConfident { tau } => {
                let g = state.noise.as_ref().expect("gumbel state carries noise");
                let u: Vec<f32> =
                    lambda.iter().zip(g.iter()).map(|(&l, &gi)| (-l + gi) / tau).collect();
                let gamma = softmax_slice(&u);
                let z: Vec<f32> = gamma.iter().map(|&x| -x).collect();
                softmax_slice(&z)
            }
        }
    }
}

/// Shannon entropy (nats) of a weight simplex — `−Σ w·ln w`.
///
/// The observability layer logs this per outer AED step: entropy starts at
/// `ln N` (uniform weights) and falls as λ concentrates on the useful
/// teachers, so the trace shows *when* the weighting has effectively
/// decided.
pub fn weight_entropy(weights: &[f32]) -> f32 {
    -weights.iter().filter(|&&w| w > 0.0).map(|&w| w * w.ln()).sum::<f32>()
}

/// Index of the minimum weight — the teacher LightTS removes next.
pub fn argmin_weight(weights: &[f32]) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        if w < weights[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    #[test]
    fn entropy_is_maximal_for_uniform_and_zero_for_onehot() {
        let n = 4usize;
        let uniform = vec![1.0 / n as f32; n];
        assert!((weight_entropy(&uniform) - (n as f32).ln()).abs() < 1e-6);
        assert_eq!(weight_entropy(&[1.0, 0.0, 0.0]), 0.0);
        assert!(weight_entropy(&[0.7, 0.2, 0.1]) < weight_entropy(&[0.4, 0.3, 0.3]));
    }

    #[test]
    fn softmax_weights_form_simplex() {
        let mut rng = seeded(1);
        let lam = [0.3f32, -1.0, 2.0, 0.0];
        let st = WeightTransform::Softmax.weights(&lam, &mut rng);
        let s: f32 = st.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(st.weights[2] > st.weights[1]);
    }

    #[test]
    fn gumbel_weights_form_simplex() {
        let mut rng = seeded(2);
        let lam = [0.5f32, 0.1, -0.4];
        let st = WeightTransform::GumbelConfident { tau: 0.5 }.weights(&lam, &mut rng);
        let s: f32 = st.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(st.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn low_tau_suppresses_the_weakest_teacher() {
        // With τ → 0, γ ≈ one-hot at argmin λ, so λ̂ is smallest there.
        // Average over noise draws to wash out the stochastic part.
        let lam = [1.0f32, 0.9, -2.0, 1.1, 0.95];
        let tf = WeightTransform::GumbelConfident { tau: 0.1 };
        let mut rng = seeded(3);
        let mut acc = vec![0.0f32; lam.len()];
        let reps = 200;
        for _ in 0..reps {
            let st = tf.weights(&lam, &mut rng);
            for (a, &w) in acc.iter_mut().zip(st.weights.iter()) {
                *a += w / reps as f32;
            }
        }
        let victim = argmin_weight(&acc).unwrap();
        assert_eq!(victim, 2, "average weights {acc:?}");
    }

    #[test]
    fn softmax_grad_matches_finite_difference() {
        let lam = [0.2f32, -0.7, 1.1];
        let d = [0.4f32, 1.5, 0.2];
        let mut rng = seeded(4);
        let tf = WeightTransform::Softmax;
        let st = tf.weights(&lam, &mut rng);
        let grad = tf.grad(&st, &d);
        let eps = 1e-3f32;
        for j in 0..lam.len() {
            let mut lp = lam;
            lp[j] += eps;
            let mut lm = lam;
            lm[j] -= eps;
            let f = |l: &[f32]| -> f32 {
                tf.weights_with_noise(l, &st).iter().zip(d.iter()).map(|(&w, &di)| w * di).sum()
            };
            let fd = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!((grad[j] - fd).abs() < 1e-3, "j={j}: {} vs {fd}", grad[j]);
        }
    }

    #[test]
    fn gumbel_grad_matches_finite_difference() {
        let lam = [0.2f32, -0.7, 1.1, 0.3];
        let d = [0.4f32, 1.5, 0.2, 0.9];
        let mut rng = seeded(5);
        let tf = WeightTransform::GumbelConfident { tau: 0.7 };
        let st = tf.weights(&lam, &mut rng);
        let grad = tf.grad(&st, &d);
        let eps = 1e-3f32;
        for j in 0..lam.len() {
            let mut lp = lam;
            lp[j] += eps;
            let mut lm = lam;
            lm[j] -= eps;
            let f = |l: &[f32]| -> f32 {
                tf.weights_with_noise(l, &st).iter().zip(d.iter()).map(|(&w, &di)| w * di).sum()
            };
            let fd = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!((grad[j] - fd).abs() < 2e-3, "j={j}: {} vs {fd}", grad[j]);
        }
    }

    #[test]
    fn gradient_descent_on_lambda_downweights_distant_teachers() {
        // Teacher 1 has a much larger distance; descending L(λ) should
        // shrink its softmax weight.
        let mut lam = vec![0.0f32; 3];
        let d = [0.1f32, 2.0, 0.3];
        let tf = WeightTransform::Softmax;
        let mut rng = seeded(6);
        for _ in 0..50 {
            let st = tf.weights(&lam, &mut rng);
            let g = tf.grad(&st, &d);
            for (l, gi) in lam.iter_mut().zip(g.iter()) {
                *l -= 0.5 * gi;
            }
        }
        let final_w = softmax_slice(&lam);
        assert!(final_w[1] < 0.1, "distant teacher weight {:?}", final_w);
        assert!(final_w[0] > final_w[2]);
    }

    #[test]
    fn argmin_weight_basics() {
        assert_eq!(argmin_weight(&[0.3, 0.1, 0.6]), Some(1));
        assert_eq!(argmin_weight(&[]), None);
    }
}
