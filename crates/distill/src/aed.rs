//! Adaptive Ensemble Distillation — paper Algorithm 1.
//!
//! AED trains the quantized student under Eq. 2 while *learning* the teacher
//! weights by bi-level optimization:
//!
//! * **Inner level** (Eq. 4): with weights frozen, the student parameters
//!   `w` are trained on the **training** split for `v` epochs.
//! * **Outer level** (Eq. 3): with the student frozen, the per-teacher
//!   distances `Dist(q_i, p_w)` are measured on the **validation** split and
//!   the logits `λ` take one gradient step on
//!   `α·L_CE + (1−α)·Σ σ(λ)_i·Dist_i` — only the second term depends on λ,
//!   and its gradient is available in closed form through the weight
//!   transform (softmax or the Gumbel-confident chain of Section 3.2.2).
//!
//! Using the *validation* split for the outer level is what prevents λ from
//! overfitting the same data the student trains on, as the paper argues.

use crate::teacher::TeacherProbs;
use crate::trainer::{eval_student, train_student_epochs, StudentTrainOpts};
use crate::weights::{weight_entropy, WeightState, WeightTransform};
use crate::Result;
use lightts_data::Splits;
use lightts_models::inception::{InceptionConfig, InceptionTime};
use lightts_models::Classifier;
use lightts_nn::loss::kl_mean;
use lightts_obs as obs;
use lightts_tensor::rng::seeded;

/// Configuration of one AED run.
#[derive(Debug, Clone, Copy)]
pub struct AedConfig {
    /// Inner-level training hyper-parameters (α, epochs, batch, lr).
    pub train: StudentTrainOpts,
    /// Inner epochs per outer λ update (the paper's `v`; 50 of 1500 epochs
    /// there, scaled proportionally here).
    pub v: usize,
    /// Learning rate of the outer λ step.
    pub lambda_lr: f32,
    /// Weight parameterization (softmax, or Gumbel-confident for removal).
    pub transform: WeightTransform,
}

impl Default for AedConfig {
    fn default() -> Self {
        AedConfig {
            train: StudentTrainOpts::default(),
            v: 6,
            lambda_lr: 2.0,
            transform: WeightTransform::GumbelConfident { tau: 0.5 },
        }
    }
}

/// Outcome of one AED run.
#[derive(Debug)]
pub struct AedResult {
    /// The trained quantized student.
    pub student: InceptionTime,
    /// Final raw teacher logits λ.
    pub lambda: Vec<f32>,
    /// Final simplex weights λ̂ (what the removal loop inspects).
    pub weights: Vec<f32>,
    /// Student accuracy on the validation split.
    pub val_accuracy: f64,
    /// Student top-5 accuracy on the validation split.
    pub val_top5: f64,
}

/// Runs Algorithm 1: bi-level AED with the given weight transform.
pub fn run_aed(
    splits: &Splits,
    teachers: &TeacherProbs,
    config: &InceptionConfig,
    cfg: &AedConfig,
) -> Result<AedResult> {
    let n = teachers.len();
    let mut rng = seeded(cfg.train.seed);
    let mut student = InceptionTime::new(config.clone(), &mut rng)?;
    let mut optimizer = cfg.train.make_optimizer();

    // line 2: uniform initialization (zero logits ⇒ σ(λ) = 1/N)
    let mut lambda = vec![0.0f32; n];
    let mut state: WeightState = cfg.transform.weights(&lambda, &mut rng);

    let v = cfg.v.max(1);
    let mut remaining = cfg.train.epochs;
    let outer_counter = obs::global().counter("aed.outer_steps");
    while remaining > 0 {
        let slice = v.min(remaining);
        // line 6: inner-level steps with frozen weights
        {
            let mut sp = obs::span!("aed.inner", { teachers: n, epochs: slice });
            let loss = train_student_epochs(
                &mut student,
                &splits.train,
                &teachers.train,
                &state.weights,
                &cfg.train,
                optimizer.as_mut(),
                &mut rng,
                slice,
            )?;
            sp.record("loss", loss);
        }
        remaining -= slice;
        if remaining == 0 {
            break;
        }
        // line 8: outer-level λ step on the validation split
        let mut sp = obs::span!("aed.outer", { teachers: n });
        let p_val = student.predict_proba_dataset(&splits.validation)?;
        let distances: Vec<f32> = teachers
            .val
            .iter()
            .map(|q| kl_mean(q, &p_val))
            .collect::<std::result::Result<_, _>>()?;
        let grad = cfg.transform.grad(&state, &distances);
        for (l, g) in lambda.iter_mut().zip(grad.iter()) {
            *l -= cfg.lambda_lr * g;
        }
        state = cfg.transform.weights(&lambda, &mut rng);
        outer_counter.inc();
        sp.record("weight_entropy", weight_entropy(&state.weights));
    }

    let (val_accuracy, val_top5) = eval_student(&student, &splits.validation)?;
    Ok(AedResult { student, lambda, weights: state.weights, val_accuracy, val_top5 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::synth::{Generator, SynthConfig};
    use lightts_models::inception::BlockSpec;
    use lightts_tensor::Tensor;

    fn splits(classes: usize, seed: u64) -> Splits {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
            seed,
        );
        gen.splits("aed-test", 48, 24, 24, seed + 1).unwrap()
    }

    fn student_cfg(classes: usize, bits: u8) -> InceptionConfig {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits }; 2],
            filters: 4,
            in_dims: 1,
            in_len: 24,
            num_classes: classes,
        }
    }

    /// Synthetic teachers: one oracle (smoothed labels), one anti-oracle.
    fn synthetic_teachers(s: &Splits, sharp: f32) -> TeacherProbs {
        let mk = |ds: &lightts_data::LabeledDataset, invert: bool| {
            let k = ds.num_classes();
            let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
            for (i, &l) in ds.labels().iter().enumerate() {
                let target = if invert { (l + 1) % k } else { l };
                t.set(&[i, target], sharp).unwrap();
            }
            t
        };
        TeacherProbs::from_raw(
            vec![mk(&s.train, false), mk(&s.train, true)],
            vec![mk(&s.validation, false), mk(&s.validation, true)],
            s.validation.labels(),
        )
        .unwrap()
    }

    #[test]
    fn aed_learns_and_downweights_the_bad_teacher() {
        let s = splits(3, 100);
        let teachers = synthetic_teachers(&s, 0.85);
        let cfg = AedConfig {
            train: StudentTrainOpts { epochs: 24, batch_size: 16, ..Default::default() },
            v: 4,
            lambda_lr: 2.0,
            transform: WeightTransform::Softmax,
        };
        let res = run_aed(&s, &teachers, &student_cfg(3, 8), &cfg).unwrap();
        assert!(res.val_accuracy > 0.5, "val accuracy {}", res.val_accuracy);
        // the anti-oracle teacher (index 1) must end with the smaller weight
        assert!(
            res.weights[1] < res.weights[0],
            "anti-oracle weight {:?} not suppressed",
            res.weights
        );
        assert!(res.lambda[1] < res.lambda[0]);
    }

    #[test]
    fn gumbel_transform_also_trains() {
        let s = splits(2, 101);
        let teachers = synthetic_teachers(&s, 0.9);
        let cfg = AedConfig {
            train: StudentTrainOpts { epochs: 16, batch_size: 16, ..Default::default() },
            v: 4,
            lambda_lr: 2.0,
            transform: WeightTransform::GumbelConfident { tau: 0.5 },
        };
        let res = run_aed(&s, &teachers, &student_cfg(2, 8), &cfg).unwrap();
        assert!(res.val_accuracy > 0.5, "val accuracy {}", res.val_accuracy);
        let sum: f32 = res.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn single_teacher_degenerates_gracefully() {
        let s = splits(2, 102);
        let t = synthetic_teachers(&s, 0.9).subset(&[0]).unwrap();
        let cfg = AedConfig {
            train: StudentTrainOpts { epochs: 8, batch_size: 16, ..Default::default() },
            ..Default::default()
        };
        let res = run_aed(&s, &t, &student_cfg(2, 32), &cfg).unwrap();
        assert_eq!(res.weights.len(), 1);
        assert!((res.weights[0] - 1.0).abs() < 1e-5);
    }
}
