//! The LightTS teacher-removal loop (paper Section 3.2.2, Figure 9).
//!
//! After each AED run the teacher with the smallest weight λ̂ is removed and
//! AED re-runs on the remaining set — at most `N − 1` removals, hence the
//! linear `O(N · E · BP_w)` complexity the paper contrasts with the
//! factorial leave-one-out search. The configuration with the best
//! *validation* accuracy across rounds is returned.
//!
//! Three strategies are provided to reproduce the Table 3 ablation:
//! no removal, softmax-weight removal, and the confident Gumbel removal
//! LightTS uses.

use crate::aed::{run_aed, AedConfig};
use crate::teacher::TeacherProbs;
use crate::weights::{argmin_weight, WeightTransform};
use crate::{DistillError, Result};
use lightts_data::Splits;
use lightts_models::inception::{InceptionConfig, InceptionTime};

/// How teachers are removed between AED rounds (Table 3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalStrategy {
    /// No removal: one AED round on the full ensemble (AED-One).
    None,
    /// Remove the argmin of the plain softmax weights each round.
    Softmax,
    /// Remove the argmin of the Gumbel-confident weights λ̂ each round
    /// (the LightTS default).
    GumbelConfident,
}

/// One round of the removal loop.
#[derive(Debug, Clone)]
pub struct RemovalRound {
    /// Teacher indices (into the original ensemble) used this round.
    pub kept: Vec<usize>,
    /// Validation accuracy of the student trained this round.
    pub val_accuracy: f64,
    /// The final weights of this round (aligned with `kept`).
    pub weights: Vec<f32>,
}

/// Outcome of the removal loop: the best round's student and provenance.
#[derive(Debug)]
pub struct RemovalResult {
    /// The best student found (highest validation accuracy).
    pub student: InceptionTime,
    /// The teacher subset that produced it.
    pub kept: Vec<usize>,
    /// Its validation accuracy.
    pub val_accuracy: f64,
    /// Its validation top-5 accuracy.
    pub val_top5: f64,
    /// Every round, in execution order.
    pub history: Vec<RemovalRound>,
    /// Number of AED runs executed (the cost driver).
    pub aed_runs: usize,
}

fn transform_for(strategy: RemovalStrategy, base: WeightTransform) -> WeightTransform {
    match strategy {
        RemovalStrategy::None | RemovalStrategy::Softmax => WeightTransform::Softmax,
        RemovalStrategy::GumbelConfident => match base {
            WeightTransform::GumbelConfident { tau } => WeightTransform::GumbelConfident { tau },
            WeightTransform::Softmax => WeightTransform::GumbelConfident { tau: 0.5 },
        },
    }
}

/// Runs AED with iterative teacher removal, returning the best round.
pub fn lightts_removal(
    splits: &Splits,
    teachers: &TeacherProbs,
    config: &InceptionConfig,
    aed_cfg: &AedConfig,
    strategy: RemovalStrategy,
) -> Result<RemovalResult> {
    if teachers.is_empty() {
        return Err(DistillError::BadInput { what: "no teachers".into() });
    }
    let mut cfg = *aed_cfg;
    cfg.transform = transform_for(strategy, aed_cfg.transform);

    let mut kept: Vec<usize> = (0..teachers.len()).collect();
    let mut history = Vec::new();
    let mut best: Option<RemovalResult> = None;
    let mut aed_runs = 0usize;

    loop {
        let sub = teachers.subset(&kept)?;
        let res = run_aed(splits, &sub, config, &cfg)?;
        aed_runs += 1;
        history.push(RemovalRound {
            kept: kept.clone(),
            val_accuracy: res.val_accuracy,
            weights: res.weights.clone(),
        });
        let candidate_better = best.as_ref().is_none_or(|b| res.val_accuracy > b.val_accuracy);
        if candidate_better {
            best = Some(RemovalResult {
                student: res.student,
                kept: kept.clone(),
                val_accuracy: res.val_accuracy,
                val_top5: res.val_top5,
                history: Vec::new(),
                aed_runs: 0,
            });
        }
        if strategy == RemovalStrategy::None || kept.len() == 1 {
            break;
        }
        let victim = argmin_weight(&res.weights).expect("non-empty weights");
        kept.remove(victim);
    }

    let mut best = best.expect("at least one round ran");
    best.history = history;
    best.aed_runs = aed_runs;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::StudentTrainOpts;
    use lightts_data::synth::{Generator, SynthConfig};
    use lightts_models::inception::BlockSpec;
    use lightts_tensor::Tensor;

    fn splits(classes: usize, seed: u64) -> Splits {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
            seed,
        );
        gen.splits("rm-test", 48, 24, 24, seed + 1).unwrap()
    }

    fn student_cfg(classes: usize) -> InceptionConfig {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits: 8 }; 2],
            filters: 4,
            in_dims: 1,
            in_len: 24,
            num_classes: classes,
        }
    }

    fn quick_aed(epochs: usize) -> AedConfig {
        AedConfig {
            train: StudentTrainOpts { epochs, batch_size: 16, ..Default::default() },
            v: 4,
            lambda_lr: 2.0,
            transform: WeightTransform::GumbelConfident { tau: 0.5 },
        }
    }

    /// Three teachers: two oracles and one anti-oracle.
    fn teachers(s: &Splits) -> TeacherProbs {
        let mk = |ds: &lightts_data::LabeledDataset, invert: bool, sharp: f32| {
            let k = ds.num_classes();
            let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
            for (i, &l) in ds.labels().iter().enumerate() {
                let target = if invert { (l + 1) % k } else { l };
                t.set(&[i, target], sharp).unwrap();
            }
            t
        };
        TeacherProbs::from_raw(
            vec![mk(&s.train, false, 0.9), mk(&s.train, false, 0.8), mk(&s.train, true, 0.9)],
            vec![
                mk(&s.validation, false, 0.9),
                mk(&s.validation, false, 0.8),
                mk(&s.validation, true, 0.9),
            ],
            s.validation.labels(),
        )
        .unwrap()
    }

    #[test]
    fn none_strategy_runs_exactly_once() {
        let s = splits(2, 110);
        let t = teachers(&s);
        let res =
            lightts_removal(&s, &t, &student_cfg(2), &quick_aed(8), RemovalStrategy::None).unwrap();
        assert_eq!(res.aed_runs, 1);
        assert_eq!(res.history.len(), 1);
        assert_eq!(res.kept, vec![0, 1, 2]);
    }

    #[test]
    fn gumbel_removal_explores_all_rounds() {
        let s = splits(2, 111);
        let t = teachers(&s);
        let res = lightts_removal(
            &s,
            &t,
            &student_cfg(2),
            &quick_aed(8),
            RemovalStrategy::GumbelConfident,
        )
        .unwrap();
        // 3 teachers ⇒ rounds with 3, 2, 1 teachers = 3 AED runs (linear)
        assert_eq!(res.aed_runs, 3);
        assert_eq!(res.history.len(), 3);
        assert_eq!(res.history[0].kept.len(), 3);
        assert_eq!(res.history[2].kept.len(), 1);
        // best round's subset is recorded and non-empty
        assert!(!res.kept.is_empty());
        assert!(res.val_accuracy > 0.4, "val accuracy {}", res.val_accuracy);
    }

    #[test]
    fn history_weights_align_with_kept() {
        let s = splits(2, 112);
        let t = teachers(&s);
        let res = lightts_removal(&s, &t, &student_cfg(2), &quick_aed(8), RemovalStrategy::Softmax)
            .unwrap();
        for round in &res.history {
            assert_eq!(round.kept.len(), round.weights.len());
        }
    }

    #[test]
    fn empty_teachers_rejected() {
        let s = splits(2, 113);
        let t = teachers(&s);
        let empty =
            TeacherProbs { train: vec![], val: vec![], val_accuracy: vec![], num_classes: 2 };
        assert!(lightts_removal(&s, &empty, &student_cfg(2), &quick_aed(4), RemovalStrategy::None)
            .is_err());
        drop(t);
    }
}
