//! AED-LOO: leave-one-out teacher removal (paper Section 3.2.2, Figure 8).
//!
//! The baseline variant that removes teachers by *trying* every single
//! removal: from the current subset, each leave-one-out candidate is
//! evaluated with a full AED run; if the best candidate improves validation
//! accuracy the search descends into it, otherwise it stops. The paper notes
//! this grows factorially in the worst case — `max_evals` bounds the budget,
//! and the experiment harness reports the evaluation count so the Figure 18
//! training-time ranking (AED-LOO slowest) reproduces.

use crate::aed::{run_aed, AedConfig};
use crate::removal::{RemovalResult, RemovalRound};
use crate::teacher::TeacherProbs;
use crate::weights::WeightTransform;
use crate::{DistillError, Result};
use lightts_data::Splits;
use lightts_models::inception::InceptionConfig;

/// Runs AED with leave-one-out removal, bounded by `max_evals` AED runs.
pub fn aed_loo(
    splits: &Splits,
    teachers: &TeacherProbs,
    config: &InceptionConfig,
    aed_cfg: &AedConfig,
    max_evals: usize,
) -> Result<RemovalResult> {
    if teachers.is_empty() {
        return Err(DistillError::BadInput { what: "no teachers".into() });
    }
    let mut cfg = *aed_cfg;
    cfg.transform = WeightTransform::Softmax; // LOO does not need λ̂ sharpening
    let max_evals = max_evals.max(1);

    let mut kept: Vec<usize> = (0..teachers.len()).collect();
    let mut history = Vec::new();
    let mut aed_runs = 0usize;

    // evaluate the full ensemble first
    let sub = teachers.subset(&kept)?;
    let first = run_aed(splits, &sub, config, &cfg)?;
    aed_runs += 1;
    history.push(RemovalRound {
        kept: kept.clone(),
        val_accuracy: first.val_accuracy,
        weights: first.weights.clone(),
    });
    let mut best = RemovalResult {
        student: first.student,
        kept: kept.clone(),
        val_accuracy: first.val_accuracy,
        val_top5: first.val_top5,
        history: Vec::new(),
        aed_runs: 0,
    };

    // greedy leave-one-out descent
    'outer: while kept.len() > 1 && aed_runs < max_evals {
        let mut round_best: Option<(Vec<usize>, crate::aed::AedResult)> = None;
        for drop_pos in 0..kept.len() {
            if aed_runs >= max_evals {
                break;
            }
            let mut candidate = kept.clone();
            candidate.remove(drop_pos);
            let sub = teachers.subset(&candidate)?;
            let res = run_aed(splits, &sub, config, &cfg)?;
            aed_runs += 1;
            history.push(RemovalRound {
                kept: candidate.clone(),
                val_accuracy: res.val_accuracy,
                weights: res.weights.clone(),
            });
            let better = round_best.as_ref().is_none_or(|(_, b)| res.val_accuracy > b.val_accuracy);
            if better {
                round_best = Some((candidate, res));
            }
        }
        match round_best {
            Some((candidate, res)) if res.val_accuracy > best.val_accuracy => {
                best = RemovalResult {
                    student: res.student,
                    kept: candidate.clone(),
                    val_accuracy: res.val_accuracy,
                    val_top5: res.val_top5,
                    history: Vec::new(),
                    aed_runs: 0,
                };
                kept = candidate;
            }
            _ => break 'outer, // no improvement ⇒ stop removing
        }
    }

    best.history = history;
    best.aed_runs = aed_runs;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::StudentTrainOpts;
    use lightts_data::synth::{Generator, SynthConfig};
    use lightts_data::Splits;
    use lightts_models::inception::BlockSpec;
    use lightts_tensor::Tensor;

    fn splits(seed: u64) -> Splits {
        let gen = Generator::new(
            SynthConfig { classes: 2, dims: 1, length: 24, difficulty: 0.2, waveforms: 3 },
            seed,
        );
        gen.splits("loo-test", 40, 20, 20, seed + 1).unwrap()
    }

    fn student_cfg() -> InceptionConfig {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits: 8 }; 2],
            filters: 4,
            in_dims: 1,
            in_len: 24,
            num_classes: 2,
        }
    }

    fn teachers(s: &Splits) -> TeacherProbs {
        let mk = |ds: &lightts_data::LabeledDataset, invert: bool| {
            let k = ds.num_classes();
            let sharp = 0.9f32;
            let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
            for (i, &l) in ds.labels().iter().enumerate() {
                let target = if invert { (l + 1) % k } else { l };
                t.set(&[i, target], sharp).unwrap();
            }
            t
        };
        TeacherProbs::from_raw(
            vec![mk(&s.train, false), mk(&s.train, true)],
            vec![mk(&s.validation, false), mk(&s.validation, true)],
            s.validation.labels(),
        )
        .unwrap()
    }

    #[test]
    fn loo_respects_eval_budget() {
        let s = splits(120);
        let t = teachers(&s);
        let cfg = AedConfig {
            train: StudentTrainOpts { epochs: 6, batch_size: 16, ..Default::default() },
            v: 3,
            lambda_lr: 2.0,
            transform: WeightTransform::Softmax,
        };
        let res = aed_loo(&s, &t, &student_cfg(), &cfg, 3).unwrap();
        assert!(res.aed_runs <= 3);
        assert!(!res.history.is_empty());
        assert!(!res.kept.is_empty());
    }

    #[test]
    fn loo_evaluates_full_set_first() {
        let s = splits(121);
        let t = teachers(&s);
        let cfg = AedConfig {
            train: StudentTrainOpts { epochs: 6, batch_size: 16, ..Default::default() },
            v: 3,
            lambda_lr: 2.0,
            transform: WeightTransform::Softmax,
        };
        let res = aed_loo(&s, &t, &student_cfg(), &cfg, 8).unwrap();
        assert_eq!(res.history[0].kept, vec![0, 1]);
        // later rounds are strict subsets
        for r in res.history.iter().skip(1) {
            assert!(r.kept.len() < 2);
        }
    }
}
