//! Crash-safe student training: per-epoch checkpointing with bit-identical
//! resume.
//!
//! Distilling one student is cheap; distilling hundreds across a benchmark
//! sweep (or inside a MOBO search) is hours of compute a crash should not
//! forfeit. [`train_student_checkpointed`] wraps the shared
//! [`trainer`](crate::trainer) loop to snapshot after every epoch — the
//! full-precision shadow weights
//! ([`save_bytes_exact`](lightts_models::inception::InceptionTime::save_bytes_exact)),
//! the optimizer's momentum/moment state, and the RNG stream position —
//! through [`lightts_obs::checkpoint::atomic_write`], so the file on disk is
//! always a complete snapshot.
//!
//! **The resume contract is bit-identical:** a run killed at any epoch and
//! resumed from its checkpoint produces exactly the weights (every f32 bit)
//! of an uninterrupted run. This is what makes checkpointing trustworthy —
//! "approximately resumed" training silently changes results. The chaos
//! suite (`tests/chaos.rs` at the workspace root) proves the contract by
//! killing runs at several epochs via the `trainer.epoch` failpoint and
//! comparing against an oracle run.

use crate::trainer::{train_student_epochs, StudentTrainOpts};
use crate::{DistillError, Result};
use lightts_data::LabeledDataset;
use lightts_models::inception::{InceptionConfig, InceptionTime};
use lightts_obs::checkpoint::{atomic_write, read_checkpoint, SectionReader, SectionWriter};
use lightts_tensor::rng::{rng_from_state, rng_state, seeded};
use lightts_tensor::Tensor;
use std::path::Path;

/// Container kind tag for trainer checkpoints.
const KIND: &str = "distill.trainer";

fn ck(what: impl Into<String>) -> DistillError {
    DistillError::Checkpoint { what: what.into() }
}

fn rng_bytes(s: [u64; 4]) -> Vec<u8> {
    s.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn rng_from_bytes(b: &[u8]) -> Result<[u64; 4]> {
    if b.len() != 32 {
        return Err(ck(format!("rng section is {} bytes, expected 32", b.len())));
    }
    let mut s = [0u64; 4];
    for (i, w) in s.iter_mut().enumerate() {
        *w = u64::from_le_bytes(b[i * 8..(i + 1) * 8].try_into().unwrap());
    }
    Ok(s)
}

/// Like [`train_student`](crate::trainer::train_student), but crash-safe:
/// snapshots to `ckpt` after every epoch and resumes from it if present.
///
/// * Fresh start (no file at `ckpt`): identical to `train_student`.
/// * Resume: picks up at the first uncompleted epoch; the final student is
///   **bit-identical** to an uninterrupted run with the same inputs.
/// * A checkpoint from a different student configuration is rejected with
///   [`DistillError::Checkpoint`] rather than silently continuing the
///   wrong run.
///
/// The checkpoint file is left in place on success (it then holds the
/// final epoch's state); callers that are done with it delete it.
pub fn train_student_checkpointed(
    config: &InceptionConfig,
    train: &LabeledDataset,
    q_train: &[Tensor],
    weights: &[f32],
    opts: &StudentTrainOpts,
    ckpt: &Path,
) -> Result<InceptionTime> {
    let mut optimizer = opts.make_optimizer();
    let (mut student, mut rng, start_epoch) = match read_checkpoint(ckpt)
        .map_err(|e| ck(format!("reading {ckpt:?}: {e}")))?
    {
        Some(bytes) => {
            let r = SectionReader::parse(&bytes).map_err(ck)?;
            if r.kind() != KIND {
                return Err(ck(format!("{ckpt:?} is a {:?} checkpoint, not {KIND:?}", r.kind())));
            }
            let epoch_bytes = r.require("epoch").map_err(ck)?;
            let epoch = u64::from_le_bytes(
                epoch_bytes.try_into().map_err(|_| ck("malformed epoch section"))?,
            ) as usize;
            let student = InceptionTime::load_bytes_exact(r.require("student").map_err(ck)?)?;
            if student.config() != config {
                return Err(ck(format!(
                    "{ckpt:?} holds a different student configuration; refusing to resume"
                )));
            }
            optimizer
                .load_state_bytes(r.require("optimizer").map_err(ck)?)
                .map_err(|e| ck(format!("optimizer state: {e}")))?;
            let rng = rng_from_state(rng_from_bytes(r.require("rng").map_err(ck)?)?);
            (student, rng, epoch)
        }
        None => {
            let mut rng = seeded(opts.seed);
            let student = InceptionTime::new(config.clone(), &mut rng)?;
            (student, rng, 0)
        }
    };
    for epoch in start_epoch..opts.epochs {
        train_student_epochs(
            &mut student,
            train,
            q_train,
            weights,
            opts,
            optimizer.as_mut(),
            &mut rng,
            1,
        )?;
        let mut w = SectionWriter::new(KIND);
        w.section("epoch", &((epoch + 1) as u64).to_le_bytes());
        w.section("student", &student.save_bytes_exact()?);
        w.section("optimizer", &optimizer.state_bytes());
        w.section("rng", &rng_bytes(rng_state(&rng)));
        atomic_write(ckpt, &w.finish()).map_err(|e| ck(format!("writing {ckpt:?}: {e}")))?;
    }
    Ok(student)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_student;
    use lightts_data::synth::{Generator, SynthConfig};
    use lightts_models::inception::BlockSpec;
    use std::path::PathBuf;

    fn data(classes: usize, n: usize, seed: u64) -> LabeledDataset {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 24, difficulty: 0.15, waveforms: 3 },
            seed,
        );
        gen.split("ckpt-test", n, seed + 1).unwrap()
    }

    fn tiny_student(classes: usize, bits: u8) -> InceptionConfig {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits }; 2],
            filters: 4,
            in_dims: 1,
            in_len: 24,
            num_classes: classes,
        }
    }

    fn oracle_probs(ds: &LabeledDataset, sharp: f32) -> Tensor {
        let k = ds.num_classes();
        let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
        for (i, &l) in ds.labels().iter().enumerate() {
            t.set(&[i, l], sharp).unwrap();
        }
        t
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lightts-distill-{}-{name}", std::process::id()))
    }

    fn bits_of(m: &InceptionTime) -> Vec<u32> {
        m.store().iter().flat_map(|(_, p)| p.value.data().iter().map(|v| v.to_bits())).collect()
    }

    #[test]
    fn checkpointed_fresh_run_matches_plain_training_bitwise() {
        let train = data(2, 24, 95);
        let q = oracle_probs(&train, 0.9);
        let opts = StudentTrainOpts { epochs: 4, batch_size: 12, ..Default::default() };
        let cfg = tiny_student(2, 8);
        let plain = train_student(&cfg, &train, std::slice::from_ref(&q), &[1.0], &opts).unwrap();
        let path = tmp("fresh.ckpt");
        let _ = std::fs::remove_file(&path);
        let ckpt = train_student_checkpointed(&cfg, &train, &[q], &[1.0], &opts, &path).unwrap();
        assert_eq!(bits_of(&plain), bits_of(&ckpt));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_checkpoint_from_different_configuration() {
        let train = data(2, 24, 96);
        let q = oracle_probs(&train, 0.9);
        let opts = StudentTrainOpts { epochs: 1, batch_size: 12, ..Default::default() };
        let path = tmp("wrongcfg.ckpt");
        let _ = std::fs::remove_file(&path);
        train_student_checkpointed(&tiny_student(2, 8), &train, &[q.clone()], &[1.0], &opts, &path)
            .unwrap();
        // resuming with a different bit-width must refuse
        let err =
            train_student_checkpointed(&tiny_student(2, 4), &train, &[q], &[1.0], &opts, &path)
                .unwrap_err();
        assert!(matches!(err, DistillError::Checkpoint { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_checkpoint_is_a_typed_error() {
        let train = data(2, 24, 97);
        let q = oracle_probs(&train, 0.9);
        let opts = StudentTrainOpts { epochs: 1, batch_size: 12, ..Default::default() };
        let path = tmp("corrupt.ckpt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let err =
            train_student_checkpointed(&tiny_student(2, 8), &train, &[q], &[1.0], &opts, &path)
                .unwrap_err();
        assert!(matches!(err, DistillError::Checkpoint { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
