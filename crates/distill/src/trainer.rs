//! The shared quantized-student trainer.
//!
//! Every distillation method in this crate ultimately minimizes the AED
//! objective of paper Eq. 2,
//!
//! ```text
//! L = α·L_CE(p_w, y) + (1 − α)·Σ_i w_i · KL(q_i ‖ p_w)
//! ```
//!
//! differing only in how the teacher weights `w` are produced (uniform,
//! CAWPE, min-norm, reinforced, or AED's learned λ̂) and whether they change
//! during training. Routing all methods through this one trainer keeps the
//! comparison honest: accuracy differences in the experiment tables come
//! from the weighting strategy, not from trainer implementation drift.

use crate::{DistillError, Result};
use lightts_data::LabeledDataset;
use lightts_models::inception::{InceptionConfig, InceptionTime};
use lightts_models::metrics::{accuracy, top_k_accuracy};
use lightts_models::Classifier;
use lightts_nn::optim::{Adam, Optimizer, Sgd};
use lightts_nn::{Bindings, Mode};
use lightts_obs as obs;
use lightts_tensor::rng::seeded;
use lightts_tensor::tape::Tape;
use lightts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::time::Instant;

/// Hyper-parameters of student training (paper Section 4.1.5).
#[derive(Debug, Clone, Copy)]
pub struct StudentTrainOpts {
    /// Loss mix `α` between cross-entropy and distillation (paper: 0.5).
    pub alpha: f32,
    /// Total training epochs.
    pub epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Use Adam instead of SGD+momentum. (The paper uses SGD over 1500
    /// epochs; at this reproduction's reduced epoch budget Adam reaches the
    /// same regime — see DESIGN.md.)
    pub adam: bool,
    /// Seed for shuffling and initialization.
    pub seed: u64,
}

impl Default for StudentTrainOpts {
    fn default() -> Self {
        StudentTrainOpts { alpha: 0.5, epochs: 36, batch_size: 32, lr: 0.01, adam: true, seed: 11 }
    }
}

impl StudentTrainOpts {
    /// Creates the optimizer this configuration asks for.
    pub fn make_optimizer(&self) -> Box<dyn Optimizer> {
        if self.adam {
            Box::new(Adam::new(self.lr))
        } else {
            Box::new(Sgd::new(self.lr, 0.9))
        }
    }
}

/// Validates that teacher tensors align with the dataset and each other.
fn check_teachers(train: &LabeledDataset, q_train: &[Tensor], weights: &[f32]) -> Result<()> {
    if q_train.len() != weights.len() {
        return Err(DistillError::BadInput {
            what: format!("{} teachers but {} weights", q_train.len(), weights.len()),
        });
    }
    for (i, q) in q_train.iter().enumerate() {
        if q.rank() != 2 || q.dims()[0] != train.len() {
            return Err(DistillError::BadInput {
                what: format!(
                    "teacher {i} probs shape {:?} does not cover {} training rows",
                    q.dims(),
                    train.len()
                ),
            });
        }
    }
    Ok(())
}

/// Runs `epochs` epochs of Eq.-2 training with *fixed* teacher weights,
/// preserving optimizer state across calls (the AED inner level runs this in
/// `v`-epoch slices between λ updates).
///
/// Returns the mean loss of the final epoch.
#[allow(clippy::too_many_arguments)]
pub fn train_student_epochs(
    student: &mut InceptionTime,
    train: &LabeledDataset,
    q_train: &[Tensor],
    weights: &[f32],
    opts: &StudentTrainOpts,
    optimizer: &mut dyn Optimizer,
    rng: &mut StdRng,
    epochs: usize,
) -> Result<f32> {
    check_teachers(train, q_train, weights)?;
    let alpha = opts.alpha;
    let mut last_loss = f32::INFINITY;
    let all: Vec<usize> = (0..train.len()).collect();
    let epoch_counter = obs::global().counter("distill.epochs");
    let epoch_ns = obs::global().histogram("distill.epoch_ns");
    // One tape + binding set reused across every mini-batch of every epoch;
    // `reset` retains node storage so steady-state steps are allocation-free
    // (buffer traffic is absorbed by `lightts_tensor::pool`).
    let mut tape = Tape::new();
    let mut bind = Bindings::new();
    for epoch in 0..epochs {
        obs::failpoint::hit("trainer.epoch").map_err(|what| DistillError::Fault { what })?;
        let mut sp = obs::span!("trainer.epoch", { epoch: epoch, samples: train.len() });
        let t0 = Instant::now();
        let mut order = all.clone();
        order.shuffle(rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(opts.batch_size.max(1)) {
            let batch = train.batch(chunk)?;
            tape.reset();
            bind.reset();
            let logits = student.forward_train(&mut tape, &mut bind, &batch.inputs, Mode::Train)?;
            let logp = tape.log_softmax(logits)?;
            let ce = tape.nll_mean(logp, &batch.labels)?;
            let mut loss = tape.scale(ce, alpha)?;
            for (q, &w) in q_train.iter().zip(weights.iter()) {
                if w <= 1e-6 {
                    continue;
                }
                let q_rows = q.gather_rows(chunk)?;
                let kl = tape.kl_to_target(logp, &q_rows)?;
                let term = tape.scale(kl, (1.0 - alpha) * w)?;
                loss = tape.add(loss, term)?;
            }
            epoch_loss += tape.value(loss)?.item()?;
            batches += 1;
            let grads = tape.backward(loss)?;
            let pairs = bind.collect_grads(grads);
            optimizer.step(student.store_mut(), &pairs)?;
        }
        last_loss = epoch_loss / batches.max(1) as f32;
        epoch_counter.inc();
        epoch_ns.record_duration(t0.elapsed());
        sp.record("loss", last_loss);
        sp.record("batches", batches);
    }
    Ok(last_loss)
}

/// Builds a fresh student and trains it to completion with fixed weights
/// (the single-shot path used by the Classic-KD-style baselines).
pub fn train_student(
    config: &InceptionConfig,
    train: &LabeledDataset,
    q_train: &[Tensor],
    weights: &[f32],
    opts: &StudentTrainOpts,
) -> Result<InceptionTime> {
    let mut rng = seeded(opts.seed);
    let mut student = InceptionTime::new(config.clone(), &mut rng)?;
    let mut optimizer = opts.make_optimizer();
    train_student_epochs(
        &mut student,
        train,
        q_train,
        weights,
        opts,
        optimizer.as_mut(),
        &mut rng,
        opts.epochs,
    )?;
    Ok(student)
}

/// Evaluates a student: `(accuracy, top-5 accuracy)` on `ds`.
pub fn eval_student(student: &InceptionTime, ds: &LabeledDataset) -> Result<(f64, f64)> {
    let probs = student.predict_proba_dataset(ds)?;
    let acc = accuracy(&probs, ds.labels())?;
    let top5 = top_k_accuracy(&probs, ds.labels(), 5)?;
    obs::event!("trainer.eval", { samples: ds.len(), acc: acc, top5: top5 });
    Ok((acc, top5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::synth::{Generator, SynthConfig};
    use lightts_models::inception::BlockSpec;

    fn data(classes: usize, n: usize, seed: u64) -> LabeledDataset {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 24, difficulty: 0.15, waveforms: 3 },
            seed,
        );
        gen.split("trainer-test", n, seed + 1).unwrap()
    }

    fn tiny_student(classes: usize, bits: u8) -> InceptionConfig {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits }; 2],
            filters: 4,
            in_dims: 1,
            in_len: 24,
            num_classes: classes,
        }
    }

    /// A perfect synthetic teacher: slightly smoothed one-hot labels.
    fn oracle_probs(ds: &LabeledDataset, sharp: f32) -> Tensor {
        let k = ds.num_classes();
        let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
        for (i, &l) in ds.labels().iter().enumerate() {
            t.set(&[i, l], sharp).unwrap();
        }
        t
    }

    #[test]
    fn distillation_from_oracle_teacher_learns() {
        let train = data(3, 48, 90);
        let q = oracle_probs(&train, 0.9);
        let opts = StudentTrainOpts { epochs: 20, batch_size: 16, ..Default::default() };
        let student = train_student(&tiny_student(3, 8), &train, &[q], &[1.0], &opts).unwrap();
        let (acc, top5) = eval_student(&student, &train).unwrap();
        assert!(acc > 0.7, "distilled train accuracy {acc}");
        assert!(top5 >= acc);
    }

    #[test]
    fn zero_weight_teachers_are_skipped() {
        let train = data(2, 24, 91);
        let good = oracle_probs(&train, 0.9);
        // adversarial teacher: uniform — would slow learning if not skipped
        let bad = Tensor::full(&[train.len(), 2], 0.5);
        let opts = StudentTrainOpts { epochs: 10, batch_size: 12, ..Default::default() };
        let s =
            train_student(&tiny_student(2, 32), &train, &[good, bad], &[1.0, 0.0], &opts).unwrap();
        let (acc, _) = eval_student(&s, &train).unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn mismatched_teacher_rows_rejected() {
        let train = data(2, 24, 92);
        let q = Tensor::full(&[10, 2], 0.5); // wrong row count
        let opts = StudentTrainOpts::default();
        assert!(train_student(&tiny_student(2, 32), &train, &[q], &[1.0], &opts).is_err());
    }

    #[test]
    fn weight_count_must_match() {
        let train = data(2, 24, 93);
        let q = oracle_probs(&train, 0.9);
        let opts = StudentTrainOpts::default();
        assert!(train_student(&tiny_student(2, 32), &train, &[q], &[0.5, 0.5], &opts).is_err());
    }

    #[test]
    fn optimizer_state_persists_across_slices() {
        // Training in two 5-epoch slices with one optimizer should behave
        // like training; loss after slices should drop below the start.
        let train = data(2, 24, 94);
        let q = oracle_probs(&train, 0.9);
        let opts = StudentTrainOpts { epochs: 10, batch_size: 12, ..Default::default() };
        let mut rng = seeded(opts.seed);
        let mut student = InceptionTime::new(tiny_student(2, 8), &mut rng).unwrap();
        let mut optimizer = opts.make_optimizer();
        let first = train_student_epochs(
            &mut student,
            &train,
            std::slice::from_ref(&q),
            &[1.0],
            &opts,
            optimizer.as_mut(),
            &mut rng,
            5,
        )
        .unwrap();
        let second = train_student_epochs(
            &mut student,
            &train,
            &[q],
            &[1.0],
            &opts,
            optimizer.as_mut(),
            &mut rng,
            5,
        )
        .unwrap();
        assert!(second < first, "loss should keep dropping: {first} -> {second}");
    }
}
