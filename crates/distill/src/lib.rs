//! # lightts-distill
//!
//! Knowledge distillation for LightTS: the paper's core contribution —
//! **adaptive ensemble distillation (AED)** with bi-level optimization of
//! teacher weights (Algorithm 1) and confident Gumbel-softmax teacher
//! removal (Section 3.2.2) — plus every baseline of the evaluation:
//!
//! | Method | Module | Teacher weighting |
//! |---|---|---|
//! | Classic KD | [`baselines`] | uniform `1/N`, single combined teacher |
//! | AE-KD | [`baselines`] | min-norm point over per-teacher gradients |
//! | Reinforced | [`baselines`] | REINFORCE with validation reward |
//! | CAWPE | [`baselines`] | validation accuracy to the 4th power |
//! | AED-One | [`aed`] | one bi-level AED run, no removal |
//! | AED-LOO | [`loo`] | AED + leave-one-out removal |
//! | LightTS | [`removal`] | AED + confident Gumbel removal loop |
//!
//! All methods train the same quantized InceptionTime student through the
//! shared [`trainer`], so accuracy differences come from the weighting
//! strategy alone — the comparison the paper's Tables 2–4 make.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod aed;
pub mod baselines;
pub mod checkpoint;
pub mod forecast;
pub mod loo;
pub mod method;
pub mod removal;
pub mod teacher;
pub mod trainer;
pub mod weights;

pub use error::DistillError;
pub use method::{run_method, DistillOutcome, Method};
pub use teacher::TeacherProbs;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DistillError>;
