//! `bench_serve`: serving throughput, single-request loop vs. the dynamic
//! micro-batching queue.
//!
//! The baseline issues one blocking request at a time (every fused batch
//! has size 1, paying the full queue/wake/scatter overhead per sample);
//! the batched variants pipeline the same number of requests through the
//! queue with `max_batch` 4 and 16, letting the scheduler fuse them. The
//! acceptance bar for the serving runtime is batched-at-16 throughput ≥
//! the single-request loop on the same host.
//!
//! Set `LIGHTTS_BENCH_SMOKE=1` (as CI does) to shrink warm-up and
//! measurement windows to a compile-rot check rather than a measurement.

use criterion::{criterion_group, BenchmarkId, Criterion};
use lightts_bench::perf::{self, KernelRecord};
use lightts_models::inception::{InceptionConfig, InceptionTime};
use lightts_serve::{ModelRegistry, Pending, PlanKind, ServeConfig, Server};
use lightts_tensor::rng::seeded;
use std::hint::black_box;
use std::time::Duration;

/// Requests per measured iteration.
const REQUESTS: usize = 64;
const IN_LEN: usize = 64;

fn config() -> Criterion {
    let smoke = std::env::var_os("LIGHTTS_BENCH_SMOKE").is_some();
    let (warm_ms, meas_ms) = if smoke { (50, 150) } else { (300, 1200) };
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(warm_ms))
        .measurement_time(Duration::from_millis(meas_ms))
}

/// A packed 8-bit student export, the deployment artifact a server loads.
fn packed_student() -> Vec<u8> {
    let mut rng = seeded(17);
    let model = InceptionTime::new(InceptionConfig::student(1, IN_LEN, 10, 6, 8), &mut rng)
        .expect("build student");
    model.save_bytes().expect("pack student")
}

fn samples() -> Vec<Vec<f32>> {
    (0..REQUESTS)
        .map(|i| {
            (0..IN_LEN)
                .map(|j| {
                    let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
                    h as f32 / 1000.0 - 1.0
                })
                .collect()
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let packed = packed_student();
    let inputs = samples();
    let mut g = c.benchmark_group("serve");

    // Baseline: one blocking request at a time — every batch has size 1.
    {
        let mut reg = ModelRegistry::new();
        reg.load_packed("student", &packed).unwrap();
        let server = Server::start(
            reg,
            ServeConfig { max_batch: 1, max_wait: Duration::ZERO, ..ServeConfig::default() },
        );
        let handle = server.handle();
        g.bench_function("single_request_loop", |b| {
            b.iter(|| {
                for s in &inputs {
                    black_box(handle.predict("student", s.clone()).unwrap());
                }
            })
        });
        server.shutdown();
    }

    // Pipelined submission through the micro-batching queue.
    for max_batch in [4usize, 16] {
        let mut reg = ModelRegistry::new();
        reg.load_packed("student", &packed).unwrap();
        let cfg = ServeConfig {
            max_batch,
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        };
        let server = Server::start(reg, cfg);
        let handle = server.handle();
        g.bench_function(BenchmarkId::new("batched_queue", max_batch), |b| {
            b.iter(|| {
                let pendings: Vec<Pending> =
                    inputs.iter().map(|s| handle.submit("student", s.clone()).unwrap()).collect();
                for p in pendings {
                    black_box(p.wait().unwrap());
                }
            })
        });
        server.shutdown();
    }

    // The same two lanes through the `plan = i8` knob: the student is
    // compiled into the true-int8 `QuantizedPlan` at registration, so these
    // rows measure the end-to-end serving win of integer inference.
    {
        let mut reg = ModelRegistry::new();
        reg.load_packed_as("student", &packed, PlanKind::I8).unwrap();
        let server = Server::start(
            reg,
            ServeConfig { max_batch: 1, max_wait: Duration::ZERO, ..ServeConfig::default() },
        );
        let handle = server.handle();
        g.bench_function("single_request_loop_i8", |b| {
            b.iter(|| {
                for s in &inputs {
                    black_box(handle.predict("student", s.clone()).unwrap());
                }
            })
        });
        server.shutdown();
    }
    {
        let mut reg = ModelRegistry::new();
        reg.load_packed_as("student", &packed, PlanKind::I8).unwrap();
        let cfg = ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        };
        let server = Server::start(reg, cfg);
        let handle = server.handle();
        g.bench_function(BenchmarkId::new("batched_queue_i8", 16usize), |b| {
            b.iter(|| {
                let pendings: Vec<Pending> =
                    inputs.iter().map(|s| handle.submit("student", s.clone()).unwrap()).collect();
                for p in pendings {
                    black_box(p.wait().unwrap());
                }
            })
        });
        server.shutdown();
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_serve
}

fn main() {
    benches();

    // Record the serving-throughput rows in BENCH_kernels.json too; each
    // iteration serves REQUESTS requests, so median_ns is per-64-requests.
    // threads = 0: the scheduler thread plus automatic kernel workers.
    let scale = perf::current_scale();
    let records: Vec<KernelRecord> = criterion::take_measurements()
        .iter()
        .map(|m| KernelRecord {
            op: m.name.clone(),
            shape: format!("req{REQUESTS}_len{IN_LEN}"),
            median_ns: m.median_ns,
            threads: 0,
            scale: scale.to_string(),
            backend: lightts_tensor::simd::backend().name().to_string(),
        })
        .collect();
    if !records.is_empty() {
        perf::write_records(&perf::default_path(), &records).expect("write BENCH_kernels.json");
    }
}
