//! `bench_kernels`: direct vs GEMM-lowered conv1d kernels plus SIMD
//! backend comparisons, single-threaded.
//!
//! Two acceptance measurements live here:
//!
//! * the im2col lowering: at the InceptionTime-sized shapes `b=16, cin=32,
//!   cout=32, l=128, k ∈ {9,19,39}` the lowered forward and backward-weight
//!   kernels must be ≥ 1.5× faster than the direct oracle on one thread;
//! * the SIMD backends: the `gemm_panel` tile and the `vec_exp`
//!   transcendental must be ≥ 2× faster under the native vector backend
//!   (AVX2+FMA where available) than under the forced scalar oracle.
//!
//! Results (plus the backward-input pass, measured for completeness) are
//! merged into `BENCH_kernels.json` at the repository root — SIMD rows
//! carry the backend in both the bench name and the record's `backend`
//! field — and the speedup summaries are printed at the end.
//!
//! Set `LIGHTTS_BENCH_SMOKE=1` (as CI does) to shrink warm-up and
//! measurement windows to a compile-rot check rather than a measurement.

use criterion::{criterion_group, BenchmarkId, Criterion};
use lightts_bench::perf::{self, KernelRecord};
use lightts_tensor::conv::{
    conv1d_backward_input_direct, conv1d_backward_input_lowered, conv1d_backward_weight_direct,
    conv1d_backward_weight_lowered, conv1d_forward_direct, conv1d_forward_lowered,
};
use lightts_tensor::qint::{qconv1d_same_into, QuantizedMatrix};
use lightts_tensor::rng::seeded;
use lightts_tensor::simd::{
    cpu_supports, gemm_block4_with, qgemm_i8t_with, vec_exp_with, SimdBackend,
};
use lightts_tensor::Tensor;
use std::hint::black_box;
use std::time::Duration;

const B: usize = 16;
const CIN: usize = 32;
const COUT: usize = 32;
const L: usize = 128;
const KS: [usize; 3] = [9, 19, 39];

/// GEMM panel shape for the SIMD comparison: one 4-row tile over a
/// `k=256, n=256` panel (the `K_BLOCK`-sized worst case the blocked matmul
/// feeds the kernel).
const GEMM_K: usize = 256;
const GEMM_N: usize = 256;
/// Elements per `vec_exp` call — one softmax-sized activation slab.
const EXP_N: usize = 4096;

/// The best backend this host supports (what auto-detection would pick).
fn native_backend() -> SimdBackend {
    if cpu_supports(SimdBackend::Avx2) {
        SimdBackend::Avx2
    } else if cpu_supports(SimdBackend::Sse2) {
        SimdBackend::Sse2
    } else {
        SimdBackend::Scalar
    }
}

fn config() -> Criterion {
    let smoke = std::env::var_os("LIGHTTS_BENCH_SMOKE").is_some();
    let (warm_ms, meas_ms) = if smoke { (40, 120) } else { (300, 900) };
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(warm_ms))
        .measurement_time(Duration::from_millis(meas_ms))
}

fn bench_kernels(c: &mut Criterion) {
    // The acceptance numbers are single-threaded: pin the worker count so
    // the comparison measures the lowering, not the thread pool.
    lightts_tensor::par::set_num_threads(1);
    let mut rng = seeded(23);
    let mut g = c.benchmark_group("kernels");
    for &k in &KS {
        let x = Tensor::randn(&mut rng, &[B, CIN, L], 1.0);
        let w = Tensor::randn(&mut rng, &[COUT, CIN, k], 0.3);
        let dy = Tensor::randn(&mut rng, &[B, COUT, L], 1.0);
        g.bench_function(BenchmarkId::new("forward_direct", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_forward_direct(&x, &w).unwrap()))
        });
        g.bench_function(BenchmarkId::new("forward_lowered", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_forward_lowered(&x, &w).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_w_direct", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_weight_direct(&dy, &x, w.dims()).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_w_lowered", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_weight_lowered(&dy, &x, w.dims()).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_x_direct", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_input_direct(&dy, &w, x.dims()).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_x_lowered", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_input_lowered(&dy, &w, x.dims()).unwrap()))
        });
    }
    g.finish();
    lightts_tensor::par::set_num_threads(0);
}

fn bench_simd(c: &mut Criterion) {
    let mut rng = seeded(29);
    let backends: &[SimdBackend] = if native_backend() == SimdBackend::Scalar {
        &[SimdBackend::Scalar]
    } else {
        &[SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2]
    };
    let mut g = c.benchmark_group("simd");

    let a = Tensor::randn(&mut rng, &[4, GEMM_K], 1.0);
    let bmat = Tensor::randn(&mut rng, &[GEMM_K, GEMM_N], 1.0);
    let xs = Tensor::randn(&mut rng, &[EXP_N], 1.0);
    let mut c_rows = vec![vec![0.0f32; GEMM_N]; 4];
    let mut buf = vec![0.0f32; EXP_N];

    for &bk in backends {
        let ad = a.data();
        let (a0, a1, a2, a3) = (
            &ad[..GEMM_K],
            &ad[GEMM_K..2 * GEMM_K],
            &ad[2 * GEMM_K..3 * GEMM_K],
            &ad[3 * GEMM_K..],
        );
        g.bench_function(BenchmarkId::new("gemm_panel", bk.name()), |bch| {
            bch.iter(|| {
                for row in c_rows.iter_mut() {
                    row.fill(0.0);
                }
                let (c0, rest) = c_rows.split_at_mut(1);
                let (c1, rest) = rest.split_at_mut(1);
                let (c2, c3) = rest.split_at_mut(1);
                gemm_block4_with(
                    bk,
                    &mut c0[0],
                    &mut c1[0],
                    &mut c2[0],
                    &mut c3[0],
                    a0,
                    a1,
                    a2,
                    a3,
                    bmat.data(),
                    GEMM_K,
                    GEMM_N,
                );
                black_box(c_rows[0][0]);
            })
        });
        // vec_exp is branch-free straight-line code (clamp + fixed
        // polynomial), so its timing is value-independent: exp-ing the
        // buffer in place repeatedly (values saturate after a few
        // iterations) measures the kernel without a memcpy in the loop.
        buf.copy_from_slice(xs.data());
        g.bench_function(BenchmarkId::new("vec_exp", bk.name()), |bch| {
            bch.iter(|| {
                vec_exp_with(bk, &mut buf);
                black_box(buf[0]);
            })
        });
    }
    g.finish();
}

/// Int8 kernel family (PR 7): the i8 GEMM at the same 4-row panel shape as
/// `simd/gemm_panel` (so the speedup below is a like-for-like f32-vs-i8
/// comparison), and the quantized conv at the conv acceptance shape
/// against `kernels/forward_lowered`.
fn bench_quant(c: &mut Criterion) {
    lightts_tensor::par::set_num_threads(1);
    let backends: &[SimdBackend] = if native_backend() == SimdBackend::Scalar {
        &[SimdBackend::Scalar]
    } else {
        &[SimdBackend::Scalar, SimdBackend::Sse2, SimdBackend::Avx2]
    };
    let mut g = c.benchmark_group("quant");

    // Deterministic i8 operands (value-independent integer kernels, but
    // keep the data fixed anyway).
    let code = |i: usize| ((i as u64).wrapping_mul(2_654_435_761) >> 24) as u8 as i8;
    let qa: Vec<i8> = (0..4 * GEMM_K).map(code).collect();
    let qb: Vec<i8> = (0..GEMM_N * GEMM_K).map(code).collect();
    let mut qout = vec![0i32; 4 * GEMM_N];
    for &bk in backends {
        g.bench_function(BenchmarkId::new("qgemm_i8t", bk.name()), |bch| {
            bch.iter(|| {
                qgemm_i8t_with(bk, &mut qout, &qa, &qb, 4, GEMM_K, GEMM_N);
                black_box(qout[0]);
            })
        });
    }

    // Quantized conv at the im2col acceptance shape (per-sample kernel, so
    // one iteration sweeps the same B samples as the f32 benches). Runs
    // under the process-default (native) backend like `forward_lowered`.
    let k = KS[0];
    let mut rng = seeded(31);
    let w = Tensor::randn(&mut rng, &[COUT, CIN, k], 0.3);
    let qw = QuantizedMatrix::quantize_rows_symmetric(w.data(), COUT, CIN * k).unwrap();
    let qx: Vec<i8> = (0..B * CIN * L).map(code).collect();
    let mut conv_out = vec![0i32; COUT * L];
    let mut patch = Vec::new();
    g.bench_function(BenchmarkId::new("qconv1d_same", format!("k{k}")), |bch| {
        bch.iter(|| {
            for s in 0..B {
                let x = &qx[s * CIN * L..(s + 1) * CIN * L];
                qconv1d_same_into(&mut conv_out, &mut patch, x, CIN, L, &qw, k, 0).unwrap();
            }
            black_box(conv_out[0]);
        })
    });
    g.finish();
    lightts_tensor::par::set_num_threads(0);
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels, bench_simd, bench_quant
}

fn main() {
    benches();

    let scale = perf::current_scale();
    let native = lightts_tensor::simd::backend().name().to_string();
    let measurements = criterion::take_measurements();
    let records: Vec<KernelRecord> = measurements
        .iter()
        .map(|m| {
            let mut parts = m.name.splitn(3, '/');
            let group = parts.next().unwrap_or_default();
            let op = parts.next().unwrap_or("unknown");
            let tail = parts.next().unwrap_or_default();
            if group == "simd" {
                // "simd/gemm_panel/avx2" → op "simd_gemm_panel",
                // backend from the bench id.
                let shape = if op == "gemm_panel" {
                    format!("rows4_k{GEMM_K}_n{GEMM_N}")
                } else {
                    format!("n{EXP_N}")
                };
                KernelRecord {
                    op: format!("simd_{op}"),
                    shape,
                    median_ns: m.median_ns,
                    threads: 1,
                    scale: scale.to_string(),
                    backend: tail.to_string(),
                }
            } else if group == "quant" {
                // "quant/qgemm_i8t/avx2" carries the forced backend;
                // "quant/qconv1d_same/k9" runs under the native backend at
                // the f32 conv acceptance shape.
                let (shape, backend) = if op == "qgemm_i8t" {
                    (format!("rows4_k{GEMM_K}_n{GEMM_N}"), tail.to_string())
                } else {
                    (format!("b{B}_cin{CIN}_cout{COUT}_l{L}_{tail}"), native.clone())
                };
                KernelRecord {
                    op: format!("quant_{op}"),
                    shape,
                    median_ns: m.median_ns,
                    threads: 1,
                    scale: scale.to_string(),
                    backend,
                }
            } else {
                // "kernels/forward_direct/k9" → op "conv1d_forward_direct",
                // shape "b16_cin32_cout32_l128_k9"; these run under the
                // process-default (native) backend.
                KernelRecord {
                    op: format!("conv1d_{op}"),
                    shape: format!("b{B}_cin{CIN}_cout{COUT}_l{L}_{tail}"),
                    median_ns: m.median_ns,
                    threads: 1,
                    scale: scale.to_string(),
                    backend: native.clone(),
                }
            }
        })
        .collect();
    let path = perf::default_path();
    perf::write_records(&path, &records).expect("write BENCH_kernels.json");
    println!("\nwrote {} records to {}", records.len(), path.display());

    // Speedup summary: the headline numbers for the lowering.
    let median = |op: &str, k: usize| {
        measurements.iter().find(|m| m.name == format!("kernels/{op}/k{k}")).map(|m| m.median_ns)
    };
    println!("\nlowered-vs-direct speedups (b={B}, cin={CIN}, cout={COUT}, l={L}, 1 thread):");
    for &k in &KS {
        for pass in ["forward", "backward_w", "backward_x"] {
            if let (Some(d), Some(l)) =
                (median(&format!("{pass}_direct"), k), median(&format!("{pass}_lowered"), k))
            {
                println!("  {pass:<11} k={k:<3} {:>6.2}x", d / l);
            }
        }
    }

    // SIMD backend summary: scalar baseline vs each vector backend.
    let simd_median = |op: &str, bk: &str| {
        measurements.iter().find(|m| m.name == format!("simd/{op}/{bk}")).map(|m| m.median_ns)
    };
    println!("\nSIMD speedups vs scalar (native backend: {native}):");
    for op in ["gemm_panel", "vec_exp"] {
        if let Some(s) = simd_median(op, "scalar") {
            for bk in ["sse2", "avx2"] {
                if let Some(v) = simd_median(op, bk) {
                    println!("  {op:<10} {bk:<6} {:>6.2}x", s / v);
                }
            }
        }
    }

    // Int8-vs-f32 summary: the i8 GEMM against the f32 panel at the same
    // shape (per backend), and the quantized conv against the f32 lowered
    // conv at the acceptance shape.
    let any_median =
        |name: String| measurements.iter().find(|m| m.name == name).map(|m| m.median_ns);
    println!("\nint8 speedups vs f32 (rows4_k{GEMM_K}_n{GEMM_N} panel):");
    for bk in ["scalar", "sse2", "avx2"] {
        if let (Some(f), Some(q)) = (
            any_median(format!("simd/gemm_panel/{bk}")),
            any_median(format!("quant/qgemm_i8t/{bk}")),
        ) {
            println!("  qgemm_i8t  {bk:<6} {:>6.2}x", f / q);
        }
    }
    if let (Some(f), Some(q)) = (
        any_median(format!("kernels/forward_lowered/k{}", KS[0])),
        any_median(format!("quant/qconv1d_same/k{}", KS[0])),
    ) {
        println!("  qconv1d_same vs forward_lowered k{}: {:>6.2}x", KS[0], f / q);
    }
}
