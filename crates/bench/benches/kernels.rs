//! `bench_kernels`: direct vs GEMM-lowered conv1d kernels, single-threaded.
//!
//! This is the acceptance benchmark for the im2col lowering: at the
//! InceptionTime-sized shapes `b=16, cin=32, cout=32, l=128, k ∈ {9,19,39}`
//! the lowered forward and backward-weight kernels must be ≥ 1.5× faster
//! than the direct oracle on one thread. Results (plus the backward-input
//! pass, measured for completeness) are merged into `BENCH_kernels.json` at
//! the repository root; the speedup summary is printed at the end.
//!
//! Set `LIGHTTS_BENCH_SMOKE=1` (as CI does) to shrink warm-up and
//! measurement windows to a compile-rot check rather than a measurement.

use criterion::{criterion_group, BenchmarkId, Criterion};
use lightts_bench::perf::{self, KernelRecord};
use lightts_tensor::conv::{
    conv1d_backward_input_direct, conv1d_backward_input_lowered, conv1d_backward_weight_direct,
    conv1d_backward_weight_lowered, conv1d_forward_direct, conv1d_forward_lowered,
};
use lightts_tensor::rng::seeded;
use lightts_tensor::Tensor;
use std::hint::black_box;
use std::time::Duration;

const B: usize = 16;
const CIN: usize = 32;
const COUT: usize = 32;
const L: usize = 128;
const KS: [usize; 3] = [9, 19, 39];

fn config() -> Criterion {
    let smoke = std::env::var_os("LIGHTTS_BENCH_SMOKE").is_some();
    let (warm_ms, meas_ms) = if smoke { (40, 120) } else { (300, 900) };
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(warm_ms))
        .measurement_time(Duration::from_millis(meas_ms))
}

fn bench_kernels(c: &mut Criterion) {
    // The acceptance numbers are single-threaded: pin the worker count so
    // the comparison measures the lowering, not the thread pool.
    lightts_tensor::par::set_num_threads(1);
    let mut rng = seeded(23);
    let mut g = c.benchmark_group("kernels");
    for &k in &KS {
        let x = Tensor::randn(&mut rng, &[B, CIN, L], 1.0);
        let w = Tensor::randn(&mut rng, &[COUT, CIN, k], 0.3);
        let dy = Tensor::randn(&mut rng, &[B, COUT, L], 1.0);
        g.bench_function(BenchmarkId::new("forward_direct", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_forward_direct(&x, &w).unwrap()))
        });
        g.bench_function(BenchmarkId::new("forward_lowered", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_forward_lowered(&x, &w).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_w_direct", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_weight_direct(&dy, &x, w.dims()).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_w_lowered", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_weight_lowered(&dy, &x, w.dims()).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_x_direct", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_input_direct(&dy, &w, x.dims()).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_x_lowered", format!("k{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_input_lowered(&dy, &w, x.dims()).unwrap()))
        });
    }
    g.finish();
    lightts_tensor::par::set_num_threads(0);
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels
}

fn main() {
    benches();

    let scale = perf::current_scale();
    let measurements = criterion::take_measurements();
    let records: Vec<KernelRecord> = measurements
        .iter()
        .map(|m| {
            // "kernels/forward_direct/k9" → op "conv1d_forward_direct",
            // shape "b16_cin32_cout32_l128_k9".
            let mut parts = m.name.splitn(3, '/');
            let _group = parts.next().unwrap_or_default();
            let op = parts.next().unwrap_or("unknown");
            let kpart = parts.next().unwrap_or("k0");
            KernelRecord {
                op: format!("conv1d_{op}"),
                shape: format!("b{B}_cin{CIN}_cout{COUT}_l{L}_{kpart}"),
                median_ns: m.median_ns,
                threads: 1,
                scale: scale.to_string(),
            }
        })
        .collect();
    let path = perf::default_path();
    perf::write_records(&path, &records).expect("write BENCH_kernels.json");
    println!("\nwrote {} records to {}", records.len(), path.display());

    // Speedup summary: the headline numbers for the lowering.
    let median = |op: &str, k: usize| {
        measurements.iter().find(|m| m.name == format!("kernels/{op}/k{k}")).map(|m| m.median_ns)
    };
    println!("\nlowered-vs-direct speedups (b={B}, cin={CIN}, cout={COUT}, l={L}, 1 thread):");
    for &k in &KS {
        for pass in ["forward", "backward_w", "backward_x"] {
            if let (Some(d), Some(l)) =
                (median(&format!("{pass}_direct"), k), median(&format!("{pass}_lowered"), k))
            {
                println!("  {pass:<11} k={k:<3} {:>6.2}x", d / l);
            }
        }
    }
}
