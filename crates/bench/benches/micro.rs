//! Criterion micro-benchmarks for the LightTS substrates.
//!
//! These cover the building blocks whose cost drives the experiments:
//! convolution kernels, quantized inference by bit-width (the paper's
//! "inference depends only on model size" claim), distillation epochs
//! (AED vs Classic KD, matching the Section 3.2.1 complexity analysis),
//! GP fitting/prediction as the evaluated set grows, the two skyline
//! algorithms, and synthetic dataset generation.

use criterion::{criterion_group, BenchmarkId, Criterion};
use lightts::distill::teacher::TeacherProbs;
use lightts::distill::trainer::{train_student_epochs, StudentTrainOpts};
use lightts::prelude::*;
use lightts::search::gp::GaussianProcess;
use lightts::search::pareto::{pareto_frontier, skyline_bnl, Evaluated};
use lightts::tensor::conv::{conv1d_backward_weight, conv1d_forward};
use lightts::tensor::rng::seeded;
use lightts::tensor::Tensor;
use lightts_bench::perf::{self, KernelRecord};
use lightts_data::synth::{Generator, SynthConfig};
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = seeded(1);
    let mut g = c.benchmark_group("conv1d");
    for &(cin, cout, k, l) in &[(1usize, 8usize, 40usize, 64usize), (24, 8, 20, 64)] {
        let x = Tensor::randn(&mut rng, &[16, cin, l], 1.0);
        let w = Tensor::randn(&mut rng, &[cout, cin, k], 0.3);
        let dy = Tensor::randn(&mut rng, &[16, cout, l], 1.0);
        g.bench_function(BenchmarkId::new("forward", format!("{cin}x{cout}x{k}")), |b| {
            b.iter(|| black_box(conv1d_forward(&x, &w).unwrap()))
        });
        g.bench_function(BenchmarkId::new("backward_w", format!("{cin}x{cout}x{k}")), |b| {
            b.iter(|| black_box(conv1d_backward_weight(&dy, &x, w.dims()).unwrap()))
        });
    }
    g.finish();
}

/// Serial-vs-pool comparison on identical inputs: the same kernels run
/// pinned to one thread and then with the automatic thread count. Shapes
/// are batch ≥ 16 InceptionTime-sized workloads where the pool should win
/// clearly; results are bitwise identical either way (see
/// `crates/tensor/tests/parallel_equivalence.rs`), so only time differs.
fn bench_parallel_speedup(c: &mut Criterion) {
    let mut rng = seeded(5);
    let x = Tensor::randn(&mut rng, &[16, 24, 128], 1.0);
    let w = Tensor::randn(&mut rng, &[32, 24, 9], 0.3);
    let dy = Tensor::randn(&mut rng, &[16, 32, 128], 1.0);
    let a = Tensor::randn(&mut rng, &[256, 192], 1.0);
    let bm = Tensor::randn(&mut rng, &[192, 256], 1.0);
    let mut g = c.benchmark_group("parallel_speedup");
    // (label, forced thread count; 0 = automatic)
    for &(label, threads) in &[("1thread", 1usize), ("pool", 0usize)] {
        lightts::runtime::set_num_threads(threads);
        g.bench_function(BenchmarkId::new("conv_fwd_b16", label), |b| {
            b.iter(|| black_box(conv1d_forward(&x, &w).unwrap()))
        });
        g.bench_function(BenchmarkId::new("conv_bwd_w_b16", label), |b| {
            b.iter(|| black_box(conv1d_backward_weight(&dy, &x, w.dims()).unwrap()))
        });
        g.bench_function(BenchmarkId::new("matmul_256x192x256", label), |b| {
            b.iter(|| black_box(a.matmul(&bm).unwrap()))
        });
    }
    lightts::runtime::set_num_threads(0);
    g.finish();
}

fn bench_inference_by_bits(c: &mut Criterion) {
    let mut rng = seeded(2);
    let x = Tensor::randn(&mut rng, &[8, 1, 64], 1.0);
    let mut g = c.benchmark_group("inference");
    for bits in [4u8, 8, 16, 32] {
        let cfg = InceptionConfig::student(1, 64, 10, 6, bits);
        let model = InceptionTime::new(cfg, &mut rng).unwrap();
        g.bench_function(BenchmarkId::new("bits", bits), |b| {
            b.iter(|| black_box(model.predict_proba(&x).unwrap()))
        });
    }
    g.finish();
}

fn distill_fixture() -> (Splits, TeacherProbs, InceptionConfig) {
    let gen = Generator::new(
        SynthConfig { classes: 5, dims: 1, length: 48, difficulty: 0.3, waveforms: 3 },
        9,
    );
    let splits = gen.splits("bench", 64, 32, 32, 10).unwrap();
    let k = splits.num_classes();
    let smooth = |ds: &LabeledDataset, sharp: f32, rot: usize| {
        let mut t = Tensor::full(&[ds.len(), k], (1.0 - sharp) / (k as f32 - 1.0));
        for (i, &l) in ds.labels().iter().enumerate() {
            t.set(&[i, (l + rot) % k], sharp).unwrap();
        }
        t
    };
    let train: Vec<Tensor> = (0..5).map(|i| smooth(&splits.train, 0.8, i % 2)).collect();
    let val: Vec<Tensor> = (0..5).map(|i| smooth(&splits.validation, 0.8, i % 2)).collect();
    let labels = splits.validation.labels().to_vec();
    let teachers = TeacherProbs::from_raw(train, val, &labels).unwrap();
    let cfg = InceptionConfig::student(1, 48, 5, 6, 8);
    (splits, teachers, cfg)
}

fn bench_distill_epoch(c: &mut Criterion) {
    let (splits, teachers, cfg) = distill_fixture();
    let opts = StudentTrainOpts { epochs: 1, batch_size: 32, ..StudentTrainOpts::default() };
    let mut g = c.benchmark_group("distill_epoch");

    // AED epoch: N individual teacher distances
    g.bench_function("aed_5_teachers", |b| {
        b.iter(|| {
            let mut rng = seeded(3);
            let mut student = InceptionTime::new(cfg.clone(), &mut rng).unwrap();
            let mut opt = opts.make_optimizer();
            let w = vec![0.2f32; 5];
            train_student_epochs(
                &mut student,
                &splits.train,
                &teachers.train,
                &w,
                &opts,
                opt.as_mut(),
                &mut rng,
                1,
            )
            .unwrap()
        })
    });

    // Classic-KD epoch: one combined teacher
    let combined = teachers.combined_train(&[0.2; 5]).unwrap();
    g.bench_function("classic_1_teacher", |b| {
        b.iter(|| {
            let mut rng = seeded(3);
            let mut student = InceptionTime::new(cfg.clone(), &mut rng).unwrap();
            let mut opt = opts.make_optimizer();
            train_student_epochs(
                &mut student,
                &splits.train,
                std::slice::from_ref(&combined),
                &[1.0],
                &opts,
                opt.as_mut(),
                &mut rng,
                1,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut rng = seeded(4);
    let mut g = c.benchmark_group("gaussian_process");
    for n in [10usize, 25, 50] {
        let xs: Vec<Vec<f32>> =
            (0..n).map(|_| Tensor::randn(&mut rng, &[9], 1.0).into_vec()).collect();
        let ys: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        g.bench_function(BenchmarkId::new("fit", n), |b| {
            b.iter(|| black_box(GaussianProcess::fit(xs.clone(), &ys).unwrap()))
        });
        let gp = GaussianProcess::fit(xs.clone(), &ys).unwrap();
        let q = Tensor::randn(&mut rng, &[9], 1.0).into_vec();
        g.bench_function(BenchmarkId::new("predict", n), |b| {
            b.iter(|| black_box(gp.predict(&q).unwrap()))
        });
    }
    g.finish();
}

fn bench_skyline(c: &mut Criterion) {
    let pts: Vec<Evaluated> = (0..1000u64)
        .map(|i| {
            let a = ((i * 2654435761) % 1000) as f64 / 1000.0;
            Evaluated {
                setting: StudentSetting(vec![(1, 10, 4)]),
                accuracy: a,
                size_bits: (i * 40503) % 5000 + 1,
            }
        })
        .collect();
    let mut g = c.benchmark_group("skyline_1000pts");
    g.bench_function("sort_scan", |b| b.iter(|| black_box(pareto_frontier(&pts))));
    g.bench_function("block_nested_loop", |b| b.iter(|| black_box(skyline_bnl(&pts))));
    g.finish();
}

fn bench_datagen(c: &mut Criterion) {
    c.bench_function("synth_dataset_100x64", |b| {
        b.iter(|| {
            let gen = Generator::new(
                SynthConfig { classes: 10, dims: 1, length: 64, difficulty: 0.5, waveforms: 4 },
                7,
            );
            black_box(gen.split("bench", 100, 8).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_conv, bench_parallel_speedup, bench_inference_by_bits,
              bench_distill_epoch, bench_gp, bench_skyline, bench_datagen
}

fn main() {
    benches();

    // Merge the parallel_speedup rows into BENCH_kernels.json alongside the
    // bench_kernels lowering numbers (same artifact, different ops).
    let scale = perf::current_scale();
    let records: Vec<KernelRecord> = criterion::take_measurements()
        .iter()
        .filter(|m| m.name.starts_with("parallel_speedup/"))
        .map(|m| {
            let threads = if m.name.ends_with("/1thread") { 1 } else { 0 };
            let shape =
                if m.name.contains("matmul") { "256x192x256" } else { "x16x24x128_w32x24x9" };
            KernelRecord {
                op: m.name.clone(),
                shape: shape.to_string(),
                median_ns: m.median_ns,
                threads,
                scale: scale.to_string(),
                backend: lightts_tensor::simd::backend().name().to_string(),
            }
        })
        .collect();
    if !records.is_empty() {
        perf::write_records(&perf::default_path(), &records).expect("write BENCH_kernels.json");
    }
}
