//! Shared experiment setup: scale presets and dataset/teacher preparation.

use lightts::prelude::*;
use lightts::LightTsError;
use lightts_data::archive::DatasetSpec;
use lightts_distill::aed::AedConfig;
use lightts_distill::weights::WeightTransform;
use lightts_search::encoder::EncoderConfig;
use lightts_tensor::rng::derive_seed;

/// Result alias for harness code.
pub type Result<T> = std::result::Result<T, LightTsError>;

/// A scale preset: every knob that trades fidelity for wall-clock.
///
/// `quick` finishes each experiment in minutes on a laptop; `full` runs the
/// same code at larger data/epoch budgets. Both preserve the paper's
/// *relative* comparisons (who beats whom) — see DESIGN.md.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Preset name (`"quick"` / `"full"`).
    pub name: &'static str,
    /// Dataset generation scale.
    pub data: Scale,
    /// Ensemble size `N` (paper: 10).
    pub n_teachers: usize,
    /// Teacher width (conv filters per layer).
    pub teacher_filters: usize,
    /// Teacher training epochs.
    pub teacher_epochs: usize,
    /// Student width.
    pub student_filters: usize,
    /// Student (distillation) epochs.
    pub student_epochs: usize,
    /// AED outer update period `v`.
    pub v: usize,
    /// AED-LOO evaluation budget.
    pub loo_max_evals: usize,
    /// MOBO total evaluations `Q` (paper: 50).
    pub mobo_q: usize,
    /// MOBO initial random evaluations `P` (paper: 10).
    pub mobo_p: usize,
}

impl ExperimentScale {
    /// Laptop preset.
    pub fn quick() -> Self {
        ExperimentScale {
            name: "quick",
            data: Scale::quick(),
            n_teachers: 5,
            teacher_filters: 6,
            teacher_epochs: 16,
            student_filters: 6,
            student_epochs: 16,
            v: 4,
            loo_max_evals: 6,
            mobo_q: 16,
            mobo_p: 5,
        }
    }

    /// Paper-shaped preset (still CPU-feasible).
    pub fn full() -> Self {
        ExperimentScale {
            name: "full",
            data: Scale::full(),
            n_teachers: 10,
            teacher_filters: 8,
            teacher_epochs: 50,
            student_filters: 8,
            student_epochs: 40,
            v: 6,
            loo_max_evals: 15,
            mobo_q: 50,
            mobo_p: 10,
        }
    }

    /// The distillation options this scale implies.
    pub fn distill_opts(&self, seed: u64) -> DistillOpts {
        DistillOpts {
            aed: AedConfig {
                train: StudentTrainOpts {
                    alpha: 0.5,
                    epochs: self.student_epochs,
                    batch_size: 32,
                    lr: 0.01,
                    adam: true,
                    seed,
                },
                v: self.v,
                lambda_lr: 2.0,
                transform: WeightTransform::GumbelConfident { tau: 0.5 },
            },
            loo_max_evals: self.loo_max_evals,
            reinforced_episodes: 3,
            reinforced_lr: 4.0,
        }
    }

    /// The MOBO configuration this scale implies.
    pub fn mobo_config(&self, repr: SpaceRepr, seed: u64) -> MoboConfig {
        MoboConfig {
            q: self.mobo_q,
            p_init: self.mobo_p,
            candidates: 192,
            repr,
            encoder: EncoderConfig { epochs: 60, r_samples: 512, ..Default::default() },
            encoder_refresh: 10,
            seed,
        }
    }

    /// The Scenario-1 student configuration (3 blocks × 3 layers, filter 40)
    /// at a uniform bit-width.
    pub fn student_config(&self, splits: &Splits, bits: u8) -> InceptionConfig {
        InceptionConfig::student(
            splits.train.dims(),
            splits.train.series_len(),
            splits.num_classes(),
            self.student_filters,
            bits,
        )
    }
}

/// Everything one experiment needs for one dataset: data, a trained teacher
/// ensemble, and the teachers' pre-computed class distributions.
pub struct DatasetContext {
    /// The generating spec.
    pub spec: DatasetSpec,
    /// Train/validation/test splits.
    pub splits: Splits,
    /// The trained `N`-member ensemble.
    pub ensemble: Ensemble,
    /// Per-teacher probabilities on train/validation.
    pub teachers: TeacherProbs,
}

/// Generates the dataset and trains the teacher ensemble for `spec`.
pub fn prepare(
    spec: &DatasetSpec,
    kind: BaseModelKind,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<DatasetContext> {
    let splits = spec.try_generate(scale.data)?;
    let cfg = EnsembleTrainConfig {
        n_members: scale.n_teachers,
        seed: derive_seed(seed, 0xEE),
        filters: scale.teacher_filters,
        inception: TrainConfig {
            epochs: scale.teacher_epochs,
            batch_size: 64,
            lr: 0.01,
            adam: true,
            seed: derive_seed(seed, 0xEF),
        },
        ..EnsembleTrainConfig::default()
    };
    let ensemble = train_ensemble(kind, &splits.train, &cfg)?;
    let teachers = TeacherProbs::compute(&ensemble, &splits)?;
    Ok(DatasetContext { spec: spec.clone(), splits, ensemble, teachers })
}

/// Evaluates a classifier's accuracy and top-5 accuracy on the test split.
pub fn test_metrics(clf: &dyn Classifier, splits: &Splits) -> Result<(f64, f64)> {
    let probs = clf.predict_proba_dataset(&splits.test)?;
    let acc = accuracy(&probs, splits.test.labels())?;
    let top5 = top_k_accuracy(&probs, splits.test.labels(), 5)?;
    Ok((acc, top5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::archive;

    #[test]
    fn scales_are_ordered() {
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        assert!(q.n_teachers <= f.n_teachers);
        assert!(q.student_epochs <= f.student_epochs);
        assert!(q.mobo_q <= f.mobo_q);
    }

    #[test]
    fn prepare_builds_consistent_context() {
        let mut spec = archive::table1("UWave").unwrap();
        spec.difficulty = 0.2;
        let mut scale = ExperimentScale::quick();
        scale.n_teachers = 2;
        scale.teacher_epochs = 4;
        let ctx = prepare(&spec, BaseModelKind::Forest, &scale, 1).unwrap();
        assert_eq!(ctx.ensemble.len(), 2);
        assert_eq!(ctx.teachers.len(), 2);
        assert_eq!(ctx.splits.num_classes(), 8);
        let (acc, top5) = test_metrics(&ctx.ensemble, &ctx.splits).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(top5 >= acc);
    }
}
