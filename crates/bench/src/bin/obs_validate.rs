//! Validates a JSONL observability trace against the documented schema.
//!
//! ```text
//! obs_validate <trace.jsonl>
//! ```
//!
//! Two passes, both fatal on the first violation:
//!
//! 1. **Per line** — every non-empty line must satisfy
//!    [`lightts_obs::jsonl::validate_event_line`] (the top-level key/type
//!    contract documented in the crate docs).
//! 2. **Across lines** — the serving trace-linkage contract
//!    ([`lightts_obs::jsonl::validate_trace_linkage`]): every `serve.*`
//!    span carries a positive integer `trace_id`, each trace has exactly
//!    one `serve.request` root, and its stage spans nest inside the root's
//!    time range.
//!
//! CI runs this over the trace a smoke bench emits under
//! `LIGHTTS_OBS=<path>`.

use std::io::{BufRead, BufReader};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: obs_validate <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obs_validate: cannot open {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut lines = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("obs_validate: {path}:{}: read error: {e}", lineno + 1);
                std::process::exit(1);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = lightts_obs::jsonl::validate_event_line(&line) {
            eprintln!("obs_validate: {path}:{}: {e}", lineno + 1);
            std::process::exit(1);
        }
        lines.push(line);
    }
    if lines.is_empty() {
        eprintln!("obs_validate: {path}: no events found");
        std::process::exit(1);
    }
    let traces = match lightts_obs::jsonl::validate_trace_linkage(lines.iter().map(String::as_str))
    {
        Ok(n) => n,
        Err(e) => {
            eprintln!("obs_validate: {path}: trace linkage: {e}");
            std::process::exit(1);
        }
    };
    println!("obs_validate: {} valid events ({traces} linked serve traces) in {path}", lines.len());
}
