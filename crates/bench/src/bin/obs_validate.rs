//! Validates a JSONL observability trace against the documented schema.
//!
//! ```text
//! obs_validate <trace.jsonl>
//! ```
//!
//! Reads the file line by line, checks every non-empty line with
//! [`lightts_obs::jsonl::validate_event_line`], and exits non-zero on the
//! first violation — CI runs this over the trace a smoke bench emits under
//! `LIGHTTS_OBS=<path>`.

use std::io::{BufRead, BufReader};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: obs_validate <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obs_validate: cannot open {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut total = 0usize;
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("obs_validate: {path}:{}: read error: {e}", lineno + 1);
                std::process::exit(1);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = lightts_obs::jsonl::validate_event_line(&line) {
            eprintln!("obs_validate: {path}:{}: {e}", lineno + 1);
            std::process::exit(1);
        }
        total += 1;
    }
    if total == 0 {
        eprintln!("obs_validate: {path}: no events found");
        std::process::exit(1);
    }
    println!("obs_validate: {total} valid events in {path}");
}
