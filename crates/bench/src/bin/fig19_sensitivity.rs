//! Paper Figure 19: sensitivity of LightTS to the loss mix α and the
//! Gumbel temperature τ (Adiac, 4-bit students).
//!
//! Expected shape: accuracy is flat around α = 0.5 (balanced losses) and
//! moves more sharply with τ (it changes which teachers get removed);
//! α = τ = 0.5 sits among the best settings.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::{banner, f3};
use lightts_data::archive;
use lightts_distill::removal::{lightts_removal, RemovalStrategy};
use lightts_distill::weights::WeightTransform;
use lightts_models::metrics::accuracy;

fn main() {
    let args = Args::parse();
    let spec = archive::table1("Adiac").expect("Adiac spec exists");
    let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
        .expect("context preparation failed");
    let cfg = args.scale.student_config(&ctx.splits, 4);

    let run = |alpha: f32, tau: f32| -> f64 {
        let mut opts = args.scale.distill_opts(args.seed ^ 0x19);
        opts.aed.train.alpha = alpha;
        opts.aed.transform = WeightTransform::GumbelConfident { tau };
        let res = lightts_removal(
            &ctx.splits,
            &ctx.teachers,
            &cfg,
            &opts.aed,
            RemovalStrategy::GumbelConfident,
        )
        .expect("LightTS run");
        let probs = res.student.predict_proba_dataset(&ctx.splits.test).expect("prediction");
        accuracy(&probs, ctx.splits.test.labels()).expect("accuracy")
    };

    banner("Figure 19(a): alpha sensitivity (tau = 0.5), Adiac 4-bit");
    println!("alpha\taccuracy");
    for alpha in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
        let acc = run(alpha, 0.5);
        println!("{alpha}\t{}", f3(acc));
        lightts_obs::event!("fig19.alpha", { alpha: alpha, acc: acc });
    }

    banner("Figure 19(b): tau sensitivity (alpha = 0.5), Adiac 4-bit");
    println!("tau\taccuracy");
    for tau in [0.1f32, 0.3, 0.5, 1.0, 2.0] {
        let acc = run(0.5, tau);
        println!("{tau}\t{}", f3(acc));
        lightts_obs::event!("fig19.tau", { tau: tau, acc: acc });
    }
}
