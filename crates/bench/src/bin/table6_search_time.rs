//! Paper Table 6: optimization running time of Random search, MOBO, and
//! Encoded MOBO on Adiac, PigAirway, and NonInvECG2.
//!
//! Expected shape: Random is fastest (no model fitting); Encoded MOBO costs
//! only slightly more than MOBO (the encoder is cheap next to the AED
//! evaluations), mirroring the paper's near-identical MOBO columns.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::banner;
use lightts_data::archive;
use lightts_distill::aed::run_aed;
use lightts_search::mobo::{random_search, run_mobo};

fn main() {
    let args = Args::parse();
    banner("Table 6: optimization running time (seconds)");
    println!("dataset\tRandom\tMOBO\tEncoded MOBO");
    for name in ["Adiac", "PigAirway", "NonInvECG2"] {
        let spec = archive::table1(name).expect("known dataset");
        lightts_obs::event!("table6.dataset", { dataset: name });
        let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
            .expect("context preparation failed");
        let space = SearchSpace::paper_default(
            ctx.splits.train.dims(),
            ctx.splits.train.series_len(),
            ctx.splits.num_classes(),
            args.scale.student_filters,
        );
        let opts = args.scale.distill_opts(args.seed ^ 0x66);
        let oracle = |s: &StudentSetting| -> Result<f64, String> {
            let cfg = s.to_config(&space);
            run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed)
                .map(|r| r.val_accuracy)
                .map_err(|e| e.to_string())
        };
        let q = args.scale.mobo_q;
        let t_rand =
            random_search(&space, oracle, q, args.seed ^ 0x41).expect("random search").seconds;
        let t_mobo = run_mobo(
            &space,
            oracle,
            &args.scale.mobo_config(SpaceRepr::Original, args.seed ^ 0x42),
        )
        .expect("MOBO")
        .seconds;
        let t_enc = run_mobo(
            &space,
            oracle,
            &args.scale.mobo_config(SpaceRepr::TwoPhaseEncoder, args.seed ^ 0x43),
        )
        .expect("Encoded MOBO")
        .seconds;
        println!("{name}\t{t_rand:.1}\t{t_mobo:.1}\t{t_enc:.1}");
    }
}
