//! Ablation: the AED bi-level schedule knobs.
//!
//! Not a paper artifact — this sweeps the design choices DESIGN.md calls
//! out: the outer-update period `v` ("multiple inner-level steps for each
//! outer-level one to have a stable training", Section 3.2.1) and the outer
//! λ learning rate. `v` equal to the epoch budget means the outer level
//! never fires (λ stays uniform — AED degenerates toward Classic KD with
//! per-teacher terms), isolating the value of the bi-level optimization.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::{prepare, test_metrics};
use lightts_bench::report::{banner, f3};
use lightts_data::archive;
use lightts_distill::aed::run_aed;

fn main() {
    let args = Args::parse();
    let spec = archive::table1("Adiac").expect("Adiac spec exists");
    let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
        .expect("context preparation failed");
    let cfg = args.scale.student_config(&ctx.splits, 4);
    let base = args.scale.distill_opts(args.seed ^ 0xAB);

    banner("Ablation A: outer-update period v (Adiac, 4-bit, AED)");
    println!("v\tval_accuracy\ttest_accuracy");
    for v in [1usize, 2, 4, 8, usize::MAX] {
        let mut opts = base;
        opts.aed.v = v.min(opts.aed.train.epochs); // epochs ⇒ outer never fires
        let res = run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed).expect("AED run");
        let (test_acc, _) = test_metrics(&res.student, &ctx.splits).expect("eval");
        let label = if v == usize::MAX { "never".to_string() } else { v.to_string() };
        println!("{label}\t{}\t{}", f3(res.val_accuracy), f3(test_acc));
        lightts_obs::event!("ablation.v", {
            v: label.as_str(),
            val: res.val_accuracy,
            test: test_acc,
        });
    }

    banner("Ablation B: outer learning rate for lambda (Adiac, 4-bit, AED)");
    println!("lambda_lr\tval_accuracy\ttest_accuracy");
    for lr in [0.25f32, 1.0, 2.0, 8.0] {
        let mut opts = base;
        opts.aed.lambda_lr = lr;
        let res = run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed).expect("AED run");
        let (test_acc, _) = test_metrics(&res.student, &ctx.splits).expect("eval");
        println!("{lr}\t{}\t{}", f3(res.val_accuracy), f3(test_acc));
        lightts_obs::event!("ablation.lr", {
            lr: lr,
            val: res.val_accuracy,
            test: test_acc,
        });
    }
}
