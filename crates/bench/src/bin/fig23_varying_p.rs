//! Paper Figure 23: effect of the number of initial random evaluations P on
//! the Encoded MOBO frontier (Adiac, fixed Q).
//!
//! Expected shape: a very small P misleads the GP (frontier concentrated on
//! large models); moderate P values produce similar frontiers, so the
//! paper's P = 10 default is already enough.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::{banner, f3, render_scatter, ScatterPoint};
use lightts_data::archive;
use lightts_distill::aed::run_aed;
use lightts_search::mobo::run_mobo;
use lightts_search::pareto::hypervolume;

fn main() {
    let args = Args::parse();
    let spec = archive::table1("Adiac").expect("Adiac spec exists");
    let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
        .expect("context preparation failed");
    let space = SearchSpace::paper_default(
        ctx.splits.train.dims(),
        ctx.splits.train.series_len(),
        ctx.splits.num_classes(),
        args.scale.student_filters,
    );
    let opts = args.scale.distill_opts(args.seed ^ 0x23);
    let oracle = |s: &StudentSetting| -> Result<f64, String> {
        let cfg = s.to_config(&space);
        run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed)
            .map(|r| r.val_accuracy)
            .map_err(|e| e.to_string())
    };

    let ps: &[usize] =
        if args.scale.name == "quick" { &[2, 5, 8, 12] } else { &[5, 10, 20, 30, 40] };
    banner("Figure 23: varying P (Encoded MOBO, Adiac)");
    println!("p_init\tsetting\taccuracy\tsize_kb");
    let mut summary = Vec::new();
    let mut scatter: Vec<ScatterPoint> = Vec::new();
    for &p in ps {
        let mut cfg = args.scale.mobo_config(SpaceRepr::TwoPhaseEncoder, args.seed ^ p as u64);
        cfg.p_init = p;
        let out = run_mobo(&space, oracle, &cfg).expect("Encoded MOBO");
        for pt in &out.frontier {
            println!(
                "{p}\t{}\t{}\t{:.2}",
                pt.setting.display(),
                f3(pt.accuracy),
                lightts_nn::size::bits_to_kb(pt.size_bits)
            );
        }
        let marker = char::from_digit((p % 36) as u32, 36).unwrap_or('?');
        for pt in &out.frontier {
            scatter.push(ScatterPoint {
                x: lightts_nn::size::bits_to_kb(pt.size_bits),
                y: pt.accuracy,
                marker,
            });
        }
        summary.push((p, hypervolume(&out.frontier, space.max_size_bits())));
        lightts_obs::event!("fig23.p", { p: p, frontier: out.frontier.len() });
    }
    banner("Figure 23 scatter (marker = P, base-36)");
    print!("{}", render_scatter(&scatter, 64, 16));

    banner("Figure 23 summary: hypervolume by P");
    println!("p_init\thypervolume");
    for (p, hv) in summary {
        println!("{p}\t{hv:.3e}");
    }
}
