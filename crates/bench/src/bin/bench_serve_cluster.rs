//! `bench_serve_cluster`: closed-loop SLO benchmark of the sharded serving
//! runtime behind its TCP front door.
//!
//! For each scheduler shard count (default sweep `{1, 2, 4}`, or exactly
//! `LIGHTTS_SERVE_SHARDS` when set) the bench starts a [`Server`] on an
//! ephemeral TCP port and drives it with a **closed loop**: `C` client
//! connections each issue one blocking `PREDICT` at a time, so offered
//! load rises with `C` and the system is never asked for more than it just
//! delivered. Each cell records the exact sorted p50/p99 request latency,
//! completed throughput, and the shed rate (`OVERLOADED` + `DEADLINE`
//! replies), then merges its rows into `BENCH_serve.json` keyed on
//! `(bench, shards, concurrency, scale)` — `bench_gate --serve` gates the
//! p99 column against the committed baseline.
//!
//! Set `LIGHTTS_BENCH_SMOKE=1` (as CI does) to shrink the sweep and the
//! measurement windows to a compile-rot check rather than a measurement.
//! On a single-core host the shard counts are expected to tie (parity,
//! not speedup) — the artifact records the curve shape either way.

use lightts_bench::args::Args;
use lightts_bench::perf::{self, percentile_us, ServeRecord};
use lightts_models::inception::{InceptionConfig, InceptionTime};
use lightts_serve::{ModelRegistry, NetClient, ServeConfig, Server};
use lightts_tensor::rng::seeded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IN_LEN: usize = 64;
const MODEL: &str = "student";
/// Per-request deadline: generous enough that only a genuinely overloaded
/// queue sheds, tight enough that the shed path is exercised under load.
const DEADLINE: Duration = Duration::from_millis(250);

/// One cell's raw observations from all client threads.
#[derive(Default)]
struct CellOutcome {
    latencies_ns: Vec<u64>,
    ok: u64,
    shed: u64,
}

fn packed_student() -> Vec<u8> {
    let mut rng = seeded(17);
    let model = InceptionTime::new(InceptionConfig::student(1, IN_LEN, 10, 6, 8), &mut rng)
        .expect("build student");
    model.save_bytes().expect("pack student")
}

fn sample(i: usize) -> Vec<f32> {
    (0..IN_LEN)
        .map(|j| {
            let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
            h as f32 / 1000.0 - 1.0
        })
        .collect()
}

/// One closed-loop client: blocking predicts until `stop`, recording
/// latency per completed request. Shed replies (`OVERLOADED`/`DEADLINE`)
/// are counted, any other failure aborts the bench loudly.
fn client_loop(
    addr: std::net::SocketAddr,
    worker: usize,
    warm: Duration,
    stop: &AtomicBool,
) -> CellOutcome {
    let mut client = NetClient::connect(addr).expect("connect front door");
    let mut out = CellOutcome::default();
    let started = Instant::now();
    let mut i = worker;
    while !stop.load(Ordering::Relaxed) {
        let input = sample(i);
        i = i.wrapping_add(1);
        let t0 = Instant::now();
        let id = client.send(MODEL, &input, Some(DEADLINE)).expect("send request");
        let reply = client.recv().expect("recv reply");
        let lat = t0.elapsed();
        if started.elapsed() < warm {
            continue; // warm-up: connections, plans, allocator all settle
        }
        match reply {
            lightts_serve::wire::Reply::Ok { request_id, .. } => {
                assert_eq!(request_id, id, "front door broke per-connection FIFO");
                out.ok += 1;
                out.latencies_ns.push(lat.as_nanos() as u64);
            }
            lightts_serve::wire::Reply::Err { error, .. } => match error {
                lightts_serve::ServeError::Overloaded { .. }
                | lightts_serve::ServeError::DeadlineExceeded => out.shed += 1,
                other => panic!("unexpected serve error under closed loop: {other}"),
            },
        }
    }
    out
}

fn run_cell(
    packed: &[u8],
    shards: usize,
    concurrency: usize,
    warm: Duration,
    window: Duration,
) -> ServeRecord {
    let mut registry = ModelRegistry::new();
    registry.load_packed(MODEL, packed).expect("load student");
    let cfg = ServeConfig {
        max_batch: 16,
        max_wait: Duration::from_micros(200),
        shards,
        replicas: 0, // replicate the one hot model onto every shard
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    assert_eq!(server.shards(), shards, "explicit shard count must win");
    let net = server.serve_net("127.0.0.1:0").expect("bind front door");
    let addr = net.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..concurrency)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(addr, w, warm, &stop))
        })
        .collect();
    std::thread::sleep(warm + window);
    stop.store(true, Ordering::Relaxed);
    let mut cell = CellOutcome::default();
    for w in workers {
        let got = w.join().expect("client thread panicked");
        cell.ok += got.ok;
        cell.shed += got.shed;
        cell.latencies_ns.extend(got.latencies_ns);
    }
    server.shutdown();

    cell.latencies_ns.sort_unstable();
    let total = cell.ok + cell.shed;
    ServeRecord {
        bench: "tcp_closed_loop".into(),
        shards,
        concurrency,
        scale: perf::current_scale().into(),
        throughput_rps: cell.ok as f64 / window.as_secs_f64(),
        p50_us: percentile_us(&cell.latencies_ns, 0.50),
        p99_us: percentile_us(&cell.latencies_ns, 0.99),
        shed_rate: if total == 0 { 0.0 } else { cell.shed as f64 / total as f64 },
    }
}

fn main() {
    let args = Args::parse();
    let smoke = perf::current_scale() == "smoke";
    let (warm, window) = if smoke {
        (Duration::from_millis(50), Duration::from_millis(150))
    } else {
        (Duration::from_millis(200), Duration::from_millis(1000))
    };
    let shard_counts: Vec<usize> = match args.serve_shards {
        Some(n) => vec![n],
        None if smoke => vec![1, 2],
        None => vec![1, 2, 4],
    };
    let concurrencies: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };

    let packed = packed_student();
    let mut records = Vec::new();
    println!("bench\tshards\tconcurrency\tscale\tthroughput_rps\tp50_us\tp99_us\tshed_rate");
    for &shards in &shard_counts {
        for &concurrency in concurrencies {
            let r = run_cell(&packed, shards, concurrency, warm, window);
            println!(
                "{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.4}",
                r.bench,
                r.shards,
                r.concurrency,
                r.scale,
                r.throughput_rps,
                r.p50_us,
                r.p99_us,
                r.shed_rate
            );
            records.push(r);
        }
    }
    perf::write_serve_records(&perf::default_serve_path(), &records)
        .expect("write BENCH_serve.json");
    eprintln!("wrote {} cells to {}", records.len(), perf::default_serve_path().display());
}
