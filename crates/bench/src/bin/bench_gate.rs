//! Performance regression gate over the benchmark artifacts.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--threshold <pct>]
//! bench_gate --serve <baseline.json> <fresh.json> [--threshold <pct>]
//! ```
//!
//! Default mode gates `BENCH_kernels.json`: rows are joined on the full
//! kernel record key `(op, shape, threads, scale, backend)` and the fresh
//! `median_ns` must not regress more than the threshold (default **25%**)
//! over the baseline. `--serve` gates `BENCH_serve.json` the same way:
//! rows join on `(bench, shards, concurrency, scale)` and the gated
//! quantity is the **p99 latency** (`p99_us`) of the closed-loop serving
//! sweep. Keys present on only one side are reported but never fatal —
//! benches come and go; the gate only guards cells both runs measured.
//!
//! CI runs the smoke benches, then gates the fresh artifacts against the
//! committed ones. The generous threshold absorbs shared-runner noise
//! while still catching the step-function regressions that matter (a
//! dispatch falling back to scalar, a scheduler serializing its shards).

use lightts_bench::perf::{read_records, read_serve_records, KernelRecord};
use std::path::Path;
use std::process::exit;

/// One gated row: a label encoding the full record key plus the gated
/// quantity (kernel `median_ns` or serving `p99_us`).
struct Row {
    label: String,
    value: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 25.0f64;
    let mut serve_mode = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let v = it.next().and_then(|s| s.parse::<f64>().ok());
            match v {
                Some(v) if v > 0.0 => threshold_pct = v,
                _ => {
                    eprintln!("bench_gate: --threshold needs a positive number");
                    exit(2);
                }
            }
        } else if a == "--serve" {
            serve_mode = true;
        } else {
            paths.push(a.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate [--serve] <baseline.json> <fresh.json> [--threshold <pct>]");
        exit(2);
    };
    let (baseline, fresh, header, unit) = if serve_mode {
        let b = read_serve_records(Path::new(baseline_path));
        let f = read_serve_records(Path::new(fresh_path));
        (
            b.iter().map(|r| Row { label: r.label(), value: r.p99_us }).collect::<Vec<_>>(),
            f.iter().map(|r| Row { label: r.label(), value: r.p99_us }).collect::<Vec<_>>(),
            "bench/shards/concurrency/scale",
            "p99 us",
        )
    } else {
        let b = read_records(Path::new(baseline_path));
        let f = read_records(Path::new(fresh_path));
        let row = |r: &KernelRecord| Row {
            label: format!("{}/{}/t{}/{}/{}", r.op, r.shape, r.threads, r.scale, r.backend),
            value: r.median_ns,
        };
        (
            b.iter().map(row).collect::<Vec<_>>(),
            f.iter().map(row).collect::<Vec<_>>(),
            "op/shape/threads/scale/backend",
            "ns",
        )
    };
    if baseline.is_empty() {
        eprintln!("bench_gate: {baseline_path}: no baseline records (missing or unparsable)");
        exit(2);
    }
    if fresh.is_empty() {
        eprintln!("bench_gate: {fresh_path}: no fresh records (missing or unparsable)");
        exit(2);
    }

    let mut joined = 0usize;
    let mut regressions = Vec::new();
    println!(
        "{:<40} {:>12} {:>12} {:>8}  verdict",
        header,
        format!("base {unit}"),
        format!("fresh {unit}"),
        "delta"
    );
    for f in &fresh {
        let Some(b) = baseline.iter().find(|b| b.label == f.label) else {
            println!(
                "{:<40} {:>12} {:>12} {:>8}  new (not gated)",
                f.label,
                "-",
                fmt(f.value),
                "-"
            );
            continue;
        };
        joined += 1;
        let delta_pct = if b.value > 0.0 { (f.value - b.value) / b.value * 100.0 } else { 0.0 };
        let regressed = delta_pct > threshold_pct;
        println!(
            "{:<40} {:>12} {:>12} {:>+7.1}%  {}",
            f.label,
            fmt(b.value),
            fmt(f.value),
            delta_pct,
            if regressed { "REGRESSION" } else { "ok" }
        );
        if regressed {
            regressions.push((f.label.clone(), delta_pct));
        }
    }
    for b in &baseline {
        if !fresh.iter().any(|f| f.label == b.label) {
            println!(
                "{:<40} {:>12} {:>12} {:>8}  gone (not gated)",
                b.label,
                fmt(b.value),
                "-",
                "-"
            );
        }
    }
    if joined == 0 {
        eprintln!("bench_gate: no keys in common between {baseline_path} and {fresh_path}");
        exit(2);
    }
    if regressions.is_empty() {
        println!(
            "bench_gate: {joined} keys gated, none regressed beyond {threshold_pct:.0}% — pass"
        );
    } else {
        eprintln!(
            "bench_gate: {} of {joined} keys regressed beyond {threshold_pct:.0}%:",
            regressions.len()
        );
        for (l, d) in &regressions {
            eprintln!("  {l}: +{d:.1}%");
        }
        exit(1);
    }
}

fn fmt(v: f64) -> String {
    format!("{v:.0}")
}
