//! Performance regression gate over the `BENCH_kernels.json` artifact.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--threshold <pct>]
//! ```
//!
//! Joins the two files' rows on the full record key
//! `(op, shape, threads, scale, backend)` and prints a per-key delta
//! table. Exits non-zero if any joined row's fresh `median_ns` regressed
//! by more than the threshold (default **25%**) over the baseline. Keys
//! present on only one side are reported but never fatal — benches come
//! and go; the gate only guards kernels both runs measured.
//!
//! CI runs the smoke benches, then gates the fresh artifact against the
//! committed one. The generous threshold absorbs shared-runner noise
//! while still catching the step-function regressions that matter (a
//! dispatch falling back to scalar, a lowering losing its panel kernel).

use lightts_bench::perf::{read_records, KernelRecord};
use std::path::Path;
use std::process::exit;

fn key(r: &KernelRecord) -> (String, String, usize, String, String) {
    (r.op.clone(), r.shape.clone(), r.threads, r.scale.clone(), r.backend.clone())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let v = it.next().and_then(|s| s.parse::<f64>().ok());
            match v {
                Some(v) if v > 0.0 => threshold_pct = v,
                _ => {
                    eprintln!("bench_gate: --threshold needs a positive number");
                    exit(2);
                }
            }
        } else {
            paths.push(a.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [--threshold <pct>]");
        exit(2);
    };
    let baseline = read_records(Path::new(baseline_path));
    let fresh = read_records(Path::new(fresh_path));
    if baseline.is_empty() {
        eprintln!("bench_gate: {baseline_path}: no baseline records (missing or unparsable)");
        exit(2);
    }
    if fresh.is_empty() {
        eprintln!("bench_gate: {fresh_path}: no fresh records (missing or unparsable)");
        exit(2);
    }

    let mut joined = 0usize;
    let mut regressions = Vec::new();
    println!(
        "{:<40} {:>12} {:>12} {:>8}  verdict",
        "op/shape/threads/scale/backend", "base ns", "fresh ns", "delta"
    );
    for f in &fresh {
        let Some(b) = baseline.iter().find(|b| key(b) == key(f)) else {
            println!(
                "{:<40} {:>12} {:>12} {:>8}  new (not gated)",
                label(f),
                "-",
                fmt(f.median_ns),
                "-"
            );
            continue;
        };
        joined += 1;
        let delta_pct =
            if b.median_ns > 0.0 { (f.median_ns - b.median_ns) / b.median_ns * 100.0 } else { 0.0 };
        let regressed = delta_pct > threshold_pct;
        println!(
            "{:<40} {:>12} {:>12} {:>+7.1}%  {}",
            label(f),
            fmt(b.median_ns),
            fmt(f.median_ns),
            delta_pct,
            if regressed { "REGRESSION" } else { "ok" }
        );
        if regressed {
            regressions.push((label(f), delta_pct));
        }
    }
    for b in &baseline {
        if !fresh.iter().any(|f| key(f) == key(b)) {
            println!(
                "{:<40} {:>12} {:>12} {:>8}  gone (not gated)",
                label(b),
                fmt(b.median_ns),
                "-",
                "-"
            );
        }
    }
    if joined == 0 {
        eprintln!("bench_gate: no keys in common between {baseline_path} and {fresh_path}");
        exit(2);
    }
    if regressions.is_empty() {
        println!(
            "bench_gate: {joined} keys gated, none regressed beyond {threshold_pct:.0}% — pass"
        );
    } else {
        eprintln!(
            "bench_gate: {} of {joined} keys regressed beyond {threshold_pct:.0}%:",
            regressions.len()
        );
        for (l, d) in &regressions {
            eprintln!("  {l}: +{d:.1}%");
        }
        exit(1);
    }
}

fn label(r: &KernelRecord) -> String {
    format!("{}/{}/t{}/{}/{}", r.op, r.shape, r.threads, r.scale, r.backend)
}

fn fmt(ns: f64) -> String {
    format!("{ns:.0}")
}
