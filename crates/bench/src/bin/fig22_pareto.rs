//! Paper Figure 22: Pareto frontiers from Random search, classic MOBO
//! (original space), and Encoded MOBO (two-phase latent), on Adiac.
//!
//! Expected shape: Encoded MOBO's frontier dominates (closer to the
//! upper-left corner); the hypervolume numbers quantify the visual
//! comparison.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::{banner, f3, render_scatter, ScatterPoint};
use lightts_data::archive;
use lightts_distill::aed::run_aed;
use lightts_search::mobo::{random_search, run_mobo, MoboOutcome};
use lightts_search::pareto::hypervolume;

fn main() {
    let args = Args::parse();
    let spec = archive::table1("Adiac").expect("Adiac spec exists");
    let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
        .expect("context preparation failed");
    let space = SearchSpace::paper_default(
        ctx.splits.train.dims(),
        ctx.splits.train.series_len(),
        ctx.splits.num_classes(),
        args.scale.student_filters,
    );
    let opts = args.scale.distill_opts(args.seed ^ 0x22);
    let oracle = |s: &StudentSetting| -> Result<f64, String> {
        let cfg = s.to_config(&space);
        run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed)
            .map(|r| r.val_accuracy)
            .map_err(|e| e.to_string())
    };

    let q = args.scale.mobo_q;
    let runs: Vec<(&str, MoboOutcome)> = vec![
        ("Random", random_search(&space, oracle, q, args.seed ^ 0x31).expect("random search")),
        (
            "MOBO",
            run_mobo(
                &space,
                oracle,
                &args.scale.mobo_config(SpaceRepr::Original, args.seed ^ 0x32),
            )
            .expect("MOBO"),
        ),
        (
            "Encoded MOBO",
            run_mobo(
                &space,
                oracle,
                &args.scale.mobo_config(SpaceRepr::TwoPhaseEncoder, args.seed ^ 0x33),
            )
            .expect("Encoded MOBO"),
        ),
    ];
    let ref_size = space.max_size_bits();
    banner("Figure 22: Pareto frontiers, Adiac");
    println!("method\tsetting\taccuracy\tsize_kb");
    for (name, out) in &runs {
        for p in &out.frontier {
            println!(
                "{name}\t{}\t{}\t{:.2}",
                p.setting.display(),
                f3(p.accuracy),
                lightts_nn::size::bits_to_kb(p.size_bits)
            );
        }
    }
    banner("Figure 22 scatter (R = Random, M = MOBO, E = Encoded MOBO; acc vs KB)");
    let mut pts = Vec::new();
    for (name, out) in &runs {
        let marker = name.chars().next().unwrap_or('?');
        for p in &out.frontier {
            pts.push(ScatterPoint {
                x: lightts_nn::size::bits_to_kb(p.size_bits),
                y: p.accuracy,
                marker,
            });
        }
    }
    print!("{}", render_scatter(&pts, 64, 16));

    banner("Figure 22 summary: hypervolume (bigger = better frontier) and time");
    println!("method\thypervolume\tseconds\tevaluations");
    for (name, out) in &runs {
        println!(
            "{name}\t{:.3e}\t{:.1}\t{}",
            hypervolume(&out.frontier, ref_size),
            out.seconds,
            out.evaluated.len()
        );
    }
}
