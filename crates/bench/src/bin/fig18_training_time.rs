//! Paper Figure 18: total training time — (a) ranking of methods by
//! training time (lower is better) and (b) box-plot statistics.
//!
//! Expected shape: Classic KD and AED-One fastest (single distillation),
//! Reinforced and LightTS next, CAWPE/AE-KD similar, AED-LOO slowest (its
//! leave-one-out search multiplies AED runs).

use lightts_bench::args::Args;
use lightts_bench::report::{banner, box_stats, f2};
use lightts_bench::runner::run_ranking;
use lightts_data::archive;
use lightts_models::ensemble::BaseModelKind;
use lightts_stats::{cd_cliques, friedman_test, render_cd_diagram};

fn main() {
    let args = Args::parse();
    let n_datasets = args.datasets.unwrap_or(if args.scale.name == "quick" { 4 } else { 12 });
    let mut specs = archive::table1_specs();
    specs.truncate(n_datasets);
    lightts_obs::event!("fig18.start", { datasets: specs.len(), scale: args.scale.name });

    let data =
        run_ranking(&specs, BaseModelKind::InceptionTime, &args.scale, args.seed, &[4, 8, 16])
            .expect("ranking run failed");

    // drop the FP-Ensem row: it has no training time
    let k = data.names.len() - 1;
    let names: Vec<&str> = data.names[..k].iter().map(|s| s.as_str()).collect();
    // rank on negated time so "higher is better" = faster
    let neg_times: Vec<Vec<f64>> =
        data.times[..k].iter().map(|row| row.iter().map(|&t| -t).collect()).collect();

    banner("Figure 18(a): training-time ranking (1 = fastest)");
    let fr = friedman_test(&neg_times).expect("well-formed matrix");
    println!("Friedman chi2 = {:.3}, p = {:.2e}", fr.statistic, fr.p_value);
    let (avg, cliques) = cd_cliques(&neg_times, 0.05).expect("well-formed matrix");
    print!("{}", render_cd_diagram(&names, &avg, &cliques));

    banner("Figure 18(b): training-time distribution per method (seconds)");
    println!("method\tmin\tq1\tmedian\tq3\tmax");
    for (mi, name) in names.iter().enumerate() {
        let s = box_stats(&data.times[mi]).expect("non-empty sample");
        println!(
            "{name}\t{}\t{}\t{}\t{}\t{}",
            f2(s.min),
            f2(s.q1),
            f2(s.median),
            f2(s.q3),
            f2(s.max)
        );
    }
}
