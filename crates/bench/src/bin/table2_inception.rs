//! Paper Table 2: accuracy and top-5 accuracy of lightweight students
//! distilled from an ensemble of InceptionTime base models, on the nine
//! Table 1 datasets at 4/8/16-bit quantization, plus the FP-Ensem and
//! FP-Stud reference rows.
//!
//! Expected shape: LightTS and AED-LOO lead on every dataset and sit close
//! to FP-Ensem; the single-teacher baselines trail, most severely at 4 bits;
//! FP-Stud (a 32-bit AED student) upper-bounds the quantized students;
//! UWave's 8 classes saturate top-5 accuracy for everyone.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::{prepare, test_metrics};
use lightts_bench::report::{banner, f2};
use lightts_bench::runner::run_methods_on;
use lightts_data::archive;
use lightts_models::ensemble::BaseModelKind;

fn main() {
    let args = Args::parse();
    let bits = [4u8, 8, 16];
    let methods = [
        Method::ClassicKd,
        Method::AeKd,
        Method::Reinforced,
        Method::Cawpe,
        Method::AedLoo,
        Method::LightTs,
    ];
    for spec in archive::table1_specs() {
        lightts_obs::event!("table2.dataset", { dataset: spec.name.as_str() });
        let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
            .expect("context preparation failed");
        let (ens_acc, ens_top5) = test_metrics(&ctx.ensemble, &ctx.splits).expect("ensemble eval");

        // FP-Stud: 32-bit student distilled with full LightTS
        let opts = args.scale.distill_opts(args.seed ^ 0xF5);
        let cfg32 = args.scale.student_config(&ctx.splits, 32);
        let fp_stud = run_method(Method::LightTs, &ctx.splits, &ctx.teachers, &cfg32, &opts)
            .expect("FP-Stud distillation");
        let (stud_acc, stud_top5) =
            test_metrics(&fp_stud.student, &ctx.splits).expect("FP-Stud eval");

        banner(&format!("Table 2: {}", spec.name));
        println!(
            "FP-Ensem/FP-Stud\tAccuracy {} / {}\tTop-5 {} / {}",
            f2(ens_acc),
            f2(stud_acc),
            f2(ens_top5),
            f2(stud_top5)
        );
        println!("method\tacc4\tacc8\tacc16\ttop5_4\ttop5_8\ttop5_16");

        // collect per method across bit-widths
        let mut acc = vec![[0.0f64; 3]; methods.len()];
        let mut top5 = vec![[0.0f64; 3]; methods.len()];
        for (bi, &b) in bits.iter().enumerate() {
            let results = run_methods_on(&ctx, &args.scale, &methods, b, args.seed ^ u64::from(b))
                .expect("method run");
            for (mi, &(a, t, _)) in results.iter().enumerate() {
                acc[mi][bi] = a;
                top5[mi][bi] = t;
            }
        }
        for (mi, m) in methods.iter().enumerate() {
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                m.as_str(),
                f2(acc[mi][0]),
                f2(acc[mi][1]),
                f2(acc[mi][2]),
                f2(top5[mi][0]),
                f2(top5[mi][1]),
                f2(top5[mi][2])
            );
        }
    }
}
