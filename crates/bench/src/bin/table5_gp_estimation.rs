//! Paper Table 5: quality of the GP accuracy estimator under different
//! setting representations — Original, Normalized, Single (autoencoder)
//! Encoder, Two-phase Encoder — on Adiac, PigAirway, and NonInvECG2.
//!
//! Protocol: sample settings, obtain their ground-truth accuracies with
//! AED, fit a GP per representation on half, and report MAE/MAPE of the
//! GP's predictions on the held-out half.
//!
//! Expected shape: the two-phase encoder gives the lowest errors; plain
//! normalization does not help by itself.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::{banner, f2};
use lightts_data::archive;
use lightts_distill::aed::run_aed;
use lightts_search::encoder::train_encoder;
use lightts_search::gp::GaussianProcess;
use lightts_tensor::rng::seeded;

fn main() {
    let args = Args::parse();
    let n_settings = if args.scale.name == "quick" { 28 } else { 50 };
    let reprs = [
        SpaceRepr::Original,
        SpaceRepr::Normalized,
        SpaceRepr::SingleEncoder,
        SpaceRepr::TwoPhaseEncoder,
    ];

    banner("Table 5: GP accuracy-estimation error");
    println!("dataset\trepresentation\tMAE\tMAPE");
    for name in ["Adiac", "PigAirway", "NonInvECG2"] {
        let spec = archive::table1(name).expect("known dataset");
        lightts_obs::event!("table5.dataset", { dataset: name, settings: n_settings });
        let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
            .expect("context preparation failed");
        let space = SearchSpace::paper_default(
            ctx.splits.train.dims(),
            ctx.splits.train.series_len(),
            ctx.splits.num_classes(),
            args.scale.student_filters,
        );
        let mut rng = seeded(args.seed ^ 0x55);
        let settings = space.sample_distinct(&mut rng, n_settings);
        let opts = args.scale.distill_opts(args.seed ^ 0x56);
        let truths: Vec<f64> = settings
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let cfg = s.to_config(&space);
                let acc = run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed)
                    .expect("AED evaluation")
                    .val_accuracy;
                lightts_obs::event!("table5.setting", {
                    index: i + 1,
                    total: n_settings,
                    setting: s.display(),
                    acc: acc,
                });
                acc
            })
            .collect();

        // fit on even indices, evaluate on odd
        let fit_idx: Vec<usize> = (0..n_settings).step_by(2).collect();
        let eval_idx: Vec<usize> = (1..n_settings).step_by(2).collect();
        let fit_pairs: Vec<(StudentSetting, f64)> =
            fit_idx.iter().map(|&i| (settings[i].clone(), truths[i])).collect();

        for repr in reprs {
            let encoder = match repr {
                SpaceRepr::SingleEncoder => Some(
                    train_encoder(&space, &fit_pairs, &Default::default(), false).expect("encoder"),
                ),
                SpaceRepr::TwoPhaseEncoder => Some(
                    train_encoder(&space, &fit_pairs, &Default::default(), true).expect("encoder"),
                ),
                _ => None,
            };
            let encode = |s: &StudentSetting| -> Vec<f32> {
                match repr {
                    SpaceRepr::Original => space.encode_raw(s),
                    SpaceRepr::Normalized => space.encode_normalized(s),
                    _ => encoder
                        .as_ref()
                        .expect("encoder present")
                        .encode(&space, s)
                        .expect("encode"),
                }
            };
            let xs: Vec<Vec<f32>> = fit_idx.iter().map(|&i| encode(&settings[i])).collect();
            let ys: Vec<f32> = fit_idx.iter().map(|&i| truths[i] as f32).collect();
            let gp = GaussianProcess::fit(xs, &ys).expect("GP fit");
            let mut mae = 0.0f64;
            let mut mape = 0.0f64;
            for &i in &eval_idx {
                let (mu, _) = gp.predict(&encode(&settings[i])).expect("GP predict");
                let err = (f64::from(mu) - truths[i]).abs();
                mae += err;
                mape += err / truths[i].max(0.05);
            }
            mae /= eval_idx.len() as f64;
            mape /= eval_idx.len() as f64;
            println!("{name}\t{}\t{}\t{}", repr.as_str(), f2(mae), f2(mape));
        }
    }
}
