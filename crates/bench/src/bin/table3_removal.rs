//! Paper Table 3: teacher-removal strategy ablation on Adiac — no removal
//! vs. softmax-argmin removal vs. the confident Gumbel-softmax removal
//! LightTS uses, at 4/8/16 bits.
//!
//! Expected shape: Gumbel removal clearly ahead of both ablations on
//! accuracy and top-5 accuracy.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::{banner, f2};
use lightts_data::archive;
use lightts_distill::removal::{lightts_removal, RemovalStrategy};
use lightts_models::metrics::{accuracy, top_k_accuracy};

fn main() {
    let args = Args::parse();
    let spec = archive::table1("Adiac").expect("Adiac spec exists");
    lightts_obs::event!("table3.start", { dataset: spec.name.as_str(), scale: args.scale.name });
    let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
        .expect("context preparation failed");

    let strategies = [
        ("No removal", RemovalStrategy::None),
        ("Softmax", RemovalStrategy::Softmax),
        ("Gumbel", RemovalStrategy::GumbelConfident),
    ];
    let bits = [4u8, 8, 16];

    banner("Table 3: teacher-removal strategies, Adiac");
    println!("strategy\tacc4\tacc8\tacc16\ttop5_4\ttop5_8\ttop5_16");
    for (name, strategy) in strategies {
        let mut acc = [0.0f64; 3];
        let mut top5 = [0.0f64; 3];
        for (bi, &b) in bits.iter().enumerate() {
            let cfg = args.scale.student_config(&ctx.splits, b);
            let opts = args.scale.distill_opts(args.seed ^ u64::from(b));
            let res = lightts_removal(&ctx.splits, &ctx.teachers, &cfg, &opts.aed, strategy)
                .expect("removal run");
            let probs = res.student.predict_proba_dataset(&ctx.splits.test).expect("prediction");
            acc[bi] = accuracy(&probs, ctx.splits.test.labels()).expect("accuracy");
            top5[bi] = top_k_accuracy(&probs, ctx.splits.test.labels(), 5).expect("top5");
            lightts_obs::event!("table3.cell", {
                method: name,
                bits: b,
                acc: acc[bi],
                kept: format!("{:?}", res.kept),
            });
        }
        println!(
            "{name}\t{}\t{}\t{}\t{}\t{}\t{}",
            f2(acc[0]),
            f2(acc[1]),
            f2(acc[2]),
            f2(top5[0]),
            f2(top5[1]),
            f2(top5[2])
        );
    }
}
