//! Paper Figure 20: effect of the number of base models N on LightTS
//! accuracy and total training time (Adiac, PigAirway, NonInvECG2).
//!
//! Expected shape: accuracy suffers for very small N (few teachers to choose
//! from), stabilizes as N grows, and can dip slightly at large N (removal
//! gets noisier); training time grows linearly in N, matching the
//! O(N·E·BP_w) complexity analysis.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::{banner, f2, f3};
use lightts_data::archive;
use lightts_models::metrics::accuracy;
use lightts_models::Classifier;

fn main() {
    let args = Args::parse();
    let ns: &[usize] =
        if args.scale.name == "quick" { &[2, 4, 6, 10] } else { &[5, 10, 15, 20, 25, 30] };
    for name in ["Adiac", "PigAirway", "NonInvECG2"] {
        let spec = archive::table1(name).expect("known dataset");
        banner(&format!("Figure 20: {name}"));
        println!("n_teachers\taccuracy\ttrain_seconds");
        for &n in ns {
            let mut scale = args.scale;
            scale.n_teachers = n;
            let ctx = prepare(&spec, BaseModelKind::InceptionTime, &scale, args.seed)
                .expect("context preparation failed");
            let cfg = scale.student_config(&ctx.splits, 8);
            let opts = scale.distill_opts(args.seed ^ n as u64);
            let out = run_method(Method::LightTs, &ctx.splits, &ctx.teachers, &cfg, &opts)
                .expect("LightTS run");
            let probs = out.student.predict_proba_dataset(&ctx.splits.test).expect("prediction");
            let acc = accuracy(&probs, ctx.splits.test.labels()).expect("accuracy");
            println!("{n}\t{}\t{}", f3(acc), f2(out.train_seconds));
            lightts_obs::event!("fig20.point", {
                dataset: name,
                n: n,
                acc: acc,
                seconds: out.train_seconds,
            });
        }
    }
}
