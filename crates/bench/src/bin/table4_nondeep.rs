//! Paper Table 4: distillation from non-deep teacher ensembles (TDE, CIF,
//! Time Series Forest) on Adiac and PigAirway.
//!
//! Expected shape: LightTS beats the single-teacher baselines by a large
//! factor (the paper reports ≈ 3×) because it can select the teachers whose
//! knowledge transfers across the architecture gap, while FP-Ensem is not
//! reached (teacher/student architecture mismatch costs accuracy).

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::{prepare, test_metrics};
use lightts_bench::report::{banner, f2};
use lightts_bench::runner::run_methods_on;
use lightts_data::archive;

fn main() {
    let args = Args::parse();
    let kinds = [BaseModelKind::Tde, BaseModelKind::Cif, BaseModelKind::Forest];
    let datasets = ["Adiac", "PigAirway"];
    let methods =
        [Method::ClassicKd, Method::AeKd, Method::Reinforced, Method::Cawpe, Method::LightTs];
    let bits = [4u8, 8, 16];

    for name in datasets {
        let spec = archive::table1(name).expect("known dataset");
        for kind in kinds {
            lightts_obs::event!("table4.cell", { dataset: name, base: kind.as_str() });
            let ctx =
                prepare(&spec, kind, &args.scale, args.seed).expect("context preparation failed");
            let (ens_acc, ens_top5) =
                test_metrics(&ctx.ensemble, &ctx.splits).expect("ensemble eval");

            // FP-Stud: 32-bit LightTS student from the same teachers
            let opts = args.scale.distill_opts(args.seed ^ 0xF5);
            let cfg32 = args.scale.student_config(&ctx.splits, 32);
            let fp = run_method(Method::LightTs, &ctx.splits, &ctx.teachers, &cfg32, &opts)
                .expect("FP-Stud run");
            let (stud_acc, stud_top5) = test_metrics(&fp.student, &ctx.splits).expect("eval");

            banner(&format!("Table 4: {} teachers on {}", kind.as_str(), name));
            println!(
                "FP-Ensem/FP-Stud\tAccuracy {} / {}\tTop-5 {} / {}",
                f2(ens_acc),
                f2(stud_acc),
                f2(ens_top5),
                f2(stud_top5)
            );
            println!("method\tacc4\tacc8\tacc16\ttop5_4\ttop5_8\ttop5_16");
            let mut acc = vec![[0.0f64; 3]; methods.len()];
            let mut top5 = vec![[0.0f64; 3]; methods.len()];
            for (bi, &b) in bits.iter().enumerate() {
                let results =
                    run_methods_on(&ctx, &args.scale, &methods, b, args.seed ^ u64::from(b))
                        .expect("method run");
                for (mi, &(a, t, _)) in results.iter().enumerate() {
                    acc[mi][bi] = a;
                    top5[mi][bi] = t;
                }
            }
            for (mi, m) in methods.iter().enumerate() {
                println!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    m.as_str(),
                    f2(acc[mi][0]),
                    f2(acc[mi][1]),
                    f2(acc[mi][2]),
                    f2(top5[mi][0]),
                    f2(top5[mi][1]),
                    f2(top5[mi][2])
                );
            }
        }
    }
}
