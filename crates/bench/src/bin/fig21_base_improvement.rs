//! Paper Figure 21: improving the fixed "base settings" of Problem
//! Scenario 1 with search — first varying only the bit-widths ("Fixed
//! layers"), then the complete search space ("Encoded MOBO"), on Adiac.
//!
//! Expected shape: both searches find settings above-left of the base
//! settings (better accuracy at smaller size); the full space finds the
//! larger improvements.

use lightts::prelude::*;
use lightts_bench::args::Args;
use lightts_bench::context::prepare;
use lightts_bench::report::{banner, f3, render_scatter, ScatterPoint};
use lightts_data::archive;
use lightts_distill::aed::run_aed;

fn oracle_for<'a>(
    ctx: &'a lightts_bench::context::DatasetContext,
    space: &'a SearchSpace,
    opts: &'a DistillOpts,
) -> impl FnMut(&StudentSetting) -> Result<f64, String> + 'a {
    move |s: &StudentSetting| {
        let cfg = s.to_config(space);
        run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed)
            .map(|r| r.val_accuracy)
            .map_err(|e| e.to_string())
    }
}

fn main() {
    let mut scatter: Vec<ScatterPoint> = Vec::new();
    let args = Args::parse();
    let spec = archive::table1("Adiac").expect("Adiac spec exists");
    let ctx = prepare(&spec, BaseModelKind::InceptionTime, &args.scale, args.seed)
        .expect("context preparation failed");
    let opts = args.scale.distill_opts(args.seed ^ 0x21);

    // base settings: the Scenario-1 students at 4/8/16 bits
    banner("Figure 21: base settings (3 blocks x 3 layers, filter 40), Adiac");
    println!("label\tbits\taccuracy\tsize_kb");
    let full_space = SearchSpace::paper_default(
        ctx.splits.train.dims(),
        ctx.splits.train.series_len(),
        ctx.splits.num_classes(),
        args.scale.student_filters,
    );
    for bits in [4u8, 8, 16] {
        let setting = StudentSetting(vec![(3, 40, bits); 3]);
        let cfg = setting.to_config(&full_space);
        let res = run_aed(&ctx.splits, &ctx.teachers, &cfg, &opts.aed).expect("AED");
        println!("base\t{bits}\t{}\t{:.2}", f3(res.val_accuracy), cfg.size_kb());
        scatter.push(ScatterPoint { x: cfg.size_kb(), y: res.val_accuracy, marker: 'B' });
        lightts_obs::event!("fig21.base", {
            bits: bits,
            val: res.val_accuracy,
            size_kb: cfg.size_kb(),
        });
    }

    // fixed-layers search: only the bit-widths vary
    let mut fixed_space = full_space.clone();
    fixed_space.layer_choices = vec![3];
    fixed_space.filter_choices = vec![40];
    let mobo_fixed = args.scale.mobo_config(SpaceRepr::TwoPhaseEncoder, args.seed ^ 0x22);
    banner("Figure 21: Fixed layers (bit-width-only search)");
    println!("label\tsetting\taccuracy\tsize_kb");
    let out = lightts_search::mobo::run_mobo(
        &fixed_space,
        oracle_for(&ctx, &fixed_space, &opts),
        &mobo_fixed,
    )
    .expect("fixed-layer search");
    for p in &out.frontier {
        println!(
            "fixed-layers\t{}\t{}\t{:.2}",
            p.setting.display(),
            f3(p.accuracy),
            lightts_nn::size::bits_to_kb(p.size_bits)
        );
        scatter.push(ScatterPoint {
            x: lightts_nn::size::bits_to_kb(p.size_bits),
            y: p.accuracy,
            marker: 'F',
        });
    }

    // full encoded MOBO
    let mobo_full = args.scale.mobo_config(SpaceRepr::TwoPhaseEncoder, args.seed ^ 0x23);
    banner("Figure 21: Encoded MOBO (full search space)");
    println!("label\tsetting\taccuracy\tsize_kb");
    let out = lightts_search::mobo::run_mobo(
        &full_space,
        oracle_for(&ctx, &full_space, &opts),
        &mobo_full,
    )
    .expect("full search");
    for p in &out.frontier {
        println!(
            "encoded-mobo\t{}\t{}\t{:.2}",
            p.setting.display(),
            f3(p.accuracy),
            lightts_nn::size::bits_to_kb(p.size_bits)
        );
        scatter.push(ScatterPoint {
            x: lightts_nn::size::bits_to_kb(p.size_bits),
            y: p.accuracy,
            marker: 'E',
        });
    }

    banner("Figure 21 scatter (B = base, F = fixed-layers, E = encoded MOBO)");
    print!("{}", render_scatter(&scatter, 64, 16));
}
