//! Calibration utility: times the building blocks of the experiments so the
//! scale presets can be sized to the host. Not a paper artifact.

use lightts::prelude::*;
use lightts_bench::context::{prepare, ExperimentScale};
use lightts_data::archive;
use std::time::Instant;

fn main() {
    let scale = ExperimentScale::quick();
    let spec = archive::table1("Adiac").unwrap();

    let t0 = Instant::now();
    let ctx = prepare(&spec, BaseModelKind::InceptionTime, &scale, 1).unwrap();
    println!(
        "prepare (gen + {} teachers x {} epochs): {:.2}s",
        scale.n_teachers,
        scale.teacher_epochs,
        t0.elapsed().as_secs_f64()
    );
    println!(
        "train {} series, len {}, {} classes",
        ctx.splits.train.len(),
        ctx.splits.train.series_len(),
        ctx.splits.num_classes()
    );

    let opts = scale.distill_opts(2);
    let cfg = scale.student_config(&ctx.splits, 8);
    for m in
        [Method::ClassicKd, Method::AedOne, Method::LightTs, Method::AedLoo, Method::Reinforced]
    {
        let t = Instant::now();
        let out = run_method(m, &ctx.splits, &ctx.teachers, &cfg, &opts).unwrap();
        println!(
            "{:<12} {:.2}s  val acc {:.3}  aed_runs {}",
            m.as_str(),
            t.elapsed().as_secs_f64(),
            out.val_accuracy,
            out.aed_runs
        );
    }
}
