//! Paper Figures 13–16: accuracy ranking over the archive with the
//! Friedman test and Wilcoxon–Holm critical-difference groups.
//!
//! Prints the overall ranking (Figure 13) and the per-bit-width rankings
//! (Figures 14–16). The archive is the synthetic analogue: the nine Table 1
//! datasets plus generated archive members up to `--datasets` (default 9
//! quick / 24 full; the paper uses all 128 UCR sets).
//!
//! Expected shape: LightTS and AED-LOO share the top group, ahead of
//! FP-Ensem; Reinforced mid-field; Classic KD / AE-KD / CAWPE / AED-One in
//! the trailing cluster.

use lightts_bench::args::Args;
use lightts_bench::report::banner;
use lightts_bench::runner::{run_ranking, RankingData};
use lightts_data::archive;
use lightts_models::ensemble::BaseModelKind;
use lightts_stats::{cd_cliques, friedman_test, render_cd_diagram};

fn print_ranking(section: &str, data: &RankingData) {
    banner(section);
    if data.cells.is_empty() {
        println!("(no cells)");
        return;
    }
    let fr = friedman_test(&data.scores).expect("well-formed score matrix");
    println!(
        "Friedman chi2 = {:.3}, df = {}, p = {:.2e} over {} cells",
        fr.statistic,
        fr.df,
        fr.p_value,
        data.cells.len()
    );
    let (avg, cliques) = cd_cliques(&data.scores, 0.05).expect("well-formed score matrix");
    let names: Vec<&str> = data.names.iter().map(|s| s.as_str()).collect();
    print!("{}", render_cd_diagram(&names, &avg, &cliques));
}

fn main() {
    let args = Args::parse();
    let n_datasets = args.datasets.unwrap_or(if args.scale.name == "quick" { 9 } else { 24 });
    let mut specs = archive::table1_specs();
    if n_datasets > specs.len() {
        specs.extend(archive::full_archive_specs(n_datasets - specs.len()));
    } else {
        specs.truncate(n_datasets);
    }
    lightts_obs::event!("fig13.start", {
        datasets: specs.len(),
        scale: args.scale.name,
        seed: args.seed,
    });
    let data =
        run_ranking(&specs, BaseModelKind::InceptionTime, &args.scale, args.seed, &[4, 8, 16])
            .expect("ranking run failed");

    print_ranking("Figure 13: overall accuracy ranking (all bit-widths)", &data);
    for (bits, fig) in [(4u8, 14), (8, 15), (16, 16)] {
        print_ranking(
            &format!("Figure {fig}: {bits}-bit accuracy ranking"),
            &data.filter_bits(bits),
        );
    }
}
