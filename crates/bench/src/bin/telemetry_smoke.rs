//! End-to-end smoke test of the live telemetry stack, over real TCP.
//!
//! ```text
//! telemetry_smoke
//! ```
//!
//! Serves a small model behind
//! [`Server::serve_telemetry`](lightts_serve::Server::serve_telemetry) on
//! an ephemeral loopback port, pushes a few hundred predictions through,
//! then plays Prometheus with a bare `std::net::TcpStream` client:
//!
//! * `GET /healthz` → 200 with `"scheduler_alive":true`;
//! * `GET /metrics` → 200 Prometheus text containing the `serve.*` stage
//!   histograms, with a `# TYPE` line for every series;
//! * `GET /metrics.json` → 200 parseable JSON;
//! * `GET /tracez` → 200 JSONL whose spans pass both schema and
//!   trace-linkage validation, with at least one reconstructable request
//!   (queue-wait / fuse / forward / reply under one `serve.request` root);
//! * `GET /profilez` → 200; with profiling enabled the collapsed stacks
//!   must name the plan forward and a conv kernel.
//!
//! Exits non-zero with a message on the first failed check. CI runs this
//! in both matrix configurations.

use lightts_models::inception::{BlockSpec, InceptionConfig, InceptionTime};
use lightts_serve::{ModelRegistry, ServeConfig, Server};
use lightts_tensor::rng::seeded;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const IN_DIMS: usize = 2;
const IN_LEN: usize = 16;
const CLASSES: usize = 3;

/// A small model with hand-set batch-norm statistics (no training run).
fn build_model(seed: u64) -> InceptionTime {
    let cfg = InceptionConfig {
        blocks: vec![
            BlockSpec { layers: 2, filter_len: 8, bits: 8 },
            BlockSpec { layers: 2, filter_len: 4, bits: 8 },
        ],
        filters: 3,
        in_dims: IN_DIMS,
        in_len: IN_LEN,
        num_classes: CLASSES,
    };
    let mut rng = seeded(seed);
    let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
    for (i, c) in model.bn_channel_counts().iter().enumerate() {
        let mean: Vec<f32> = (0..*c).map(|j| 0.04 * j as f32 - 0.08).collect();
        let var: Vec<f32> = (0..*c).map(|j| 0.6 + 0.02 * j as f32).collect();
        model.set_bn_running_stats(i, &mean, &var).unwrap();
    }
    model
}

fn sample(i: usize) -> Vec<f32> {
    (0..IN_DIMS * IN_LEN)
        .map(|j| {
            let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
            h as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let status: u16 = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in response to {target}: {buf:?}"));
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn check(what: &str, ok: bool, detail: &str) {
    if ok {
        println!("telemetry_smoke: {what}: ok");
    } else {
        eprintln!("telemetry_smoke: {what}: FAILED — {detail}");
        std::process::exit(1);
    }
}

fn main() {
    // Capture spans for /tracez regardless of LIGHTTS_OBS (serve_telemetry
    // enables the ring; the memory sink also exercises the sink path) and
    // turn the profiler on so /profilez has a tree to render.
    lightts_obs::set_sink(lightts_obs::SinkTarget::Memory);
    lightts_obs::prof::set_enabled(true);

    let model = build_model(0xC0FFEE);
    let mut registry = ModelRegistry::new();
    registry.load_packed("smoke", &model.save_bytes().unwrap()).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let telemetry = server.serve_telemetry("127.0.0.1:0").expect("bind telemetry");
    let addr = telemetry.addr();
    println!("telemetry_smoke: serving on http://{addr}/");

    // Push traffic through so every stage histogram and span fires.
    let handle = server.handle();
    let pendings: Vec<_> =
        (0..256).map(|i| handle.submit("smoke", sample(i)).expect("submit")).collect();
    for p in pendings {
        let row = p.wait().expect("prediction");
        assert_eq!(row.len(), CLASSES);
    }

    let (status, body) = get(addr, "/healthz");
    check(
        "/healthz",
        status == 200 && body.contains("\"scheduler_alive\":true"),
        &format!("status {status}, body {body:?}"),
    );

    let (status, body) = get(addr, "/metrics");
    let series_ok = ["serve_queue_wait_ns", "serve_fuse_ns", "serve_forward_ns", "serve_reply_ns"]
        .iter()
        .all(|s| body.contains(&format!("# TYPE {s} histogram")));
    check(
        "/metrics",
        status == 200 && series_ok && body.contains("serve_requests"),
        &format!("status {status}; missing stage histogram TYPE lines in:\n{body}"),
    );

    let (status, body) = get(addr, "/metrics.json");
    let json_ok = lightts_obs::jsonl::parse(body.trim()).is_ok();
    check("/metrics.json", status == 200 && json_ok, &format!("status {status}, body {body:?}"));

    let (status, body) = get(addr, "/tracez");
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut schema_err = None;
    for l in &lines {
        if let Err(e) = lightts_obs::jsonl::validate_event_line(l) {
            schema_err = Some(format!("{e} in {l}"));
            break;
        }
    }
    let linked = lightts_obs::jsonl::validate_trace_linkage(lines.iter().copied());
    check(
        "/tracez",
        status == 200
            && !lines.is_empty()
            && schema_err.is_none()
            && matches!(linked, Ok(n) if n > 0),
        &format!(
            "status {status}, {} lines, schema {:?}, linkage {:?}",
            lines.len(),
            schema_err,
            linked
        ),
    );
    // One request must be reconstructable stage by stage from the ring.
    let has_stages = ["serve.queue_wait", "serve.fuse", "serve.forward", "serve.reply"]
        .iter()
        .all(|p| lines.iter().any(|l| l.contains(&format!("\"path\":\"{p}\""))));
    check("/tracez stage spans", has_stages, "missing a stage span path in the ring");

    let (status, body) = get(addr, "/profilez");
    let named = body.contains("plan.forward")
        && (body.contains("conv.lowered_fwd") || body.contains("conv.direct_fwd"));
    check(
        "/profilez",
        status == 200 && named,
        &format!("status {status}; collapsed stacks must name the forward + conv kernels:\n{body}"),
    );

    let (status, _) = get(addr, "/nope");
    check("/nope is 404", status == 404, &format!("status {status}"));

    drop(telemetry);
    server.shutdown();
    println!("telemetry_smoke: all checks passed");
}
