//! Paper Figure 17: accuracy ranking restricted to datasets with 2 or 3
//! classes (46% of the UCR archive).
//!
//! Expected shape: the same ordering as Figure 13, with methods closer
//! together — few-class problems produce many tied comparisons.

use lightts_bench::args::Args;
use lightts_bench::report::banner;
use lightts_bench::runner::run_ranking;
use lightts_data::archive;
use lightts_models::ensemble::BaseModelKind;
use lightts_stats::{cd_cliques, friedman_test, render_cd_diagram};

fn main() {
    let args = Args::parse();
    let n_datasets = args.datasets.unwrap_or(if args.scale.name == "quick" { 6 } else { 16 });
    // draw few-class specs from the archive analogue (paper: 59 of 128)
    let pool = archive::full_archive_specs(256);
    let mut specs = archive::few_class_subset(&pool);
    specs.truncate(n_datasets);
    lightts_obs::event!("fig17.start", { datasets: specs.len(), scale: args.scale.name });

    let data =
        run_ranking(&specs, BaseModelKind::InceptionTime, &args.scale, args.seed, &[4, 8, 16])
            .expect("ranking run failed");

    banner("Figure 17: accuracy ranking, 2-3-class datasets");
    let fr = friedman_test(&data.scores).expect("well-formed matrix");
    println!(
        "Friedman chi2 = {:.3}, df = {}, p = {:.2e} over {} cells",
        fr.statistic,
        fr.df,
        fr.p_value,
        data.cells.len()
    );
    let (avg, cliques) = cd_cliques(&data.scores, 0.05).expect("well-formed matrix");
    let names: Vec<&str> = data.names.iter().map(|s| s.as_str()).collect();
    print!("{}", render_cd_diagram(&names, &avg, &cliques));
}
