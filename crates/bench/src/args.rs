//! Minimal CLI argument handling shared by the experiment binaries.

use crate::context::ExperimentScale;

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Experiment scale preset.
    pub scale: ExperimentScale,
    /// Master seed.
    pub seed: u64,
    /// Optional dataset-count override (ranking experiments).
    pub datasets: Option<usize>,
    /// Scheduler shard-count override for the serving benches, from the
    /// `LIGHTTS_SERVE_SHARDS` environment variable (capped at
    /// [`lightts_serve::MAX_SHARDS`]); `None` when unset or unparsable.
    /// `bench_serve_cluster` sweeps only this count when set.
    pub serve_shards: Option<usize>,
}

/// Parses `LIGHTTS_SERVE_SHARDS` from the environment: a positive integer,
/// capped at [`lightts_serve::MAX_SHARDS`]; `None` when unset, empty, zero,
/// or unparsable.
pub fn serve_shards_from_env() -> Option<usize> {
    std::env::var("LIGHTTS_SERVE_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .map(|n| n.min(lightts_serve::MAX_SHARDS))
}

impl Args {
    /// Parses `--scale quick|full`, `--seed N`, `--datasets N` from the
    /// process arguments; unknown arguments abort with a usage message.
    ///
    /// Also initializes the observability sink: progress goes to stderr as
    /// JSONL events by default, `LIGHTTS_OBS` overrides (`0` silences,
    /// a path redirects to a file). If `LIGHTTS_TELEMETRY_ADDR` is set,
    /// the telemetry HTTP server ([`lightts_obs::http`]) is spawned over
    /// the global registry for the lifetime of the process, so any
    /// long-running experiment can be scraped live (`/metrics`,
    /// `/healthz`, `/tracez`, `/profilez`).
    pub fn parse() -> Args {
        lightts_obs::init_from_env_or(lightts_obs::SinkTarget::Stderr);
        match lightts_obs::http::spawn_from_env(lightts_obs::global()) {
            Ok(Some(srv)) => {
                eprintln!("telemetry: listening on http://{}/", srv.addr());
                // Keep serving until process exit; the handle's Drop would
                // stop the server.
                std::mem::forget(srv);
            }
            Ok(None) => {}
            Err(e) => eprintln!("telemetry: failed to bind LIGHTTS_TELEMETRY_ADDR: {e}"),
        }
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args {
            scale: ExperimentScale::quick(),
            seed: 0x11C5,
            datasets: None,
            serve_shards: serve_shards_from_env(),
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => match it.next().as_deref() {
                    Some("quick") => out.scale = ExperimentScale::quick(),
                    Some("full") => out.scale = ExperimentScale::full(),
                    other => usage(&format!("--scale expects quick|full, got {other:?}")),
                },
                "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                    Some(s) => out.seed = s,
                    None => usage("--seed expects an integer"),
                },
                "--datasets" => match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => out.datasets = Some(n),
                    None => usage("--datasets expects an integer"),
                },
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument {other}")),
            }
        }
        out
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <experiment> [--scale quick|full] [--seed N] [--datasets N]");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = Args::parse_from(Vec::<String>::new());
        assert_eq!(a.seed, 0x11C5);
        assert!(a.datasets.is_none());
        assert_eq!(a.scale.name, "quick");
    }

    #[test]
    fn serve_shards_env_parses_and_caps() {
        // Exercise the parser on explicit env states; restore afterwards so
        // sibling tests observe the ambient environment.
        let saved = std::env::var("LIGHTTS_SERVE_SHARDS").ok();
        std::env::set_var("LIGHTTS_SERVE_SHARDS", "3");
        assert_eq!(serve_shards_from_env(), Some(3));
        std::env::set_var("LIGHTTS_SERVE_SHARDS", "100000");
        assert_eq!(serve_shards_from_env(), Some(lightts_serve::MAX_SHARDS));
        std::env::set_var("LIGHTTS_SERVE_SHARDS", "0");
        assert_eq!(serve_shards_from_env(), None);
        std::env::set_var("LIGHTTS_SERVE_SHARDS", "banana");
        assert_eq!(serve_shards_from_env(), None);
        match saved {
            Some(v) => std::env::set_var("LIGHTTS_SERVE_SHARDS", v),
            None => std::env::remove_var("LIGHTTS_SERVE_SHARDS"),
        }
    }

    #[test]
    fn parses_flags() {
        let a = Args::parse_from(
            ["--scale", "full", "--seed", "7", "--datasets", "12"].iter().map(|s| s.to_string()),
        );
        assert_eq!(a.scale.name, "full");
        assert_eq!(a.seed, 7);
        assert_eq!(a.datasets, Some(12));
    }
}
