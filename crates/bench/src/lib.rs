//! # lightts-bench
//!
//! The experiment harness of the LightTS reproduction: one binary per table
//! and figure of the paper's evaluation (Section 4), plus Criterion
//! micro-benchmarks (`benches/micro.rs`).
//!
//! Every binary accepts `--scale quick|full` (default `quick`), prints its
//! table/series as TSV to stdout, and is deterministic for a fixed seed.
//! `DESIGN.md` maps each binary to its paper artifact; `EXPERIMENTS.md`
//! records paper-vs-measured results.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod context;
pub mod perf;
pub mod report;
pub mod runner;
