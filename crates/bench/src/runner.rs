//! The ranking engine: runs every distillation method over a set of
//! datasets and bit-widths, collecting test accuracies (for the Friedman /
//! Wilcoxon–Holm ranking figures) and training times (Figure 18).

use crate::context::{prepare, test_metrics, DatasetContext, ExperimentScale, Result};
use lightts::prelude::*;
use lightts_data::archive::DatasetSpec;
use lightts_obs as obs;
use lightts_tensor::rng::derive_seed;

/// One evaluated cell: a method's student on one dataset at one bit-width.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Dataset name.
    pub dataset: String,
    /// Student bit-width.
    pub bits: u8,
}

/// The complete ranking data: a `methods × cells` score matrix plus
/// training times.
#[derive(Debug, Clone)]
pub struct RankingData {
    /// Row names: the seven methods plus `FP-Ensem`.
    pub names: Vec<String>,
    /// Test accuracy per method per cell.
    pub scores: Vec<Vec<f64>>,
    /// Training seconds per method per cell (0 for `FP-Ensem`, which is
    /// already trained).
    pub times: Vec<Vec<f64>>,
    /// Cell descriptors, aligned with the score columns.
    pub cells: Vec<Cell>,
}

impl RankingData {
    /// Restricts the data to cells with the given bit-width.
    pub fn filter_bits(&self, bits: u8) -> RankingData {
        let keep: Vec<usize> =
            self.cells.iter().enumerate().filter(|(_, c)| c.bits == bits).map(|(i, _)| i).collect();
        RankingData {
            names: self.names.clone(),
            scores: self.scores.iter().map(|row| keep.iter().map(|&i| row[i]).collect()).collect(),
            times: self.times.iter().map(|row| keep.iter().map(|&i| row[i]).collect()).collect(),
            cells: keep.iter().map(|&i| self.cells[i].clone()).collect(),
        }
    }
}

/// The methods compared in the ranking figures, in table order.
pub fn ranking_methods() -> Vec<Method> {
    Method::all().to_vec()
}

/// Runs all methods over `specs × bits`, using `kind` base models.
///
/// Progress goes to stderr; the caller owns stdout for the TSV artifact.
pub fn run_ranking(
    specs: &[DatasetSpec],
    kind: BaseModelKind,
    scale: &ExperimentScale,
    seed: u64,
    bits: &[u8],
) -> Result<RankingData> {
    let methods = ranking_methods();
    let mut names: Vec<String> = methods.iter().map(|m| m.as_str().to_string()).collect();
    names.push("FP-Ensem".to_string());
    let rows = names.len();
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); rows];
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); rows];
    let mut cells = Vec::new();

    for (di, spec) in specs.iter().enumerate() {
        obs::event!("bench.dataset", {
            index: di + 1,
            total: specs.len(),
            dataset: spec.name.as_str(),
        });
        let ctx = prepare(spec, kind, scale, derive_seed(seed, di as u64))?;
        let (ens_acc, _) = test_metrics(&ctx.ensemble, &ctx.splits)?;
        for &b in bits {
            let cfg = scale.student_config(&ctx.splits, b);
            let opts = scale.distill_opts(derive_seed(seed, 1000 + di as u64));
            for (mi, &m) in methods.iter().enumerate() {
                let out = run_method(m, &ctx.splits, &ctx.teachers, &cfg, &opts)?;
                let (acc, _) = test_metrics(&out.student, &ctx.splits)?;
                scores[mi].push(acc);
                times[mi].push(out.train_seconds);
                obs::event!("bench.cell", {
                    dataset: spec.name.as_str(),
                    bits: b,
                    method: m.as_str(),
                    acc: acc,
                    seconds: out.train_seconds,
                });
            }
            // FP-Ensem appears once per cell so ranks are comparable
            scores[rows - 1].push(ens_acc);
            times[rows - 1].push(0.0);
            cells.push(Cell { dataset: spec.name.clone(), bits: b });
        }
    }
    Ok(RankingData { names, scores, times, cells })
}

/// Runs one dataset context through all methods at one bit-width, returning
/// `(accuracy, top5, seconds)` per method — the Table 2/4 inner loop.
pub fn run_methods_on(
    ctx: &DatasetContext,
    scale: &ExperimentScale,
    methods: &[Method],
    bits: u8,
    seed: u64,
) -> Result<Vec<(f64, f64, f64)>> {
    let cfg = scale.student_config(&ctx.splits, bits);
    let opts = scale.distill_opts(seed);
    let mut out = Vec::with_capacity(methods.len());
    for &m in methods {
        let res = run_method(m, &ctx.splits, &ctx.teachers, &cfg, &opts)?;
        let (acc, top5) = test_metrics(&res.student, &ctx.splits)?;
        obs::event!("bench.method", {
            dataset: ctx.spec.name.as_str(),
            bits: bits,
            method: m.as_str(),
            acc: acc,
            top5: top5,
            seconds: res.train_seconds,
        });
        out.push((acc, top5, res.train_seconds));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_bits_selects_columns() {
        let data = RankingData {
            names: vec!["A".into(), "B".into()],
            scores: vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]],
            times: vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            cells: vec![
                Cell { dataset: "x".into(), bits: 4 },
                Cell { dataset: "x".into(), bits: 8 },
                Cell { dataset: "y".into(), bits: 4 },
            ],
        };
        let f = data.filter_bits(4);
        assert_eq!(f.scores[0], vec![0.1, 0.3]);
        assert_eq!(f.times[1], vec![4.0, 6.0]);
        assert_eq!(f.cells.len(), 2);
    }

    #[test]
    fn ranking_methods_cover_all_seven() {
        assert_eq!(ranking_methods().len(), 7);
    }
}
