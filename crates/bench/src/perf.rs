//! Machine-readable kernel benchmark artifact (`BENCH_kernels.json`).
//!
//! The criterion stand-in records a [`Measurement`] per completed benchmark;
//! the bench mains (`benches/kernels.rs`, `benches/micro.rs`,
//! `benches/serve.rs`) drain those and call [`write_records`] to merge them
//! into one JSON array at the repository root. Each record carries
//! `(op, shape, median_ns, threads, scale, backend)`; merging is keyed on
//! everything but `median_ns`, so re-running a bench updates its timing in
//! place while other benches' rows survive. CI uploads the file as an
//! artifact, which is how the ≥1.5× lowered-vs-direct conv and the ≥2×
//! AVX2-vs-scalar SIMD acceptance numbers are recorded.

use criterion::Measurement;
use lightts_obs::jsonl::{parse, Json};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One benchmark result destined for `BENCH_kernels.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Operation name (e.g. `conv1d_forward_lowered` or a full bench path).
    pub op: String,
    /// Problem shape, `b16_cin32_cout32_l128_k9`-style.
    pub shape: String,
    /// Median per-iteration wall clock, nanoseconds.
    pub median_ns: f64,
    /// Thread count the kernel ran with (`0` = automatic / unpinned).
    pub threads: usize,
    /// Measurement scale: `smoke` (CI compile-rot check) or `full`.
    pub scale: String,
    /// SIMD backend the kernel ran on (`scalar` / `sse2` / `avx2`; see
    /// `lightts_tensor::simd`). Rows written before the field existed read
    /// back as `unspecified`.
    pub backend: String,
}

impl KernelRecord {
    /// Builds a record from a drained criterion [`Measurement`], stamped
    /// with the currently active SIMD backend.
    pub fn from_measurement(m: &Measurement, shape: &str, threads: usize, scale: &str) -> Self {
        KernelRecord {
            op: m.name.clone(),
            shape: shape.to_string(),
            median_ns: m.median_ns,
            threads,
            scale: scale.to_string(),
            backend: lightts_tensor::simd::backend().name().to_string(),
        }
    }

    fn key(&self) -> (String, String, usize, String, String) {
        (
            self.op.clone(),
            self.shape.clone(),
            self.threads,
            self.scale.clone(),
            self.backend.clone(),
        )
    }

    fn to_json_line(&self) -> String {
        format!(
            "{{\"op\":{},\"shape\":{},\"median_ns\":{:.1},\"threads\":{},\"scale\":{},\"backend\":{}}}",
            escape(&self.op),
            escape(&self.shape),
            self.median_ns,
            self.threads,
            escape(&self.scale),
            escape(&self.backend)
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The measurement scale in effect: `smoke` under `LIGHTTS_BENCH_SMOKE`
/// (the CI setting, shrunk timing windows), `full` otherwise.
pub fn current_scale() -> &'static str {
    if std::env::var_os("LIGHTTS_BENCH_SMOKE").is_some() {
        "smoke"
    } else {
        "full"
    }
}

/// The artifact location: `BENCH_kernels.json` at the repository root.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json")
}

fn record_from_json(v: &Json) -> Option<KernelRecord> {
    let o = v.as_obj()?;
    Some(KernelRecord {
        op: o.get("op")?.as_str()?.to_string(),
        shape: o.get("shape")?.as_str()?.to_string(),
        median_ns: o.get("median_ns")?.as_num()?,
        threads: o.get("threads")?.as_num()? as usize,
        scale: o.get("scale")?.as_str()?.to_string(),
        backend: o.get("backend").and_then(Json::as_str).unwrap_or("unspecified").to_string(),
    })
}

/// Reads the records already present in `path` (empty on a missing or
/// unparsable file — the artifact is regenerable, never load-bearing).
pub fn read_records(path: &Path) -> Vec<KernelRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(Json::Arr(items)) = parse(&text) else {
        return Vec::new();
    };
    items.iter().filter_map(record_from_json).collect()
}

/// Merges `records` into the JSON array at `path`: rows with the same
/// `(op, shape, threads, scale)` are replaced, everything else is kept, and
/// the result is written sorted by key (one object per line, so diffs stay
/// readable).
pub fn write_records(path: &Path, records: &[KernelRecord]) -> std::io::Result<()> {
    let mut merged = read_records(path);
    for r in records {
        if let Some(slot) = merged.iter_mut().find(|m| m.key() == r.key()) {
            *slot = r.clone();
        } else {
            merged.push(r.clone());
        }
    }
    merged.sort_by_key(|r| r.key());
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, r) in merged.iter().enumerate() {
        let sep = if i + 1 == merged.len() { "" } else { "," };
        writeln!(f, "  {}{}", r.to_json_line(), sep)?;
    }
    writeln!(f, "]")?;
    Ok(())
}

// ------------------------------------------------------------- serving SLO --

/// One closed-loop serving measurement destined for `BENCH_serve.json`.
///
/// Written by `bench_serve_cluster`, which sweeps scheduler shard counts
/// and closed-loop client concurrency against the TCP front door and
/// records the latency/throughput/shed curve; `bench_gate --serve` joins
/// two files on `(bench, shards, concurrency, scale)` and gates `p99_us`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecord {
    /// Benchmark lane, e.g. `tcp_closed_loop`.
    pub bench: String,
    /// Scheduler shard count the server ran with.
    pub shards: usize,
    /// Closed-loop client connections issuing blocking requests.
    pub concurrency: usize,
    /// Measurement scale: `smoke` or `full` (see [`current_scale`]).
    pub scale: String,
    /// Completed OK requests per second over the measurement window.
    pub throughput_rps: f64,
    /// Median request latency, microseconds (exact sorted percentile).
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Fraction of requests shed (`OVERLOADED` + `DEADLINE`), 0.0–1.0.
    pub shed_rate: f64,
}

impl ServeRecord {
    fn key(&self) -> (String, usize, usize, String) {
        (self.bench.clone(), self.shards, self.concurrency, self.scale.clone())
    }

    /// The merge key, `(bench, shards, concurrency, scale)` — everything
    /// but the measured quantities.
    pub fn label(&self) -> String {
        format!("{}/shards{}/c{}/{}", self.bench, self.shards, self.concurrency, self.scale)
    }

    fn to_json_line(&self) -> String {
        format!(
            "{{\"bench\":{},\"shards\":{},\"concurrency\":{},\"scale\":{},\
             \"throughput_rps\":{:.1},\"p50_us\":{:.1},\"p99_us\":{:.1},\"shed_rate\":{:.4}}}",
            escape(&self.bench),
            self.shards,
            self.concurrency,
            escape(&self.scale),
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.shed_rate
        )
    }
}

/// The serving artifact location: `BENCH_serve.json` at the repository root.
pub fn default_serve_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

fn serve_record_from_json(v: &Json) -> Option<ServeRecord> {
    let o = v.as_obj()?;
    Some(ServeRecord {
        bench: o.get("bench")?.as_str()?.to_string(),
        shards: o.get("shards")?.as_num()? as usize,
        concurrency: o.get("concurrency")?.as_num()? as usize,
        scale: o.get("scale")?.as_str()?.to_string(),
        throughput_rps: o.get("throughput_rps")?.as_num()?,
        p50_us: o.get("p50_us")?.as_num()?,
        p99_us: o.get("p99_us")?.as_num()?,
        shed_rate: o.get("shed_rate")?.as_num()?,
    })
}

/// Reads the serving records in `path` (empty on a missing or unparsable
/// file — like the kernel artifact, it is regenerable, never load-bearing).
pub fn read_serve_records(path: &Path) -> Vec<ServeRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(Json::Arr(items)) = parse(&text) else {
        return Vec::new();
    };
    items.iter().filter_map(serve_record_from_json).collect()
}

/// Merges `records` into the JSON array at `path`, keyed on
/// `(bench, shards, concurrency, scale)` — same discipline as
/// [`write_records`]: re-running a sweep updates its cells in place,
/// other cells survive, output is sorted one object per line.
pub fn write_serve_records(path: &Path, records: &[ServeRecord]) -> std::io::Result<()> {
    let mut merged = read_serve_records(path);
    for r in records {
        if let Some(slot) = merged.iter_mut().find(|m| m.key() == r.key()) {
            *slot = r.clone();
        } else {
            merged.push(r.clone());
        }
    }
    merged.sort_by_key(|r| r.key());
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, r) in merged.iter().enumerate() {
        let sep = if i + 1 == merged.len() { "" } else { "," };
        writeln!(f, "  {}{}", r.to_json_line(), sep)?;
    }
    writeln!(f, "]")?;
    Ok(())
}

/// Exact percentile over sorted latency samples: index
/// `ceil(q·n) - 1` of the ascending order statistics (nearest-rank).
/// Returns 0.0 on an empty slice.
pub fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: &str, median: f64) -> KernelRecord {
        KernelRecord {
            op: op.into(),
            shape: "b16_cin32_cout32_l128_k9".into(),
            median_ns: median,
            threads: 1,
            scale: "smoke".into(),
            backend: "scalar".into(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("lightts_bench_{tag}_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn write_then_read_round_trips() {
        let p = temp_path("roundtrip");
        let rows = vec![rec("conv1d_forward_direct", 100.0), rec("conv1d_forward_lowered", 50.0)];
        write_records(&p, &rows).unwrap();
        let back = read_records(&p);
        assert_eq!(back.len(), 2);
        assert!(back.iter().any(|r| r.op == "conv1d_forward_lowered" && r.median_ns == 50.0));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn merge_replaces_matching_keys_and_keeps_others() {
        let p = temp_path("merge");
        write_records(&p, &[rec("a", 10.0), rec("b", 20.0)]).unwrap();
        write_records(&p, &[rec("b", 25.0), rec("c", 30.0)]).unwrap();
        let back = read_records(&p);
        assert_eq!(back.len(), 3);
        assert_eq!(back.iter().find(|r| r.op == "b").unwrap().median_ns, 25.0);
        assert_eq!(back.iter().find(|r| r.op == "a").unwrap().median_ns, 10.0);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn unparsable_existing_file_is_overwritten_not_fatal() {
        let p = temp_path("garbage");
        std::fs::write(&p, "not json at all").unwrap();
        write_records(&p, &[rec("a", 1.0)]).unwrap();
        assert_eq!(read_records(&p).len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn json_strings_are_escaped() {
        let r = KernelRecord {
            op: "weird\"op\\name".into(),
            shape: "s".into(),
            median_ns: 1.0,
            threads: 0,
            scale: "full".into(),
            backend: "avx2".into(),
        };
        let line = r.to_json_line();
        let parsed = parse(&line).unwrap();
        assert_eq!(parsed.as_obj().unwrap()["op"].as_str().unwrap(), "weird\"op\\name");
        assert_eq!(parsed.as_obj().unwrap()["backend"].as_str().unwrap(), "avx2");
    }

    fn srec(shards: usize, concurrency: usize, p99: f64) -> ServeRecord {
        ServeRecord {
            bench: "tcp_closed_loop".into(),
            shards,
            concurrency,
            scale: "smoke".into(),
            throughput_rps: 1000.0,
            p50_us: 250.0,
            p99_us: p99,
            shed_rate: 0.0,
        }
    }

    #[test]
    fn serve_records_round_trip_and_merge_on_key() {
        let p = temp_path("serve");
        write_serve_records(&p, &[srec(1, 4, 900.0), srec(2, 4, 500.0)]).unwrap();
        write_serve_records(&p, &[srec(2, 4, 450.0), srec(4, 8, 300.0)]).unwrap();
        let back = read_serve_records(&p);
        assert_eq!(back.len(), 3);
        assert_eq!(back.iter().find(|r| r.shards == 2).unwrap().p99_us, 450.0);
        assert_eq!(back.iter().find(|r| r.shards == 1).unwrap().p99_us, 900.0);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_us(&ns, 0.50), 50.0);
        assert_eq!(percentile_us(&ns, 0.99), 99.0);
        assert_eq!(percentile_us(&ns, 1.0), 100.0);
        assert_eq!(percentile_us(&[5_000], 0.99), 5.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }

    #[test]
    fn rows_without_backend_field_read_back_as_unspecified() {
        let p = temp_path("compat");
        std::fs::write(
            &p,
            "[\n  {\"op\":\"a\",\"shape\":\"s\",\"median_ns\":1.0,\"threads\":1,\"scale\":\"full\"}\n]\n",
        )
        .unwrap();
        let back = read_records(&p);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].backend, "unspecified");
        std::fs::remove_file(&p).unwrap();
    }
}
