//! TSV/report helpers shared by the experiment binaries.

/// Prints a TSV header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Formats a float for tables (2 decimals, paper style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Prints one TSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Prints a section banner to separate logical blocks in the output.
pub fn banner(title: &str) {
    println!("\n# {title}");
}

/// A labeled point for [`render_scatter`].
#[derive(Debug, Clone, Copy)]
pub struct ScatterPoint {
    /// Horizontal value (e.g. model size in KB).
    pub x: f64,
    /// Vertical value (e.g. accuracy).
    pub y: f64,
    /// Single-character series marker.
    pub marker: char,
}

/// Renders points as an ASCII scatter plot (the experiment binaries' stand-in
/// for the paper's accuracy-vs-size figures). The y axis grows upward; later
/// points overwrite earlier ones on collisions.
pub fn render_scatter(points: &[ScatterPoint], width: usize, height: usize) -> String {
    if points.is_empty() || width < 2 || height < 2 {
        return String::from("(no points)\n");
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        x_lo = x_lo.min(p.x);
        x_hi = x_hi.max(p.x);
        y_lo = y_lo.min(p.y);
        y_hi = y_hi.max(p.y);
    }
    if x_hi <= x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi <= y_lo {
        y_hi = y_lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for p in points {
        let cx = ((p.x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
        let cy = ((p.y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = p.marker;
    }
    let mut out = String::new();
    out.push_str(&format!("y: {y_lo:.3} .. {y_hi:.3} (up)\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!("x: {x_lo:.1} .. {x_hi:.1}\n"));
    out
}

/// Summary statistics of a sample (for the Figure 18(b) box plots).
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes box-plot statistics; returns `None` for an empty sample.
pub fn box_stats(values: &[f64]) -> Option<BoxStats> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (v[hi] - v[lo]) * (pos - lo as f64)
        }
    };
    Some(BoxStats { min: v[0], q1: q(0.25), median: q(0.5), q3: q(0.75), max: v[v.len() - 1] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f2(0.456), "0.46");
        assert_eq!(f3(0.4567), "0.457");
    }

    #[test]
    fn box_stats_of_known_sample() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert!(box_stats(&[]).is_none());
    }

    #[test]
    fn scatter_places_extremes_at_corners() {
        let pts = vec![
            ScatterPoint { x: 0.0, y: 0.0, marker: 'a' },
            ScatterPoint { x: 10.0, y: 1.0, marker: 'b' },
        ];
        let s = render_scatter(&pts, 20, 5);
        let rows: Vec<&str> = s.lines().collect();
        // first grid row (top) holds the max-y point at the right edge
        assert!(rows[1].ends_with('b'), "{s}");
        // last grid row holds the min point at the left edge
        assert!(rows[5].starts_with("|a"), "{s}");
        assert!(s.contains("x: 0.0 .. 10.0"));
    }

    #[test]
    fn scatter_handles_degenerate_input() {
        assert_eq!(render_scatter(&[], 10, 5), "(no points)\n");
        let one = vec![ScatterPoint { x: 3.0, y: 0.5, marker: '*' }];
        let s = render_scatter(&one, 10, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn box_stats_interpolates() {
        let s = box_stats(&[0.0, 1.0]).unwrap();
        assert_eq!(s.median, 0.5);
        assert_eq!(s.q1, 0.25);
    }
}
