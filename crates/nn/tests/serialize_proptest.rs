//! Property tests for the packed store format: round-trips over random
//! `ParamStore` shapes, and hostile inputs (truncation, bit flips) that
//! must fail with `Err`, never panic or abort.

use lightts_nn::serialize::{deserialize_store, serialize_store, serialized_size};
use lightts_nn::ParamStore;
use lightts_tensor::quant::fake_quantize;
use lightts_tensor::Tensor;
use proptest::prelude::*;

/// Max extent per dimension / tensors per store used by the strategies
/// (the vendored proptest has no dependent strategies, so data is drawn at
/// the maximum size and sliced down).
const MAX_D: usize = 5;
const MAX_TENSORS: usize = 4;
const MAX_ELEMS: usize = MAX_D * MAX_D * MAX_D;

fn build_store(
    n: usize,
    ranks: &[usize],
    dims: &[(usize, usize, usize)],
    bits: &[u8],
    data: &[f32],
) -> ParamStore {
    let mut store = ParamStore::new();
    for i in 0..n {
        let (d1, d2, d3) = dims[i];
        let shape: Vec<usize> = match ranks[i] {
            1 => vec![d1],
            2 => vec![d1, d2],
            _ => vec![d1, d2, d3],
        };
        let len: usize = shape.iter().product();
        let values = data[i * MAX_ELEMS..i * MAX_ELEMS + len].to_vec();
        store.register(format!("p{i}"), Tensor::from_vec(values, &shape).unwrap(), bits[i]);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_over_random_store_shapes(
        n in 1usize..MAX_TENSORS + 1,
        ranks in proptest::collection::vec(1usize..4, MAX_TENSORS),
        dims in proptest::collection::vec(
            (1usize..MAX_D + 1, 1usize..MAX_D + 1, 1usize..MAX_D + 1), MAX_TENSORS),
        bits in proptest::collection::vec(
            proptest::sample::select(vec![1u8, 2, 3, 4, 7, 8, 12, 16, 32]), MAX_TENSORS),
        data in proptest::collection::vec(-3.0f32..3.0, MAX_TENSORS * MAX_ELEMS),
    ) {
        let store = build_store(n, &ranks, &dims, &bits, &data);
        let bytes = serialize_store(&store).unwrap();
        prop_assert_eq!(bytes.len(), serialized_size(&store));

        let loaded = deserialize_store(&bytes).unwrap();
        prop_assert_eq!(loaded.len(), store.len());
        for ((_, a), (_, b)) in store.iter().zip(loaded.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.bits, b.bits);
            prop_assert_eq!(a.value.dims(), b.value.dims());
            // loaded values are the dequantized originals
            let expect = fake_quantize(&a.value, a.bits).unwrap();
            for (x, y) in expect.data().iter().zip(b.value.data().iter()) {
                prop_assert!((x - y).abs() < 1e-5, "{}: {} vs {}", a.name, x, y);
            }
        }

        // quantization is stable: serialize ∘ deserialize is the identity
        // on the wire format
        let again = serialize_store(&loaded).unwrap();
        prop_assert_eq!(bytes, again);
    }

    #[test]
    fn truncation_always_errs_never_panics(
        n in 1usize..MAX_TENSORS + 1,
        ranks in proptest::collection::vec(1usize..4, MAX_TENSORS),
        dims in proptest::collection::vec(
            (1usize..MAX_D + 1, 1usize..MAX_D + 1, 1usize..MAX_D + 1), MAX_TENSORS),
        bits in proptest::collection::vec(
            proptest::sample::select(vec![1u8, 4, 8, 32]), MAX_TENSORS),
        data in proptest::collection::vec(-3.0f32..3.0, MAX_TENSORS * MAX_ELEMS),
    ) {
        let store = build_store(n, &ranks, &dims, &bits, &data);
        let bytes = serialize_store(&store).unwrap();
        // every proper prefix must be rejected cleanly
        for cut in 0..bytes.len() {
            prop_assert!(
                deserialize_store(&bytes[..cut]).is_err(),
                "prefix of {} bytes (of {}) was accepted", cut, bytes.len()
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(
        n in 1usize..MAX_TENSORS + 1,
        ranks in proptest::collection::vec(1usize..4, MAX_TENSORS),
        dims in proptest::collection::vec(
            (1usize..MAX_D + 1, 1usize..MAX_D + 1, 1usize..MAX_D + 1), MAX_TENSORS),
        bits in proptest::collection::vec(
            proptest::sample::select(vec![1u8, 4, 8, 32]), MAX_TENSORS),
        data in proptest::collection::vec(-3.0f32..3.0, MAX_TENSORS * MAX_ELEMS),
        flips in proptest::collection::vec((0usize..1 << 16, 0usize..256), 8),
    ) {
        let store = build_store(n, &ranks, &dims, &bits, &data);
        let base = serialize_store(&store).unwrap();
        // single- and multi-byte corruption: decoding may succeed (payload
        // bytes are data) or fail, but must never panic / overflow / OOM
        let mut corrupted = base.to_vec();
        for &(pos, val) in &flips {
            corrupted[pos % base.len()] = val as u8;
            let _ = deserialize_store(&corrupted);
        }
        // all-0xFF dims/lengths: the classic overflow-then-allocate attack
        let mut hostile = base.to_vec();
        for b in hostile.iter_mut().skip(6) {
            *b = 0xFF;
        }
        prop_assert!(deserialize_store(&hostile).is_err());
    }
}
