//! Optimizers: stochastic gradient descent (with momentum) and Adam.
//!
//! The paper trains teacher ensembles with Adam and distills students with
//! SGD (Section 4.1.5); both are provided. Optimizers mutate the
//! full-precision shadow parameters in a [`ParamStore`]; quantization is
//! re-applied on the next forward bind (standard QAT).

use crate::{ParamRef, ParamStore, Result};
use lightts_tensor::Tensor;
use std::collections::HashMap;

/// A gradient-descent parameter updater.
pub trait Optimizer {
    /// Applies one update step given `(parameter, gradient)` pairs.
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamRef, Tensor)]) -> Result<()>;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// SGD with classical momentum: `v ← μv + g`, `θ ← θ − lr·v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer. `momentum = 0` gives plain SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: HashMap::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamRef, Tensor)]) -> Result<()> {
        for (r, g) in grads {
            let update = if self.momentum > 0.0 {
                let v = self.velocity.entry(r.index()).or_insert_with(|| Tensor::zeros(g.dims()));
                *v = v.scale(self.momentum).add(g)?;
                v.clone()
            } else {
                g.clone()
            };
            let p = store.get_mut(*r)?;
            p.value.axpy(&update, -self.lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam with bias correction (Kingma & Ba).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamRef, Tensor)]) -> Result<()> {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (r, g) in grads {
            let m = self.m.entry(r.index()).or_insert_with(|| Tensor::zeros(g.dims()));
            let v = self.v.entry(r.index()).or_insert_with(|| Tensor::zeros(g.dims()));
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1))?;
            *v = v.scale(self.beta2).add(&g.mul(g)?.scale(1.0 - self.beta2))?;
            let p = store.get_mut(*r)?;
            let (lr, eps) = (self.lr, self.eps);
            let update = m.zip_map(v, |mi, vi| {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                m_hat / (v_hat.sqrt() + eps)
            })?;
            p.value.axpy(&update, -lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;
    use lightts_tensor::tape::Tape;
    use lightts_tensor::Tensor;

    /// Minimizes f(θ) = ‖θ − c‖² with the given optimizer; returns final θ.
    fn run_quadratic<O: Optimizer>(opt: &mut O, steps: usize) -> Tensor {
        let mut rng = seeded(11);
        let mut store = ParamStore::new();
        let target = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap();
        let theta = store.register("theta", Tensor::randn(&mut rng, &[3], 1.0), 32);
        for _ in 0..steps {
            let mut tape = Tape::new();
            let mut bind = crate::Bindings::new();
            let tv = bind.bind(&mut tape, &store, theta).unwrap();
            let loss = tape.mse_to_target(tv, &target).unwrap();
            let grads = tape.backward(loss).unwrap();
            opt.step(&mut store, &bind.collect_grads(grads)).unwrap();
        }
        store.get(theta).unwrap().value.clone()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.5, 0.0);
        let theta = run_quadratic(&mut opt, 200);
        assert!((theta.data()[0] - 1.0).abs() < 1e-2);
        assert!((theta.data()[1] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.2, 0.9);
        let theta = run_quadratic(&mut opt, 300);
        assert!((theta.data()[2] - 0.5).abs() < 5e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let theta = run_quadratic(&mut opt, 300);
        assert!((theta.data()[0] - 1.0).abs() < 2e-2);
        assert!((theta.data()[1] + 2.0).abs() < 2e-2);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn step_with_no_grads_is_noop() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::ones(&[2]), 32);
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &[]).unwrap();
    }
}
