//! Optimizers: stochastic gradient descent (with momentum) and Adam.
//!
//! The paper trains teacher ensembles with Adam and distills students with
//! SGD (Section 4.1.5); both are provided. Optimizers mutate the
//! full-precision shadow parameters in a [`ParamStore`]; quantization is
//! re-applied on the next forward bind (standard QAT).

use crate::{NnError, ParamRef, ParamStore, Result};
use bytes::{Buf, BufMut, BytesMut};
use lightts_tensor::Tensor;
use std::collections::HashMap;

/// A gradient-descent parameter updater.
pub trait Optimizer {
    /// Applies one update step given `(parameter, gradient)` pairs.
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamRef, Tensor)]) -> Result<()>;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Serializes the optimizer's mutable state (momentum / moment
    /// accumulators, step count) for checkpointing.
    ///
    /// Restoring via [`load_state_bytes`](Self::load_state_bytes) into an
    /// optimizer constructed with the same hyperparameters reproduces the
    /// exact update sequence — part of the bit-identical resume contract
    /// (skipping it would silently reset momentum to zero, which *looks*
    /// like a successful resume but diverges from the uninterrupted run).
    fn state_bytes(&self) -> Vec<u8>;

    /// Restores state captured by [`state_bytes`](Self::state_bytes).
    fn load_state_bytes(&mut self, bytes: &[u8]) -> Result<()>;
}

fn bad(what: impl Into<String>) -> NnError {
    NnError::BadConfig { what: what.into() }
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u8(t.rank() as u8);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

fn get_tensor(buf: &mut &[u8]) -> Result<Tensor> {
    if buf.remaining() < 1 {
        return Err(bad("optimizer state truncated"));
    }
    let rank = buf.get_u8() as usize;
    if buf.remaining() < rank * 4 {
        return Err(bad("optimizer state truncated"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u32_le() as usize);
    }
    let mut len: usize = 1;
    for &d in &dims {
        len = len
            .checked_mul(d)
            .filter(|&l| l <= 64 * 1024 * 1024)
            .ok_or_else(|| bad("implausibly large optimizer state tensor"))?;
    }
    if buf.remaining() < len * 4 {
        return Err(bad("optimizer state truncated"));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(data, &dims)?)
}

/// Serializes a `param index → tensor` slot map, sorted by index so the
/// bytes are deterministic regardless of `HashMap` iteration order.
fn put_slot_map(buf: &mut BytesMut, map: &HashMap<usize, Tensor>) {
    let mut keys: Vec<usize> = map.keys().copied().collect();
    keys.sort_unstable();
    buf.put_u32_le(keys.len() as u32);
    for k in keys {
        buf.put_u64_le(k as u64);
        put_tensor(buf, &map[&k]);
    }
}

fn get_slot_map(buf: &mut &[u8]) -> Result<HashMap<usize, Tensor>> {
    if buf.remaining() < 4 {
        return Err(bad("optimizer state truncated"));
    }
    let count = buf.get_u32_le() as usize;
    let mut map = HashMap::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(bad("optimizer state truncated"));
        }
        let k = buf.get_u64_le() as usize;
        map.insert(k, get_tensor(buf)?);
    }
    Ok(map)
}

/// SGD with classical momentum: `v ← μv + g`, `θ ← θ − lr·v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer. `momentum = 0` gives plain SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: HashMap::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamRef, Tensor)]) -> Result<()> {
        for (r, g) in grads {
            let update = if self.momentum > 0.0 {
                let v = self.velocity.entry(r.index()).or_insert_with(|| Tensor::zeros(g.dims()));
                *v = v.scale(self.momentum).add(g)?;
                v.clone()
            } else {
                g.clone()
            };
            let p = store.get_mut(*r)?;
            p.value.axpy(&update, -self.lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(b"SGDM");
        put_slot_map(&mut buf, &self.velocity);
        buf.to_vec()
    }

    fn load_state_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let mut buf = bytes;
        if buf.remaining() < 4 || &buf[..4] != b"SGDM" {
            return Err(bad("not an SGD optimizer state"));
        }
        buf.advance(4);
        self.velocity = get_slot_map(&mut buf)?;
        if buf.has_remaining() {
            return Err(bad("trailing bytes in SGD optimizer state"));
        }
        Ok(())
    }
}

/// Adam with bias correction (Kingma & Ba).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamRef, Tensor)]) -> Result<()> {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (r, g) in grads {
            let m = self.m.entry(r.index()).or_insert_with(|| Tensor::zeros(g.dims()));
            let v = self.v.entry(r.index()).or_insert_with(|| Tensor::zeros(g.dims()));
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1))?;
            *v = v.scale(self.beta2).add(&g.mul(g)?.scale(1.0 - self.beta2))?;
            let p = store.get_mut(*r)?;
            let (lr, eps) = (self.lr, self.eps);
            let update = m.zip_map(v, |mi, vi| {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                m_hat / (v_hat.sqrt() + eps)
            })?;
            p.value.axpy(&update, -lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(b"ADAM");
        buf.put_u64_le(self.t);
        put_slot_map(&mut buf, &self.m);
        put_slot_map(&mut buf, &self.v);
        buf.to_vec()
    }

    fn load_state_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let mut buf = bytes;
        if buf.remaining() < 12 || &buf[..4] != b"ADAM" {
            return Err(bad("not an Adam optimizer state"));
        }
        buf.advance(4);
        self.t = buf.get_u64_le();
        self.m = get_slot_map(&mut buf)?;
        self.v = get_slot_map(&mut buf)?;
        if buf.has_remaining() {
            return Err(bad("trailing bytes in Adam optimizer state"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;
    use lightts_tensor::tape::Tape;
    use lightts_tensor::Tensor;

    /// Minimizes f(θ) = ‖θ − c‖² with the given optimizer; returns final θ.
    fn run_quadratic<O: Optimizer>(opt: &mut O, steps: usize) -> Tensor {
        let mut rng = seeded(11);
        let mut store = ParamStore::new();
        let target = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap();
        let theta = store.register("theta", Tensor::randn(&mut rng, &[3], 1.0), 32);
        for _ in 0..steps {
            let mut tape = Tape::new();
            let mut bind = crate::Bindings::new();
            let tv = bind.bind(&mut tape, &store, theta).unwrap();
            let loss = tape.mse_to_target(tv, &target).unwrap();
            let grads = tape.backward(loss).unwrap();
            opt.step(&mut store, &bind.collect_grads(grads)).unwrap();
        }
        store.get(theta).unwrap().value.clone()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.5, 0.0);
        let theta = run_quadratic(&mut opt, 200);
        assert!((theta.data()[0] - 1.0).abs() < 1e-2);
        assert!((theta.data()[1] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.2, 0.9);
        let theta = run_quadratic(&mut opt, 300);
        assert!((theta.data()[2] - 0.5).abs() < 5e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let theta = run_quadratic(&mut opt, 300);
        assert!((theta.data()[0] - 1.0).abs() < 2e-2);
        assert!((theta.data()[1] + 2.0).abs() < 2e-2);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    /// Runs `total` optimizer steps; at `split`, serializes the optimizer
    /// state into a freshly constructed optimizer and continues with it.
    /// The final parameters must be bit-identical to the uninterrupted run.
    fn split_resume_matches<O: Optimizer>(mk: impl Fn() -> O, total: usize, split: usize) {
        let run = |resume_at: Option<usize>| -> Vec<u32> {
            let mut rng = seeded(17);
            let mut store = ParamStore::new();
            let target = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap();
            let theta = store.register("theta", Tensor::randn(&mut rng, &[3], 1.0), 32);
            let mut opt = mk();
            for step in 0..total {
                if resume_at == Some(step) {
                    let state = opt.state_bytes();
                    let mut fresh = mk();
                    fresh.load_state_bytes(&state).unwrap();
                    opt = fresh;
                }
                let mut tape = Tape::new();
                let mut bind = crate::Bindings::new();
                let tv = bind.bind(&mut tape, &store, theta).unwrap();
                let loss = tape.mse_to_target(tv, &target).unwrap();
                let grads = tape.backward(loss).unwrap();
                opt.step(&mut store, &bind.collect_grads(grads)).unwrap();
            }
            store.get(theta).unwrap().value.data().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(run(None), run(Some(split)));
    }

    #[test]
    fn sgd_state_roundtrip_is_bit_identical() {
        split_resume_matches(|| Sgd::new(0.2, 0.9), 20, 7);
    }

    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        split_resume_matches(|| Adam::new(0.1), 20, 7);
    }

    #[test]
    fn optimizer_states_reject_corruption_and_wrong_kind() {
        let sgd = Sgd::new(0.1, 0.9);
        let adam = Adam::new(0.1);
        assert!(Sgd::new(0.1, 0.9).load_state_bytes(&adam.state_bytes()).is_err());
        assert!(Adam::new(0.1).load_state_bytes(&sgd.state_bytes()).is_err());
        let bytes = adam.state_bytes();
        assert!(Adam::new(0.1).load_state_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes;
        extra.push(0);
        assert!(Adam::new(0.1).load_state_bytes(&extra).is_err());
    }

    #[test]
    fn step_with_no_grads_is_noop() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::ones(&[2]), 32);
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &[]).unwrap();
    }
}
