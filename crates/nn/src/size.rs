//! Model-size accounting helpers.
//!
//! LightTS treats model size as a first-class objective: the Pareto frontier
//! (paper Section 3.3.2) trades accuracy against "the total bits" of the
//! parameters. [`ParamStore::size_bits`](crate::ParamStore::size_bits)
//! computes the size of an *instantiated* model; this module adds the
//! analytic formulas the search space uses to cost a student *setting
//! without building it*, plus unit conversions for reporting.

/// Bits in one kilobyte, for reporting sizes the way the paper's figures do
/// (e.g. "Model U … 100K").
pub const BITS_PER_KB: u64 = 8 * 1024;

/// Converts a size in bits to kilobytes (binary).
pub fn bits_to_kb(bits: u64) -> f64 {
    bits as f64 / BITS_PER_KB as f64
}

/// Parameter count of a "same"-padded [`Conv1d`](crate::layers::Conv1d):
/// `out·in·kernel` weights plus `out` biases.
pub fn conv1d_params(in_channels: usize, out_channels: usize, kernel: usize) -> usize {
    out_channels * in_channels * kernel + out_channels
}

/// Parameter count of a [`Linear`](crate::layers::Linear) layer.
pub fn linear_params(in_features: usize, out_features: usize) -> usize {
    in_features * out_features + out_features
}

/// Parameter count of a [`BatchNorm1d`](crate::layers::BatchNorm1d) layer
/// (γ and β).
pub fn batchnorm_params(channels: usize) -> usize {
    2 * channels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm1d, Conv1d, Linear};
    use crate::ParamStore;
    use lightts_tensor::rng::seeded;

    #[test]
    fn analytic_counts_match_instantiated_layers() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, &mut rng, "c", 3, 8, 5, 8).unwrap();
        let lin = Linear::new(&mut store, &mut rng, 8, 4, 16).unwrap();
        let bn = BatchNorm1d::new(&mut store, "bn", 8).unwrap();

        assert_eq!(conv.num_params(), conv1d_params(3, 8, 5));
        assert_eq!(lin.num_params(), linear_params(8, 4));
        assert_eq!(bn.num_params(), batchnorm_params(8));

        let expected_bits = conv1d_params(3, 8, 5) as u64 * 8
            + linear_params(8, 4) as u64 * 16
            + batchnorm_params(8) as u64 * 32;
        assert_eq!(store.size_bits(), expected_bits);
    }

    #[test]
    fn kb_conversion() {
        assert!((bits_to_kb(BITS_PER_KB) - 1.0).abs() < 1e-12);
        assert!((bits_to_kb(BITS_PER_KB * 100) - 100.0).abs() < 1e-9);
    }
}
