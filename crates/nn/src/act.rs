//! Stateless activation functions over tape variables.
//!
//! Layers in this crate historically called `tape.relu` directly; this
//! module gives the activation family one named surface so model builders
//! can select an activation by value (e.g. from a search-space config)
//! without touching the tape API. All three functions record a single tape
//! op whose forward pass runs on the runtime-dispatched SIMD kernels in
//! [`lightts_tensor::simd`]:
//!
//! * [`Activation::Relu`] → `max(x, 0)` via the `relu` kernel;
//! * [`Activation::Sigmoid`] → `1 / (1 + e^{−x})` via `vec_sigmoid`;
//! * [`Activation::Tanh`] → `tanh(x)` via `vec_tanh`.
//!
//! The transcendental kernels are polynomial approximations that are
//! bitwise identical across SIMD backends (scalar / SSE2 / AVX2) and
//! accurate to within a few ULP of the correctly rounded result — the
//! exact bounds are stated in `docs/NUMERICS.md`. Backward rules reuse the
//! forward output: `σ′ = y(1−y)`, `tanh′ = 1−y²`.

use crate::Result;
use lightts_tensor::tape::{Tape, Var};

/// A stateless element-wise activation, selectable by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, `max(x, 0)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^{−x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Stable lower-case name (`"relu"` / `"sigmoid"` / `"tanh"`).
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }

    /// Applies the activation to `x`, recording one op on `tape`.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Result<Var> {
        let y = match self {
            Activation::Relu => tape.relu(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Tanh => tape.tanh(x),
        };
        Ok(y?)
    }
}

/// [`Activation::Relu`] applied to `x` (shorthand for
/// [`Activation::apply`]).
pub fn relu(tape: &mut Tape, x: Var) -> Result<Var> {
    Activation::Relu.apply(tape, x)
}

/// [`Activation::Sigmoid`] applied to `x`.
pub fn sigmoid(tape: &mut Tape, x: Var) -> Result<Var> {
    Activation::Sigmoid.apply(tape, x)
}

/// [`Activation::Tanh`] applied to `x`.
pub fn tanh(tape: &mut Tape, x: Var) -> Result<Var> {
    Activation::Tanh.apply(tape, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::Tensor;

    fn grad_of(act: Activation, x0: f32) -> (f32, f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![x0], &[1]).unwrap(), true);
        let y = act.apply(&mut tape, x).unwrap();
        let s = tape.sum(y).unwrap();
        let fx = tape.value(y).unwrap().data()[0];
        let grads = tape.backward(s).unwrap();
        (fx, grads.get(x).unwrap().data()[0])
    }

    #[test]
    fn activations_match_reference_values() {
        let (y, _) = grad_of(Activation::Relu, -2.0);
        assert_eq!(y, 0.0);
        let (y, _) = grad_of(Activation::Sigmoid, 0.0);
        assert_eq!(y, 0.5);
        let (y, _) = grad_of(Activation::Tanh, 0.0);
        assert_eq!(y, 0.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
            for &x0 in &[-1.5_f32, -0.25, 0.4, 2.0] {
                let (_, g) = grad_of(act, x0);
                let h = 1e-3_f32;
                let (fp, _) = grad_of(act, x0 + h);
                let (fm, _) = grad_of(act, x0 - h);
                let fd = (fp - fm) / (2.0 * h);
                assert!((g - fd).abs() < 5e-3, "{}({x0}): analytic {g} vs fd {fd}", act.name());
            }
        }
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(Activation::Relu.name(), "relu");
        assert_eq!(Activation::Sigmoid.name(), "sigmoid");
        assert_eq!(Activation::Tanh.name(), "tanh");
    }
}
