//! Parameter storage and tape bindings.

use crate::{NnError, Result};
use lightts_tensor::tape::{Grads, Tape, Var};
use lightts_tensor::Tensor;

/// A handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamRef(pub(crate) usize);

impl ParamRef {
    /// The raw index of the parameter in its store.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A named, trainable tensor plus its storage bit-width.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current full-precision ("shadow") value.
    pub value: Tensor,
    /// Human-readable name for diagnostics (`"block0.conv1.weight"`).
    pub name: String,
    /// Bit-width this parameter is *stored* at on the target device
    /// (32 = full precision). Affects model-size accounting and the
    /// fake-quantization applied when binding to a tape.
    pub bits: u8,
}

/// Flat storage for all parameters of a model.
///
/// Layers allocate parameters at construction time and keep [`ParamRef`]s;
/// optimizers mutate the store through those refs after each backward pass.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor, bits: u8) -> ParamRef {
        self.params.push(Param { value, name: name.into(), bits });
        ParamRef(self.params.len() - 1)
    }

    /// Read access to a parameter.
    pub fn get(&self, r: ParamRef) -> Result<&Param> {
        self.params.get(r.0).ok_or(NnError::InvalidParam { index: r.0, len: self.params.len() })
    }

    /// Write access to a parameter.
    pub fn get_mut(&mut self, r: ParamRef) -> Result<&mut Param> {
        let len = self.params.len();
        self.params.get_mut(r.0).ok_or(NnError::InvalidParam { index: r.0, len })
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamRef, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamRef(i), p))
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Model size in bits: `Σ len(param) × bits(param)`.
    ///
    /// This is the paper's model-size metric ("counting the total bits",
    /// Section 3.3.2).
    pub fn size_bits(&self) -> u64 {
        self.params.iter().map(|p| p.value.len() as u64 * u64::from(p.bits)).sum()
    }

    /// Model size in bytes (rounded up).
    pub fn size_bytes(&self) -> u64 {
        self.size_bits().div_ceil(8)
    }
}

/// Records which tape variables correspond to which store parameters during
/// one forward pass.
#[derive(Debug, Default)]
pub struct Bindings {
    entries: Vec<(Var, ParamRef)>,
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds parameter `r` onto `tape` as a trainable leaf; if the parameter
    /// is stored quantized (bits < 32), wraps it in a fake-quantization node
    /// so the forward pass sees quantized weights while gradients flow
    /// straight through to the full-precision shadow (QAT).
    ///
    /// Returns the tape variable to use in the layer's computation.
    pub fn bind(&mut self, tape: &mut Tape, store: &ParamStore, r: ParamRef) -> Result<Var> {
        let p = store.get(r)?;
        let leaf = tape.leaf(p.value.clone(), true);
        self.entries.push((leaf, r));
        if p.bits < 32 {
            Ok(tape.fake_quant(leaf, p.bits)?)
        } else {
            Ok(leaf)
        }
    }

    /// Clears all bindings while retaining the backing allocation, the
    /// [`Bindings`] counterpart of [`Tape::reset`]: a training loop that
    /// reuses one tape across mini-batches resets both between steps so the
    /// steady state records without heap traffic. Stale entries must never
    /// survive a reset — their [`Var`]s index into the *previous* recording.
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Extracts `(param, gradient)` pairs after a backward pass.
    ///
    /// Parameters that did not receive a gradient (e.g. not an ancestor of
    /// the loss) are silently skipped — this is correct for optimizers since
    /// a missing gradient is a zero gradient.
    pub fn collect_grads(&self, mut grads: Grads) -> Vec<(ParamRef, Tensor)> {
        self.entries.iter().filter_map(|&(var, r)| grads.take(var).map(|g| (r, g))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    #[test]
    fn register_and_access() {
        let mut store = ParamStore::new();
        let r = store.register("w", Tensor::ones(&[2, 3]), 8);
        assert_eq!(store.get(r).unwrap().name, "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 6);
    }

    #[test]
    fn size_accounting_respects_bits() {
        let mut store = ParamStore::new();
        store.register("a", Tensor::ones(&[10]), 4);
        store.register("b", Tensor::ones(&[10]), 32);
        assert_eq!(store.size_bits(), 10 * 4 + 10 * 32);
        assert_eq!(store.size_bytes(), 45);
    }

    #[test]
    fn invalid_ref_is_error() {
        let store = ParamStore::new();
        assert!(store.get(ParamRef(0)).is_err());
    }

    #[test]
    fn bind_applies_fake_quant_only_below_32_bits() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let w32 = store.register("w32", Tensor::randn(&mut rng, &[8], 1.0), 32);
        let w4 = store.register("w4", Tensor::randn(&mut rng, &[8], 1.0), 4);

        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let v32 = bind.bind(&mut tape, &store, w32).unwrap();
        let v4 = bind.bind(&mut tape, &store, w4).unwrap();

        // 32-bit: tape value identical to stored value
        assert_eq!(tape.value(v32).unwrap(), &store.get(w32).unwrap().value);
        // 4-bit: tape value is quantized (generally different)
        let quantized = tape.value(v4).unwrap();
        assert_ne!(quantized, &store.get(w4).unwrap().value);
        assert_eq!(bind.len(), 2);
    }

    #[test]
    fn collect_grads_skips_unused_params() {
        let mut store = ParamStore::new();
        let used = store.register("used", Tensor::ones(&[3]), 32);
        let unused = store.register("unused", Tensor::ones(&[3]), 32);

        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let uv = bind.bind(&mut tape, &store, used).unwrap();
        let _nv = bind.bind(&mut tape, &store, unused).unwrap();
        let loss = tape.sum(uv).unwrap();
        let grads = tape.backward(loss).unwrap();
        let collected = bind.collect_grads(grads);
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].0, used);
        assert_eq!(collected[0].1.data(), &[1.0, 1.0, 1.0]);
    }
}
