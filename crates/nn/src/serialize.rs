//! Packed serialization of quantized parameter stores.
//!
//! The LightTS size metric (`Σ params × bits`) is only honest if a deployed
//! model can actually be *stored* at that size. This module provides that:
//! each parameter tensor is encoded with its fitted uniform quantizer
//! ([`QuantParams`]) and its integer codes bit-packed back-to-back, so a
//! 4-bit layer really occupies 4 bits per weight on the wire (plus a small
//! fixed header per tensor). Deserialization reproduces exactly the
//! dequantized values the quantized forward pass uses — a loaded model is
//! bit-identical to the trained one in `eval` mode.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LTTS" | version u16 | tensor count u32
//! per tensor:
//!   name len u16 | name bytes | bits u8 | rank u8 | dims u32×rank
//!   zero_point f32 | step f32 | packed codes ⌈len·bits/8⌉ bytes
//! ```

use crate::{NnError, Param, ParamStore, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lightts_tensor::quant::QuantParams;
use lightts_tensor::Tensor;

/// File magic for packed LightTS models.
pub const MAGIC: &[u8; 4] = b"LTTS";
/// Current format version.
pub const VERSION: u16 = 1;

fn bad(what: impl Into<String>) -> NnError {
    NnError::BadConfig { what: what.into() }
}

/// A bit-level writer packing integer codes of a fixed width.
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new(capacity_bits: usize) -> Self {
        BitWriter { out: Vec::with_capacity(capacity_bits.div_ceil(8)), acc: 0, nbits: 0 }
    }

    fn push(&mut self, code: u32, bits: u8) {
        self.acc |= u64::from(code) << self.nbits;
        self.nbits += u32::from(bits);
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

/// A bit-level reader matching [`BitWriter`].
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    fn pull(&mut self, bits: u8) -> Result<u32> {
        while self.nbits < u32::from(bits) {
            let byte = *self.data.get(self.pos).ok_or_else(|| bad("packed stream truncated"))?;
            self.acc |= u64::from(byte) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let mask = if bits >= 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let code = (self.acc as u32) & mask;
        self.acc >>= bits;
        self.nbits -= u32::from(bits);
        Ok(code)
    }
}

/// Serializes a parameter store into the packed format.
///
/// Parameters with `bits = 32` are stored as raw `f32`; everything else is
/// quantized with a per-tensor uniform quantizer and bit-packed.
pub fn serialize_store(store: &ParamStore) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(store.len() as u32);
    for (_, p) in store.iter() {
        write_param(&mut buf, p)?;
    }
    Ok(buf.freeze())
}

fn write_param(buf: &mut BytesMut, p: &Param) -> Result<()> {
    let name = p.name.as_bytes();
    if name.len() > u16::MAX as usize {
        return Err(bad("parameter name too long"));
    }
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name);
    buf.put_u8(p.bits);
    let dims = p.value.dims();
    if dims.len() > u8::MAX as usize {
        return Err(bad("tensor rank too large"));
    }
    buf.put_u8(dims.len() as u8);
    for &d in dims {
        buf.put_u32_le(d as u32);
    }
    if p.bits >= 32 {
        buf.put_f32_le(0.0); // zero_point unused
        buf.put_f32_le(0.0); // step unused
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    } else {
        let qp = QuantParams::fit(p.value.data(), p.bits)?;
        buf.put_f32_le(qp.zero_point);
        buf.put_f32_le(qp.step);
        let mut writer = BitWriter::new(p.value.len() * p.bits as usize);
        for &v in p.value.data() {
            writer.push(qp.encode(v), p.bits);
        }
        buf.put_slice(&writer.finish());
    }
    Ok(())
}

/// Deserializes a packed model back into a parameter store.
///
/// Quantized tensors come back *dequantized* (the values the quantized
/// forward pass uses), with their bit-width preserved for size accounting.
pub fn deserialize_store(bytes: &[u8]) -> Result<ParamStore> {
    let mut buf = bytes;
    if buf.remaining() < 10 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad(format!("bad magic {magic:?}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    let count = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        read_param(&mut buf, &mut store)?;
    }
    if buf.has_remaining() {
        return Err(bad(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(store)
}

fn read_param(buf: &mut &[u8], store: &mut ParamStore) -> Result<()> {
    if buf.remaining() < 2 {
        return Err(bad("truncated parameter header"));
    }
    let name_len = buf.get_u16_le() as usize;
    if buf.remaining() < name_len + 2 {
        return Err(bad("truncated parameter name"));
    }
    let mut name_bytes = vec![0u8; name_len];
    buf.copy_to_slice(&mut name_bytes);
    let name = String::from_utf8(name_bytes).map_err(|_| bad("non-UTF8 parameter name"))?;
    let bits = buf.get_u8();
    if bits == 0 || bits > 32 {
        return Err(bad(format!("bad bit-width {bits}")));
    }
    let rank = buf.get_u8() as usize;
    if buf.remaining() < rank * 4 + 8 {
        return Err(bad("truncated dims"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u32_le() as usize);
    }
    // Checked product: untrusted dims must not overflow (debug panic) or
    // drive a huge allocation before the payload length check below.
    let mut len: usize = 1;
    for &d in &dims {
        len = len
            .checked_mul(d)
            .filter(|&l| l <= 64 * 1024 * 1024)
            .ok_or_else(|| bad("implausibly large tensor"))?;
    }
    let zero_point = buf.get_f32_le();
    let step = buf.get_f32_le();
    let value = if bits >= 32 {
        if buf.remaining() < len * 4 {
            return Err(bad("truncated f32 payload"));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(buf.get_f32_le());
        }
        Tensor::from_vec(data, &dims)?
    } else {
        let packed_len = (len * bits as usize).div_ceil(8);
        if buf.remaining() < packed_len {
            return Err(bad("truncated packed payload"));
        }
        let (packed, rest) = buf.split_at(packed_len);
        let qp = QuantParams { bits, zero_point, step };
        let mut reader = BitReader::new(packed);
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(qp.decode(reader.pull(bits)?));
        }
        *buf = rest;
        Tensor::from_vec(data, &dims)?
    };
    store.register(name, value, bits);
    Ok(())
}

/// File magic for exact (full-precision) parameter snapshots.
pub const MAGIC_EXACT: &[u8; 4] = b"LTSE";

/// Serializes a parameter store at full precision — every tensor as raw
/// `f32`, regardless of its quantization bit-width (which is preserved as
/// metadata).
///
/// This is the *checkpoint* format, not the deployment format: mid-training
/// a parameter's value is the full-precision shadow weight that the
/// quantized forward pass is a fake-quantized view of, and resuming from a
/// quantized snapshot would diverge from the uninterrupted run on the next
/// gradient step. [`serialize_store`] remains the honest-size wire format
/// for *finished* models.
pub fn serialize_store_exact(store: &ParamStore) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC_EXACT);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(store.len() as u32);
    for (_, p) in store.iter() {
        let name = p.name.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(bad("parameter name too long"));
        }
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u8(p.bits);
        let dims = p.value.dims();
        if dims.len() > u8::MAX as usize {
            return Err(bad("tensor rank too large"));
        }
        buf.put_u8(dims.len() as u8);
        for &d in dims {
            buf.put_u32_le(d as u32);
        }
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    }
    Ok(buf.freeze())
}

/// Deserializes an exact snapshot written by [`serialize_store_exact`].
///
/// Values come back bit-identical to the stored shadow weights.
pub fn deserialize_store_exact(bytes: &[u8]) -> Result<ParamStore> {
    let mut buf = bytes;
    if buf.remaining() < 10 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC_EXACT {
        return Err(bad(format!("bad exact-snapshot magic {magic:?}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    let count = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        if buf.remaining() < 2 {
            return Err(bad("truncated parameter header"));
        }
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len + 2 {
            return Err(bad("truncated parameter name"));
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| bad("non-UTF8 parameter name"))?;
        let bits = buf.get_u8();
        if bits == 0 || bits > 32 {
            return Err(bad(format!("bad bit-width {bits}")));
        }
        let rank = buf.get_u8() as usize;
        if buf.remaining() < rank * 4 {
            return Err(bad("truncated dims"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u32_le() as usize);
        }
        let mut len: usize = 1;
        for &d in &dims {
            len = len
                .checked_mul(d)
                .filter(|&l| l <= 64 * 1024 * 1024)
                .ok_or_else(|| bad("implausibly large tensor"))?;
        }
        if buf.remaining() < len * 4 {
            return Err(bad("truncated f32 payload"));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(buf.get_f32_le());
        }
        store.register(name, Tensor::from_vec(data, &dims)?, bits);
    }
    if buf.has_remaining() {
        return Err(bad(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(store)
}

/// The exact on-wire size in bytes a store serializes to.
pub fn serialized_size(store: &ParamStore) -> usize {
    let mut size = 4 + 2 + 4; // magic + version + count
    for (_, p) in store.iter() {
        size += 2 + p.name.len() + 1 + 1 + p.value.rank() * 4 + 8;
        size += if p.bits >= 32 {
            p.value.len() * 4
        } else {
            (p.value.len() * p.bits as usize).div_ceil(8)
        };
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::quant::fake_quantize;
    use lightts_tensor::rng::seeded;

    fn sample_store() -> ParamStore {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        store.register("conv.weight", Tensor::randn(&mut rng, &[4, 2, 5], 1.0), 4);
        store.register("conv.bias", Tensor::randn(&mut rng, &[4], 0.1), 8);
        store.register("bn.gamma", Tensor::ones(&[4]), 32);
        store.register("fc.weight", Tensor::randn(&mut rng, &[4, 3], 0.5), 16);
        store
    }

    #[test]
    fn roundtrip_preserves_quantized_values() {
        let store = sample_store();
        let bytes = serialize_store(&store).unwrap();
        let loaded = deserialize_store(&bytes).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, a), (_, b)) in store.iter().zip(loaded.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.bits, b.bits);
            assert_eq!(a.value.dims(), b.value.dims());
            // loaded values equal the *dequantized* originals
            let expect = fake_quantize(&a.value, a.bits).unwrap();
            for (x, y) in expect.data().iter().zip(b.value.data().iter()) {
                assert!((x - y).abs() < 1e-5, "{}: {x} vs {y}", a.name);
            }
        }
    }

    #[test]
    fn roundtrip_is_idempotent_on_loaded_models() {
        // serialize(deserialize(bytes)) == bytes: quantization is stable
        let store = sample_store();
        let b1 = serialize_store(&store).unwrap();
        let loaded = deserialize_store(&b1).unwrap();
        let b2 = serialize_store(&loaded).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn packed_size_tracks_bit_width() {
        let mut rng = seeded(2);
        let mut mk = |bits: u8| {
            let mut s = ParamStore::new();
            s.register("w", Tensor::randn(&mut rng, &[1000], 1.0), bits);
            serialize_store(&s).unwrap().len()
        };
        let s4 = mk(4);
        let s8 = mk(8);
        let s32 = mk(32);
        // payloads: 500 vs 1000 vs 4000 bytes (+ constant header)
        assert!(s8 - s4 > 400, "4-bit packing saves: {s4} vs {s8}");
        assert!(s32 - s8 > 2500);
        assert_eq!(
            serialized_size(&{
                let mut s = ParamStore::new();
                s.register("w", Tensor::zeros(&[1000]), 4);
                s
            }),
            mk(4)
        );
    }

    #[test]
    fn serialized_size_matches_actual() {
        let store = sample_store();
        let bytes = serialize_store(&store).unwrap();
        assert_eq!(bytes.len(), serialized_size(&store));
    }

    #[test]
    fn rejects_corruption() {
        let store = sample_store();
        let bytes = serialize_store(&store).unwrap().to_vec();
        // bad magic
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(deserialize_store(&bad_magic).is_err());
        // truncation at several points
        for cut in [3usize, 9, 20, bytes.len() - 1] {
            assert!(deserialize_store(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // trailing garbage
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(deserialize_store(&extra).is_err());
        // bad version
        let mut bad_ver = bytes;
        bad_ver[4] = 99;
        assert!(deserialize_store(&bad_ver).is_err());
    }

    #[test]
    fn exact_roundtrip_is_bit_identical() {
        let store = sample_store();
        let bytes = serialize_store_exact(&store).unwrap();
        let loaded = deserialize_store_exact(&bytes).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, a), (_, b)) in store.iter().zip(loaded.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.bits, b.bits, "{}: bit-width metadata must survive", a.name);
            assert_eq!(a.value.dims(), b.value.dims());
            for (x, y) in a.value.data().iter().zip(b.value.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{}: {x} vs {y}", a.name);
            }
        }
    }

    #[test]
    fn exact_and_packed_formats_reject_each_other() {
        let store = sample_store();
        let packed = serialize_store(&store).unwrap();
        let exact = serialize_store_exact(&store).unwrap();
        assert!(deserialize_store_exact(&packed).is_err());
        assert!(deserialize_store(&exact).is_err());
    }

    #[test]
    fn exact_format_rejects_corruption() {
        let store = sample_store();
        let bytes = serialize_store_exact(&store).unwrap().to_vec();
        for cut in [3usize, 9, 20, bytes.len() - 1] {
            assert!(deserialize_store_exact(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(deserialize_store_exact(&extra).is_err());
    }

    #[test]
    fn bitpacking_roundtrip_exhaustive_small() {
        for bits in [1u8, 3, 4, 5, 7, 8, 12, 16] {
            let max = if bits >= 16 { 65_535 } else { (1u32 << bits) - 1 };
            let codes: Vec<u32> =
                (0..50u64).map(|i| ((i * 2_654_435_761) % u64::from(max + 1)) as u32).collect();
            let mut w = BitWriter::new(codes.len() * bits as usize);
            for &c in &codes {
                w.push(c, bits);
            }
            let packed = w.finish();
            assert_eq!(packed.len(), (codes.len() * bits as usize).div_ceil(8));
            let mut r = BitReader::new(&packed);
            for &c in &codes {
                assert_eq!(r.pull(bits).unwrap(), c, "bits={bits}");
            }
        }
    }
}
