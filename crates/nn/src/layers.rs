//! Neural-network layers: quantizable 1-D convolution, quantizable linear,
//! and batch normalization with running statistics.
//!
//! Each layer owns [`ParamRef`]s into a [`ParamStore`] and offers two paths:
//!
//! * `forward` — records onto an autodiff [`Tape`] for training; quantized
//!   layers wrap their parameters in fake-quantization nodes (QAT).
//! * `eval_forward` — plain tensor math for inference, using running
//!   statistics for batch norm and the same fake-quantized weights, so the
//!   deployed (quantized) model is exactly what was trained.
//!
//! Both paths route convolutions through [`lightts_tensor::conv`], which
//! picks between the direct kernels and the GEMM-lowered (im2col) kernels by
//! problem size — the forward results are bitwise identical either way, so
//! layer outputs never depend on the dispatch decision. All transient
//! buffers (fake-quantized weights, activation tensors) come from the
//! thread-local [`lightts_tensor::pool`], which makes steady-state QAT
//! training steps allocation-free.

use crate::init::he_normal;
use crate::{Bindings, Mode, NnError, ParamRef, ParamStore, Result};
use lightts_tensor::conv::conv1d_forward;
use lightts_tensor::quant::fake_quantize;
use lightts_tensor::tape::{Tape, Var};
use lightts_tensor::Tensor;
use rand::Rng;

/// A "same"-padded 1-D convolution with bias and a storage bit-width.
#[derive(Debug, Clone)]
pub struct Conv1d {
    weight: ParamRef,
    bias: ParamRef,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    bits: u8,
}

impl Conv1d {
    /// Creates a convolution layer, registering its parameters in `store`.
    ///
    /// `bits` is the storage bit-width (32 = full precision), the paper's
    /// per-layer `W_j` dimension of the search space.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        bits: u8,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 {
            return Err(NnError::BadConfig {
                what: format!("Conv1d {name}: zero-sized dimension"),
            });
        }
        if bits == 0 || bits > 32 {
            return Err(NnError::BadConfig {
                what: format!("Conv1d {name}: bits must be 1..=32, got {bits}"),
            });
        }
        let fan_in = in_channels * kernel;
        let w = he_normal(rng, &[out_channels, in_channels, kernel], fan_in);
        let weight = store.register(format!("{name}.weight"), w, bits);
        let bias = store.register(format!("{name}.bias"), Tensor::zeros(&[out_channels]), bits);
        Ok(Conv1d { weight, bias, in_channels, out_channels, kernel, bits })
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel (filter) length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Storage bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of scalar parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel + self.out_channels
    }

    /// Training forward: records conv + bias onto the tape.
    pub fn forward(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        store: &ParamStore,
        x: Var,
    ) -> Result<Var> {
        let w = bind.bind(tape, store, self.weight)?;
        let b = bind.bind(tape, store, self.bias)?;
        let y = tape.conv1d(x, w)?;
        Ok(tape.add_bias(y, b)?)
    }

    /// The (fake-)quantized `(weight, bias)` pair used by `eval_forward`.
    ///
    /// Inference engines call this once at model-compile time so the
    /// per-request hot path skips re-quantizing parameters on every call.
    /// The returned tensors are bitwise identical to the ones
    /// [`eval_forward`](Self::eval_forward) computes internally.
    pub fn quantized_params(&self, store: &ParamStore) -> Result<(Tensor, Tensor)> {
        let w = fake_quantize(&store.get(self.weight)?.value, self.bits)?;
        let b = fake_quantize(&store.get(self.bias)?.value, self.bits)?;
        Ok((w, b))
    }

    /// Inference forward on plain tensors with (fake-)quantized weights.
    pub fn eval_forward(&self, store: &ParamStore, x: &Tensor) -> Result<Tensor> {
        let (w, b) = self.quantized_params(store)?;
        let y = conv1d_forward(x, &w)?;
        let (batch, c, l) = (y.dims()[0], y.dims()[1], y.dims()[2]);
        let mut out = y.into_vec();
        for bi in 0..batch {
            for ci in 0..c {
                let off = (bi * c + ci) * l;
                let bias_v = b.data()[ci];
                for v in &mut out[off..off + l] {
                    *v += bias_v;
                }
            }
        }
        Ok(Tensor::from_vec(out, &[batch, c, l])?)
    }
}

/// A fully-connected layer `y = x W + b` with a storage bit-width.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamRef,
    bias: ParamRef,
    in_features: usize,
    out_features: usize,
    bits: u8,
}

impl Linear {
    /// Creates a linear layer, registering parameters in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        in_features: usize,
        out_features: usize,
        bits: u8,
    ) -> Result<Self> {
        Self::with_name(store, rng, "linear", in_features, out_features, bits)
    }

    /// Creates a named linear layer.
    pub fn with_name<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_features: usize,
        out_features: usize,
        bits: u8,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::BadConfig {
                what: format!("Linear {name}: zero-sized dimension"),
            });
        }
        if bits == 0 || bits > 32 {
            return Err(NnError::BadConfig {
                what: format!("Linear {name}: bits must be 1..=32, got {bits}"),
            });
        }
        let w = he_normal(rng, &[in_features, out_features], in_features);
        let weight = store.register(format!("{name}.weight"), w, bits);
        let bias = store.register(format!("{name}.bias"), Tensor::zeros(&[out_features]), bits);
        Ok(Linear { weight, bias, in_features, out_features, bits })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Storage bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }

    /// Training forward: `x[b,in] @ W[in,out] + bias`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        bind: &mut Bindings,
        store: &ParamStore,
        x: Var,
    ) -> Result<Var> {
        let w = bind.bind(tape, store, self.weight)?;
        let b = bind.bind(tape, store, self.bias)?;
        let y = tape.matmul(x, w)?;
        Ok(tape.add_bias(y, b)?)
    }

    /// The (fake-)quantized `(weight, bias)` pair used by `eval_forward`.
    ///
    /// Same contract as [`Conv1d::quantized_params`]: compile-time hoisting
    /// of the per-call quantization, bitwise identical results.
    pub fn quantized_params(&self, store: &ParamStore) -> Result<(Tensor, Tensor)> {
        let w = fake_quantize(&store.get(self.weight)?.value, self.bits)?;
        let b = fake_quantize(&store.get(self.bias)?.value, self.bits)?;
        Ok((w, b))
    }

    /// Inference forward on plain tensors with (fake-)quantized weights.
    pub fn eval_forward(&self, store: &ParamStore, x: &Tensor) -> Result<Tensor> {
        let (w, b) = self.quantized_params(store)?;
        let y = x.matmul(&w)?;
        let (batch, k) = (y.dims()[0], y.dims()[1]);
        let mut out = y.into_vec();
        for bi in 0..batch {
            for ci in 0..k {
                out[bi * k + ci] += b.data()[ci];
            }
        }
        Ok(Tensor::from_vec(out, &[batch, k])?)
    }
}

/// Batch normalization over `[batch, channels, length]` with running
/// statistics for inference.
///
/// γ/β are kept at full precision (standard practice — they are a negligible
/// fraction of model size and quantizing them destabilizes training).
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: ParamRef,
    beta: ParamRef,
    channels: usize,
    eps: f32,
    momentum: f32,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `channels` channels.
    pub fn new(store: &mut ParamStore, name: &str, channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::BadConfig { what: format!("BatchNorm1d {name}: zero channels") });
        }
        let gamma = store.register(format!("{name}.gamma"), Tensor::ones(&[channels]), 32);
        let beta = store.register(format!("{name}.beta"), Tensor::zeros(&[channels]), 32);
        Ok(BatchNorm1d {
            gamma,
            beta,
            channels,
            eps: 1e-5,
            momentum: 0.1,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
        })
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of scalar parameters (γ and β).
    pub fn num_params(&self) -> usize {
        2 * self.channels
    }

    /// The running `(mean, variance)` statistics used at inference.
    pub fn running_stats(&self) -> (&[f32], &[f32]) {
        (&self.running_mean, &self.running_var)
    }

    /// Overwrites the running statistics (model loading).
    pub fn set_running_stats(&mut self, mean: &[f32], var: &[f32]) -> Result<()> {
        if mean.len() != self.channels || var.len() != self.channels {
            return Err(NnError::BadConfig {
                what: format!(
                    "running stats length {}/{} != channels {}",
                    mean.len(),
                    var.len(),
                    self.channels
                ),
            });
        }
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
        Ok(())
    }

    /// Training/eval forward on the tape.
    ///
    /// In [`Mode::Train`] the layer uses batch statistics and updates its
    /// running averages (hence `&mut self`); in [`Mode::Eval`] it applies the
    /// running statistics as a per-channel affine transform.
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        bind: &mut Bindings,
        store: &ParamStore,
        x: Var,
        mode: Mode,
    ) -> Result<Var> {
        match mode {
            Mode::Train => {
                let g = bind.bind(tape, store, self.gamma)?;
                let b = bind.bind(tape, store, self.beta)?;
                let (y, mean, var) = tape.batch_norm(x, g, b, self.eps)?;
                for c in 0..self.channels {
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
                }
                Ok(y)
            }
            Mode::Eval => {
                // Affine transform with frozen statistics; recorded on the
                // tape as constant scale/shift so this path is also usable
                // mid-training for validation losses.
                let xv = tape.value(x)?.clone();
                let y = self.eval_transform(store, &xv)?;
                Ok(tape.constant(y))
            }
        }
    }

    /// Inference forward on plain tensors using running statistics.
    pub fn eval_forward(&self, store: &ParamStore, x: &Tensor) -> Result<Tensor> {
        self.eval_transform(store, x)
    }

    /// Folds γ/β and the running statistics into per-channel `(scale,
    /// shift)` vectors: `y = x * scale[c] + shift[c]`.
    ///
    /// Computed with exactly the same f32 expressions as `eval_forward`,
    /// so applying the folded affine is bitwise identical to the unfolded
    /// path — inference engines hoist this out of the per-request loop.
    pub fn folded_affine(&self, store: &ParamStore) -> Result<(Vec<f32>, Vec<f32>)> {
        let g = &store.get(self.gamma)?.value;
        let be = &store.get(self.beta)?.value;
        let mut scale = vec![0.0f32; self.channels];
        let mut shift = vec![0.0f32; self.channels];
        for ci in 0..self.channels {
            let inv = 1.0 / (self.running_var[ci] + self.eps).sqrt();
            scale[ci] = g.data()[ci] * inv;
            shift[ci] = be.data()[ci] - self.running_mean[ci] * scale[ci];
        }
        Ok((scale, shift))
    }

    fn eval_transform(&self, store: &ParamStore, x: &Tensor) -> Result<Tensor> {
        let g = &store.get(self.gamma)?.value;
        let be = &store.get(self.beta)?.value;
        let (b, c, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let mut out = vec![0.0f32; b * c * l];
        for bi in 0..b {
            for ci in 0..c {
                let inv = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                let scale = g.data()[ci] * inv;
                let shift = be.data()[ci] - self.running_mean[ci] * scale;
                let off = (bi * c + ci) * l;
                for (o, &v) in out[off..off + l].iter_mut().zip(&x.data()[off..off + l]) {
                    *o = v * scale + shift;
                }
            }
        }
        Ok(Tensor::from_vec(out, &[b, c, l])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    #[test]
    fn conv_layer_shapes_and_params() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, &mut rng, "c", 2, 4, 5, 8).unwrap();
        assert_eq!(conv.num_params(), 4 * 2 * 5 + 4);
        assert_eq!(store.size_bits(), (4 * 2 * 5 + 4) * 8);

        let x = Tensor::ones(&[3, 2, 7]);
        let y = conv.eval_forward(&store, &x).unwrap();
        assert_eq!(y.dims(), &[3, 4, 7]);
    }

    #[test]
    fn conv_rejects_bad_config() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        assert!(Conv1d::new(&mut store, &mut rng, "c", 0, 4, 5, 8).is_err());
        assert!(Conv1d::new(&mut store, &mut rng, "c", 2, 4, 5, 0).is_err());
        assert!(Conv1d::new(&mut store, &mut rng, "c", 2, 4, 5, 33).is_err());
    }

    #[test]
    fn conv_train_and_eval_agree_at_32_bits() {
        let mut rng = seeded(2);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, &mut rng, "c", 1, 2, 3, 32).unwrap();
        let x = Tensor::randn(&mut rng, &[2, 1, 6], 1.0);

        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let xv = tape.constant(x.clone());
        let yv = conv.forward(&mut tape, &mut bind, &store, xv).unwrap();
        let y_train = tape.value(yv).unwrap().clone();
        let y_eval = conv.eval_forward(&store, &x).unwrap();
        for (a, b) in y_train.data().iter().zip(y_eval.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_conv_uses_quantized_weights_in_both_paths() {
        let mut rng = seeded(3);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, &mut rng, "c", 1, 2, 3, 4).unwrap();
        let x = Tensor::randn(&mut rng, &[1, 1, 5], 1.0);

        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let xv = tape.constant(x.clone());
        let yv = conv.forward(&mut tape, &mut bind, &store, xv).unwrap();
        let y_train = tape.value(yv).unwrap().clone();
        let y_eval = conv.eval_forward(&store, &x).unwrap();
        for (a, b) in y_train.data().iter().zip(y_eval.data().iter()) {
            assert!((a - b).abs() < 1e-5, "train/eval quantized paths diverge");
        }
    }

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = seeded(4);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, 3, 2, 32).unwrap();
        let x = Tensor::ones(&[1, 3]);
        let y = lin.eval_forward(&store, &x).unwrap();
        // y = Σ_i W[i, j] + b[j]
        let w = &store.get(lin.weight).unwrap().value;
        for j in 0..2 {
            let expect: f32 = (0..3).map(|i| w.get(&[i, j]).unwrap()).sum();
            assert!((y.get(&[0, j]).unwrap() - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn batchnorm_train_updates_running_stats() {
        let mut rng = seeded(5);
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 2).unwrap();
        let x = Tensor::randn(&mut rng, &[4, 2, 8], 2.0).add_scalar(3.0);
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let xv = tape.constant(x);
        let before = bn.running_mean.clone();
        let _ = bn.forward(&mut tape, &mut bind, &store, xv, Mode::Train).unwrap();
        assert_ne!(bn.running_mean, before);
        assert!(bn.running_mean[0] > 0.0, "running mean should drift toward 3");
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = seeded(6);
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 1).unwrap();
        // train several steps on shifted data so running stats converge
        for _ in 0..50 {
            let x = Tensor::randn(&mut rng, &[8, 1, 16], 1.0).add_scalar(5.0);
            let mut tape = Tape::new();
            let mut bind = Bindings::new();
            let xv = tape.constant(x);
            let _ = bn.forward(&mut tape, &mut bind, &store, xv, Mode::Train).unwrap();
        }
        // eval on data with the same distribution: output mean ≈ 0
        let x = Tensor::randn(&mut rng, &[8, 1, 16], 1.0).add_scalar(5.0);
        let y = bn.eval_forward(&store, &x).unwrap();
        assert!(y.mean().abs() < 0.5, "eval mean was {}", y.mean());
    }

    #[test]
    fn linear_train_path_produces_grads_for_both_params() {
        let mut rng = seeded(7);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, 3, 2, 8).unwrap();
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        let xv = tape.constant(Tensor::ones(&[4, 3]));
        let y = lin.forward(&mut tape, &mut bind, &store, xv).unwrap();
        let loss = tape.mean(y).unwrap();
        let grads = tape.backward(loss).unwrap();
        let collected = bind.collect_grads(grads);
        assert_eq!(collected.len(), 2);
    }
}
