//! Error type for the neural-network crate.

use lightts_tensor::TensorError;
use std::fmt;

/// Errors produced by layer construction, forward passes, and optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A parameter reference did not belong to the given store.
    InvalidParam {
        /// The offending parameter index.
        index: usize,
        /// Number of parameters in the store.
        len: usize,
    },
    /// A layer was configured with an impossible shape or hyper-parameter.
    BadConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// The gradient for a bound parameter was missing after backward.
    MissingGradient {
        /// The parameter whose gradient was absent.
        index: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::InvalidParam { index, len } => {
                write!(f, "parameter {index} invalid for store of length {len}")
            }
            Self::BadConfig { what } => write!(f, "bad layer configuration: {what}"),
            Self::MissingGradient { index } => {
                write!(f, "no gradient produced for parameter {index}")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::Empty { op: "x" };
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
    }

    #[test]
    fn display_mentions_cause() {
        let e = NnError::BadConfig { what: "zero filters".into() };
        assert!(e.to_string().contains("zero filters"));
    }
}
