//! Plain-tensor loss helpers.
//!
//! The autodiff tape has its own loss *ops* (for training); these free
//! functions compute the same quantities on plain tensors for evaluation and
//! for the closed-form outer-level λ update of AED (paper Eq. 3), where the
//! per-teacher distances `Dist(q_i, p_w)` are fixed numbers.

use crate::{NnError, Result};
use lightts_tensor::Tensor;

/// Mean cross-entropy of `targets` under class probability rows `probs`.
///
/// Probabilities are clamped away from zero for numerical robustness.
pub fn cross_entropy_mean(probs: &Tensor, targets: &[usize]) -> Result<f32> {
    if probs.rank() != 2 {
        return Err(NnError::BadConfig { what: "cross_entropy_mean expects [batch, k]".into() });
    }
    let (b, k) = (probs.dims()[0], probs.dims()[1]);
    if targets.len() != b {
        return Err(NnError::BadConfig {
            what: format!("targets length {} != batch {b}", targets.len()),
        });
    }
    let mut acc = 0.0f32;
    for (bi, &t) in targets.iter().enumerate() {
        if t >= k {
            return Err(NnError::BadConfig { what: format!("target {t} out of {k} classes") });
        }
        acc -= probs.data()[bi * k + t].max(1e-12).ln();
    }
    Ok(acc / b as f32)
}

/// Mean Kullback–Leibler divergence `KL(q ‖ p)` between row distributions.
///
/// This is the distillation distance `Dist(q_i, p_w)` of paper Eq. 2.
pub fn kl_mean(q: &Tensor, p: &Tensor) -> Result<f32> {
    if q.dims() != p.dims() || q.rank() != 2 {
        return Err(NnError::BadConfig {
            what: format!("kl_mean shape mismatch: {:?} vs {:?}", q.dims(), p.dims()),
        });
    }
    let b = q.dims()[0];
    let mut acc = 0.0f32;
    for (&qv, &pv) in q.data().iter().zip(p.data().iter()) {
        if qv > 0.0 {
            acc += qv * (qv.ln() - pv.max(1e-12).ln());
        }
    }
    Ok(acc / b as f32)
}

/// Mean squared error between two tensors of the same shape.
pub fn mse(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.dims() != b.dims() {
        return Err(NnError::BadConfig {
            what: format!("mse shape mismatch: {:?} vs {:?}", a.dims(), b.dims()),
        });
    }
    let n = a.len().max(1) as f32;
    let mut acc = 0.0f32;
    for (&x, &y) in a.data().iter().zip(b.data().iter()) {
        acc += (x - y) * (x - y);
    }
    Ok(acc / n)
}

/// Softmax over a plain slice, returned as a fresh vector.
pub fn softmax_slice(x: &[f32]) -> Vec<f32> {
    let mx = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|&v| (v - mx).exp()).collect();
    let z: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_of_perfect_prediction_is_zero() {
        let probs = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let ce = cross_entropy_mean(&probs, &[0, 1]).unwrap();
        assert!(ce.abs() < 1e-5);
    }

    #[test]
    fn ce_of_uniform_is_log_k() {
        let probs = Tensor::full(&[3, 4], 0.25);
        let ce = cross_entropy_mean(&probs, &[0, 1, 2]).unwrap();
        assert!((ce - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_rejects_bad_targets() {
        let probs = Tensor::full(&[1, 2], 0.5);
        assert!(cross_entropy_mean(&probs, &[2]).is_err());
        assert!(cross_entropy_mean(&probs, &[0, 1]).is_err());
    }

    #[test]
    fn kl_zero_iff_equal() {
        let q = Tensor::from_vec(vec![0.3, 0.7], &[1, 2]).unwrap();
        assert!(kl_mean(&q, &q).unwrap().abs() < 1e-6);
        let p = Tensor::from_vec(vec![0.7, 0.3], &[1, 2]).unwrap();
        assert!(kl_mean(&q, &p).unwrap() > 0.0);
    }

    #[test]
    fn kl_is_asymmetric() {
        let q = Tensor::from_vec(vec![0.9, 0.1], &[1, 2]).unwrap();
        let p = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]).unwrap();
        let kqp = kl_mean(&q, &p).unwrap();
        let kpq = kl_mean(&p, &q).unwrap();
        assert!((kqp - kpq).abs() > 1e-3);
    }

    #[test]
    fn softmax_slice_is_simplex() {
        let s = softmax_slice(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn mse_basic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        assert!((mse(&a, &b).unwrap() - 2.5).abs() < 1e-6);
    }
}
