//! Weight initialization schemes.
//!
//! The paper initializes base models "with different random states to ensure
//! diversity" (Section 4.1.4); these helpers implement the standard schemes
//! used for convolutional and fully-connected layers.

use lightts_tensor::Tensor;
use rand::Rng;

/// He (Kaiming) normal initialization for ReLU networks:
/// `N(0, sqrt(2 / fan_in))`.
pub fn he_normal<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(rng, dims, std)
}

/// Glorot (Xavier) uniform initialization:
/// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform<R: Rng>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(rng, dims, -a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let mut rng = seeded(1);
        let wide = he_normal(&mut rng, &[10_000], 1000);
        let narrow = he_normal(&mut rng, &[10_000], 10);
        let std = |t: &Tensor| (t.map(|x| x * x).mean() - t.mean() * t.mean()).sqrt();
        assert!(std(&wide) < std(&narrow));
        assert!((std(&narrow) - (2.0f32 / 10.0).sqrt()).abs() < 0.02);
    }

    #[test]
    fn glorot_uniform_is_bounded() {
        let mut rng = seeded(2);
        let t = glorot_uniform(&mut rng, &[1000], 8, 8);
        let a = (6.0f32 / 16.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }
}
