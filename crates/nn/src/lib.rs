//! # lightts-nn
//!
//! Neural-network building blocks for the LightTS reproduction: layers
//! (1-D convolution, linear, batch normalization), losses, optimizers
//! (SGD and Adam, as used in the paper's Section 4.1.5), and
//! quantization-aware training with per-layer bit-widths.
//!
//! Design: parameters live in a [`ParamStore`]; layers hold [`ParamRef`]
//! handles into the store. Each forward pass *binds* the parameters onto a
//! fresh autodiff [`Tape`](lightts_tensor::tape::Tape) (optionally wrapped in
//! a fake-quantization node when the layer is quantized), and after
//! `backward` the optimizer applies the gradients back to the store through
//! the recorded [`Bindings`]. This keeps layers free of interior mutability
//! and makes quantization-aware training a one-line concern per layer.
//!
//! ```
//! use lightts_nn::{ParamStore, layers::Linear, optim::{Sgd, Optimizer}, Bindings};
//! use lightts_tensor::{tape::Tape, Tensor, rng::seeded};
//!
//! let mut rng = seeded(0);
//! let mut store = ParamStore::new();
//! let lin = Linear::new(&mut store, &mut rng, 4, 2, 32).unwrap();
//! let mut opt = Sgd::new(0.1, 0.0);
//!
//! let x = Tensor::ones(&[8, 4]);
//! let mut tape = Tape::new();
//! let mut bind = Bindings::new();
//! let xv = tape.constant(x);
//! let y = lin.forward(&mut tape, &mut bind, &store, xv).unwrap();
//! let loss = tape.mean(y).unwrap();
//! let grads = tape.backward(loss).unwrap();
//! opt.step(&mut store, &bind.collect_grads(grads)).unwrap();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod param;

pub mod act;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod serialize;
pub mod size;

pub use error::NnError;
pub use param::{Bindings, Param, ParamRef, ParamStore};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;

/// Whether a forward pass is for training (batch statistics) or inference
/// (running statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training mode: batch-norm uses batch statistics and updates running
    /// averages.
    Train,
    /// Evaluation mode: batch-norm uses running statistics.
    Eval,
}
