//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The LightTS build environment has no access to crates.io, so this crate
//! vendors the `criterion` 0.5 API subset used by
//! `crates/bench/benches/micro.rs`: [`Criterion`] with
//! `sample_size`/`warm_up_time`/`measurement_time`, benchmark groups,
//! [`BenchmarkId`], and `Bencher::iter`.
//!
//! Statistics are deliberately simple — per sample the harness times a
//! batch of iterations and reports the median, minimum, and maximum
//! per-iteration wall-clock time on stdout. There are no plots, no saved
//! baselines, and no outlier analysis; for the kernel speedup comparisons
//! in this repository (serial vs parallel on the same machine, same
//! process) median wall-clock is exactly the number of interest.
//!
//! One extension beyond the upstream API: every completed benchmark also
//! files a [`Measurement`] into a process-global list that the bench runner
//! drains with [`take_measurements`] to build machine-readable artifacts
//! (`BENCH_kernels.json` at the repository root).
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The recorded timing of one completed benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full benchmark name (`group/function_id/parameter`).
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds.
    pub lo_ns: f64,
    /// Slowest sample, nanoseconds.
    pub hi_ns: f64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains and returns every measurement recorded since the last call (or
/// process start), in completion order.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut *MEASUREMENTS.lock().unwrap())
}

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a display-formatted parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Collected per-iteration sample means, in seconds.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly, timing batches until the configured
    /// measurement time is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until warm_up_time has elapsed, estimating the cost
        // of one iteration as we go.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            std::hint::black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

        // Measurement: `sample_size` samples, each a batch sized so that
        // all samples together fit in measurement_time.
        let samples = self.config.sample_size.max(2);
        let time_per_sample = self.config.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((time_per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:8.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:8.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:8.2} s ")
    }
}

fn run_one(config: &Criterion, full_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { config, samples: Vec::new() };
    f(&mut bencher);
    let mut s = bencher.samples;
    if s.is_empty() {
        println!("{full_name:<48} (no samples)");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    let (lo, hi) = (s[0], s[s.len() - 1]);
    println!(
        "{full_name:<48} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
    MEASUREMENTS.lock().unwrap().push(Measurement {
        name: full_name.to_string(),
        median_ns: median * 1e9,
        lo_ns: lo * 1e9,
        hi_ns: hi * 1e9,
    });
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Time spent warming up (and estimating iteration cost) per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Total time budget for the timed samples of each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(self, &id.into().id, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions and the configuration they run
/// under, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let config = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut b = Bencher { config: &config, samples: Vec::new() };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("forward", "1x8x40");
        assert_eq!(id.id, "forward/1x8x40");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn measurements_are_recorded_and_drained() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        c.bench_function("recorded_bench_probe", |b| b.iter(|| 2 * 2));
        let taken = take_measurements();
        // Other tests may record concurrently; ours must be present with
        // coherent statistics.
        let m =
            taken.iter().find(|m| m.name == "recorded_bench_probe").expect("bench not recorded");
        assert!(m.lo_ns <= m.median_ns && m.median_ns <= m.hi_ns);
        assert!(m.median_ns > 0.0);
    }
}
