//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The LightTS build environment has no access to crates.io, so this crate
//! vendors exactly the `rand` 0.8 API surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic generator ([`SeedableRng::seed_from_u64`])
//!   implemented as xoshiro256\*\* seeded via SplitMix64,
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer and
//!   float ranges), [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is *not* the upstream `StdRng` (ChaCha12), so streams
//! differ from real `rand` — but every consumer in this workspace only
//! relies on determinism for a fixed seed, which this crate guarantees:
//! the output sequence for a given seed is part of the reproducibility
//! contract and must never change.
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the unit interval for floats, the full value range for integers).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that uniform range sampling is defined for.
///
/// The generic `impl<T: SampleUniform> SampleRange<T> for Range<T>` below
/// mirrors upstream rand's structure; keeping the impl generic (rather
/// than one impl per concrete type) is what lets `gen_range(-0.5..0.5)`
/// infer the range's element type from the call site.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // guard against rounding up to the excluded endpoint
                if v < hi { v } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T` (unit interval for
    /// floats, full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Sr: SampleRange<T>>(&mut self, range: Sr) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose output is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types (only [`rngs::StdRng`] is provided).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic pseudo-random generator (xoshiro256\*\*).
    ///
    /// Statistically strong enough for every use in this workspace (weight
    /// initialization, data synthesis, Gumbel noise, MOBO sampling) and
    /// much faster than the cryptographic generator upstream `rand` uses.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Captures the generator's full internal state.
        ///
        /// Together with [`from_state`](Self::from_state) this is what lets
        /// long runs checkpoint their RNG *stream position*: a resumed run
        /// continues the exact output sequence an uninterrupted run would
        /// have produced, which is a precondition for bit-identical
        /// crash/resume.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`state`](Self::state) capture.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (shuffling).
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let saved = a.state();
        let tail: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(saved);
        let resumed: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!(f >= f32::EPSILON && f < 1.0);
            let i: u8 = rng.gen_range(2u8..=5);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "fraction was {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // and with overwhelming probability it actually moved something
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_rng<R: Rng>(rng: &mut R) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = takes_rng(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
