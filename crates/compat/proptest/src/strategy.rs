//! Value-generation strategies: the [`Strategy`] trait and the
//! combinators the workspace's property tests use.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test's RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// A length specification for [`vec`]: either an exact length (`usize`) or
/// a half-open range of lengths (`Range<usize>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// comes from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

/// Picks uniformly from a fixed, non-empty list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty option list");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (2u8..16).new_value(&mut r);
            assert!((2..16).contains(&x));
            let f = (-3.0f32..3.0).new_value(&mut r);
            assert!((-3.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_exact_and_ranged_lengths() {
        let mut r = rng();
        let exact = vec(0.0f64..1.0, 20).new_value(&mut r);
        assert_eq!(exact.len(), 20);
        for _ in 0..100 {
            let ranged = vec(0.0f64..1.0, 1..12).new_value(&mut r);
            assert!((1..12).contains(&ranged.len()));
        }
    }

    #[test]
    fn select_and_tuples_and_map() {
        let mut r = rng();
        let s = vec((select(vec![1usize, 2]), select(vec![10usize, 20]), 4u8..9), 3)
            .prop_map(|v| v.len());
        assert_eq!(s.new_value(&mut r), 3);
    }

    #[test]
    fn nested_vec() {
        let mut r = rng();
        let m = vec(vec(0.0f64..1.0, 4), 3).new_value(&mut r);
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|row| row.len() == 4));
    }
}
