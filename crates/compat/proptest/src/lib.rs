//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The LightTS build environment has no access to crates.io, so this crate
//! vendors the `proptest` 1.x API subset the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies (`-3.0f32..3.0`, `2u8..16`, …), tuple strategies,
//!   [`collection::vec`], [`sample::select`], and
//!   [`Strategy::prop_map`].
//!
//! **No shrinking**: a failing case reports the generated inputs via the
//! assertion message but is not minimized. Case generation is
//! deterministic per test (seeded from the test's name), so failures
//! reproduce exactly on re-run.
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// Sampling strategies ([`sample::select`]).
pub mod sample {
    pub use crate::strategy::{select, Select};
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

pub use strategy::Strategy;

/// Defines a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0.0f32..1.0, v in proptest::collection::vec(0u8..5, 3)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(4096),
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name),
                    accepted,
                    config.cases,
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        continue;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed: {}", stringify!($name), msg);
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case (without counting it) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
