//! Test-execution support: configuration, case outcomes, and the
//! deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (does not count as a run).
    Reject(String),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator seeded from the property's name (FNV-1a), so each property
/// sees a reproducible but distinct input stream.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_and_name_sensitive() {
        let mut a = deterministic_rng("foo");
        let mut b = deterministic_rng("foo");
        let mut c = deterministic_rng("bar");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
