//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The LightTS build environment has no access to crates.io, so this crate
//! vendors the subset of the `bytes` 1.x API that the packed model
//! serialization in `lightts-nn`/`lightts-models` uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with little-endian
//! integer and `f32` accessors.
//!
//! Unlike upstream `bytes` there is no reference-counted zero-copy
//! machinery — [`Bytes`] is a plain owned buffer. Every on-wire format in
//! this workspace is unaffected: the byte layout produced and consumed is
//! identical.
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable, owned byte buffer (plain `Vec<u8>` inside).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read access to a byte cursor, consumed front-to-back.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out of the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(-1.5);
        w.put_slice(b"xyz");
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 4 + 3);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), -1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn vec_is_a_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(7);
        assert_eq!(v, vec![7, 0, 0, 0]);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.chunk(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let data = [1u8];
        let mut r: &[u8] = &data;
        let _ = r.get_u32_le();
    }
}
