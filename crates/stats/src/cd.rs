//! Critical-difference grouping and a textual CD diagram.
//!
//! The paper's Figures 13–18 render methods on a rank axis with horizontal
//! bars joining methods that are *not* statistically distinguishable after
//! the Wilcoxon–Holm procedure. This module computes those groups
//! ("cliques") and renders an ASCII approximation the experiment binaries
//! print.

use crate::ranks::average_ranks;
use crate::wilcoxon::{holm_correction, wilcoxon_signed_rank};
use crate::{Result, StatsError};

/// A maximal set of methods whose pairwise differences are all
/// non-significant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clique {
    /// Method indices, ordered by average rank (best first).
    pub members: Vec<usize>,
}

/// Computes average ranks and non-significance cliques from a
/// `methods × datasets` score matrix (higher = better).
///
/// Returns `(average_ranks, cliques)`. Cliques are computed greedily over
/// the rank ordering: a maximal run of consecutively-ranked methods whose
/// pairwise Holm-adjusted Wilcoxon p-values all exceed `alpha` forms one
/// bar; runs fully contained in another are dropped — exactly how standard
/// CD diagrams are drawn.
pub fn cd_cliques(scores: &[Vec<f64>], alpha: f64) -> Result<(Vec<f64>, Vec<Clique>)> {
    let k = scores.len();
    if k < 2 {
        return Err(StatsError::BadInput { what: "need at least 2 methods".into() });
    }
    let avg = average_ranks(scores)?;

    // pairwise raw p-values
    let mut pairs = Vec::with_capacity(k * (k - 1) / 2);
    let mut raw = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            let r = wilcoxon_signed_rank(&scores[i], &scores[j])?;
            pairs.push((i, j));
            raw.push(r.p_value);
        }
    }
    let adjusted = holm_correction(&raw);
    let mut non_sig = vec![vec![false; k]; k];
    for ((i, j), &p) in pairs.iter().zip(adjusted.iter()) {
        let ns = p > alpha;
        non_sig[*i][*j] = ns;
        non_sig[*j][*i] = ns;
    }

    // order methods by average rank
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| avg[a].total_cmp(&avg[b]));

    // maximal runs of consecutive methods that are mutually non-significant
    let mut cliques: Vec<Clique> = Vec::new();
    for start in 0..k {
        let mut end = start;
        'grow: while end + 1 < k {
            let cand = order[end + 1];
            for &m in &order[start..=end] {
                if !non_sig[m][cand] {
                    break 'grow;
                }
            }
            end += 1;
        }
        if end > start {
            let members: Vec<usize> = order[start..=end].to_vec();
            // drop runs contained in an existing maximal run
            if !cliques.iter().any(|c| members.iter().all(|m| c.members.contains(m))) {
                cliques.push(Clique { members });
            }
        }
    }
    Ok((avg, cliques))
}

/// Renders a simple textual critical-difference diagram: one line per
/// method (best rank first) and one line per clique bar.
pub fn render_cd_diagram(names: &[&str], avg_ranks: &[f64], cliques: &[Clique]) -> String {
    let mut order: Vec<usize> = (0..names.len()).collect();
    order.sort_by(|&a, &b| avg_ranks[a].total_cmp(&avg_ranks[b]));
    let mut out = String::new();
    out.push_str("rank  method\n");
    for &i in &order {
        out.push_str(&format!("{:>5.2}  {}\n", avg_ranks[i], names[i]));
    }
    for (ci, c) in cliques.iter().enumerate() {
        let members: Vec<&str> = c.members.iter().map(|&m| names[m]).collect();
        out.push_str(&format!("group {}: {{{}}}\n", ci + 1, members.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: u64) -> f64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 10_000) as f64 / 10_000.0
    }

    /// Two clearly separated methods + one statistically tied pair.
    fn scores() -> Vec<Vec<f64>> {
        let n = 20;
        vec![
            (0..n).map(|i| 0.90 + mix(i as u64) * 0.02).collect(),
            (0..n).map(|i| 0.90 + mix(1_000 + i as u64) * 0.02).collect(), // ties with 0
            (0..n).map(|i| 0.60 + mix(2_000 + i as u64) * 0.02).collect(),
            (0..n).map(|i| 0.30 + mix(3_000 + i as u64) * 0.02).collect(),
        ]
    }

    #[test]
    fn tied_pair_forms_a_clique() {
        let (avg, cliques) = cd_cliques(&scores(), 0.05).unwrap();
        assert_eq!(avg.len(), 4);
        // methods 0 and 1 are interleaved; 2 and 3 clearly worse
        assert!(avg[0] < avg[2] && avg[1] < avg[2] && avg[2] < avg[3]);
        // exactly one clique, containing methods 0 and 1
        assert_eq!(cliques.len(), 1, "{cliques:?}");
        let mut m = cliques[0].members.clone();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1]);
    }

    #[test]
    fn fully_separated_methods_have_no_cliques() {
        let n = 25;
        let scores: Vec<Vec<f64>> = (0..3)
            .map(|m| (0..n).map(|i| 0.9 - 0.3 * m as f64 + i as f64 * 1e-4).collect())
            .collect();
        let (_, cliques) = cd_cliques(&scores, 0.05).unwrap();
        assert!(cliques.is_empty(), "{cliques:?}");
    }

    #[test]
    fn all_equivalent_methods_form_one_clique() {
        let n = 10;
        let scores: Vec<Vec<f64>> = (0..3u64)
            .map(|m| (0..n).map(|i| 0.5 + mix(m * 500 + i as u64) * 0.05).collect())
            .collect();
        let (_, cliques) = cd_cliques(&scores, 0.05).unwrap();
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].members.len(), 3);
    }

    #[test]
    fn render_contains_all_names_sorted() {
        let (avg, cliques) = cd_cliques(&scores(), 0.05).unwrap();
        let names = ["A", "B", "C", "D"];
        let s = render_cd_diagram(&names, &avg, &cliques);
        for n in names {
            assert!(s.contains(n));
        }
        assert!(s.contains("group 1"));
        // best-ranked method appears before worst
        let pa = s.find('A').unwrap().min(s.find('B').unwrap());
        let pd = s.find('D').unwrap();
        assert!(pa < pd);
    }

    #[test]
    fn needs_two_methods() {
        assert!(cd_cliques(&[vec![1.0, 2.0]], 0.05).is_err());
    }
}
