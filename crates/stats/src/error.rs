//! Error type for statistical tests.

use std::fmt;

/// Errors produced by the statistical tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// Input matrices/vectors had inconsistent or insufficient shape.
    BadInput {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadInput { what } => write!(f, "bad statistical input: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StatsError::BadInput { what: "too few datasets".into() };
        assert!(e.to_string().contains("too few"));
    }
}
