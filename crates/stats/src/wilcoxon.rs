//! Wilcoxon signed-rank test (\[50\]) with Holm correction (\[27\]).
//!
//! The paper's post-hoc procedure: after the Friedman test rejects, every
//! method pair is compared with the Wilcoxon signed-rank test over the
//! per-dataset scores, and the resulting p-values are Holm-adjusted to
//! control the family-wise error rate.

use crate::ranks::rank_slice;
use crate::special::normal_cdf;
use crate::{Result, StatsError};

/// Outcome of a two-sided Wilcoxon signed-rank test.
#[derive(Debug, Clone, PartialEq)]
pub struct WilcoxonResult {
    /// The smaller of the positive/negative rank sums.
    pub statistic: f64,
    /// Normal-approximation z-score.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Number of non-zero differences used.
    pub n_effective: usize,
}

/// Two-sided Wilcoxon signed-rank test on paired samples.
///
/// Zero differences are dropped (the standard treatment); ties among
/// absolute differences receive averaged ranks; the normal approximation
/// includes the tie variance correction. With every pair tied the test
/// returns `p = 1`.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<WilcoxonResult> {
    if a.len() != b.len() {
        return Err(StatsError::BadInput {
            what: format!("paired lengths differ: {} vs {}", a.len(), b.len()),
        });
    }
    if a.is_empty() {
        return Err(StatsError::BadInput { what: "empty samples".into() });
    }
    let diffs: Vec<f64> =
        a.iter().zip(b.iter()).map(|(&x, &y)| x - y).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n == 0 {
        return Ok(WilcoxonResult { statistic: 0.0, z: 0.0, p_value: 1.0, n_effective: 0 });
    }
    // rank |d|, smallest = rank 1 ⇒ rank_slice ranks highest first, so rank
    // the negated absolute values
    let neg_abs: Vec<f64> = diffs.iter().map(|d| -d.abs()).collect();
    let ranks = rank_slice(&neg_abs);
    let mut w_plus = 0.0f64;
    let mut w_minus = 0.0f64;
    for (d, r) in diffs.iter().zip(ranks.iter()) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }
    let statistic = w_plus.min(w_minus);
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // tie correction on the variance
    let mut tie_term = 0.0f64;
    let mut sorted: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    sorted.sort_by(|x, y| x.total_cmp(y));
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if var <= 0.0 {
        return Ok(WilcoxonResult { statistic, z: 0.0, p_value: 1.0, n_effective: n });
    }
    // continuity correction
    let z = (statistic - mean + 0.5) / var.sqrt();
    let p_value = (2.0 * normal_cdf(z)).clamp(0.0, 1.0);
    Ok(WilcoxonResult { statistic, z, p_value, n_effective: n })
}

/// Holm step-down correction: returns adjusted p-values in the original
/// order, enforcing monotonicity.
pub fn holm_correction(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| p_values[i].total_cmp(&p_values[j]));
    let mut adjusted = vec![0.0f64; m];
    let mut running_max = 0.0f64;
    for (pos, &i) in order.iter().enumerate() {
        let factor = (m - pos) as f64;
        let adj = (p_values[i] * factor).min(1.0);
        running_max = running_max.max(adj);
        adjusted[i] = running_max;
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let a: Vec<f64> = (0..15).map(|i| 0.8 + i as f64 * 0.001).collect();
        let b: Vec<f64> = (0..15).map(|i| 0.5 + i as f64 * 0.001).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert_eq!(r.n_effective, 15);
        assert_eq!(r.statistic, 0.0); // all differences positive
    }

    #[test]
    fn identical_samples_give_p_one() {
        let a = vec![0.5, 0.6, 0.7];
        let r = wilcoxon_signed_rank(&a, &a).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.n_effective, 0);
    }

    #[test]
    fn symmetric_noise_is_not_significant() {
        // alternating ±δ differences of equal magnitude
        let a: Vec<f64> = (0..20).map(|i| 0.5 + if i % 2 == 0 { 0.01 } else { -0.01 }).collect();
        let b = vec![0.5f64; 20];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn test_is_symmetric_in_arguments() {
        let a: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin() * 0.2 + 0.6).collect();
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.53).cos() * 0.2 + 0.55).collect();
        let r1 = wilcoxon_signed_rank(&a, &b).unwrap();
        let r2 = wilcoxon_signed_rank(&b, &a).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]).is_err());
        assert!(wilcoxon_signed_rank(&[], &[]).is_err());
    }

    #[test]
    fn holm_adjusts_and_preserves_order() {
        let p = vec![0.01, 0.04, 0.03, 0.005];
        let adj = holm_correction(&p);
        // sorted: 0.005·4, 0.01·3, 0.03·2, 0.04·1 → 0.02, 0.03, 0.06, 0.06
        assert!((adj[3] - 0.02).abs() < 1e-12);
        assert!((adj[0] - 0.03).abs() < 1e-12);
        assert!((adj[2] - 0.06).abs() < 1e-12);
        assert!((adj[1] - 0.06).abs() < 1e-12);
        // monotone: adjusted order matches raw order
        assert!(adj[3] <= adj[0] && adj[0] <= adj[2] && adj[2] <= adj[1]);
    }

    #[test]
    fn holm_caps_at_one() {
        let adj = holm_correction(&[0.9, 0.8]);
        assert!(adj.iter().all(|&p| p <= 1.0));
        assert!(holm_correction(&[]).is_empty());
    }
}
