//! Special functions: log-gamma, the regularized incomplete gamma function
//! (for the χ² survival function), and the normal CDF.
//!
//! Implementations follow the classic Numerical Recipes formulations
//! (Lanczos approximation; series/continued-fraction split for the
//! incomplete gamma), accurate to well beyond what p-value thresholds need.

/// Natural log of the gamma function (Lanczos approximation, g=5, n=6).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015f64;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // series representation
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..200 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-12 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // continued fraction for Q(a, x), then P = 1 − Q
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..200 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-12 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Survival function of the χ² distribution with `df` degrees of freedom:
/// `P(X ≥ x)`.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gamma_p(df / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Standard normal cumulative distribution function (f64, via erf).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function (Abramowitz–Stegun 7.1.26 in f64).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_of_integers_matches_factorials() {
        // Γ(n) = (n−1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn chi2_sf_known_values() {
        // χ²(df=1): P(X ≥ 3.841) ≈ 0.05
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        // χ²(df=6): P(X ≥ 12.592) ≈ 0.05
        assert!((chi2_sf(12.592, 6.0) - 0.05).abs() < 1e-3);
        // χ²(df=10): median ≈ 9.342
        assert!((chi2_sf(9.342, 10.0) - 0.5).abs() < 1e-3);
        assert_eq!(chi2_sf(-1.0, 3.0), 1.0);
    }

    #[test]
    fn chi2_sf_is_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 1..30 {
            let v = chi2_sf(i as f64, 5.0);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn normal_cdf_quantiles() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.644_854) - 0.05).abs() < 1e-4);
    }
}
