//! The Friedman omnibus test (\[20\] in the paper).
//!
//! Tests the null hypothesis that all `k` methods perform equivalently over
//! `n` datasets, using the χ² approximation of the Friedman statistic with
//! the standard tie correction. The paper applies it before the
//! Wilcoxon–Holm post-hoc procedure in every ranking figure.

use crate::ranks::{check_matrix, rank_slice};
use crate::special::chi2_sf;
use crate::Result;

/// Outcome of the Friedman test.
#[derive(Debug, Clone, PartialEq)]
pub struct FriedmanResult {
    /// The χ²-distributed statistic.
    pub statistic: f64,
    /// Degrees of freedom `k − 1`.
    pub df: f64,
    /// Two-sided p-value from the χ² tail.
    pub p_value: f64,
    /// Average rank per method (1 = best).
    pub average_ranks: Vec<f64>,
}

/// Runs the Friedman test on a `methods × datasets` score matrix where
/// higher scores are better.
pub fn friedman_test(scores: &[Vec<f64>]) -> Result<FriedmanResult> {
    let (k, n) = check_matrix(scores)?;
    let mut rank_sums = vec![0.0f64; k];
    let mut column = vec![0.0f64; k];
    // tie correction accumulator: Σ over datasets of Σ (t³ − t)
    let mut tie_term = 0.0f64;
    for d in 0..n {
        for (m, row) in scores.iter().enumerate() {
            column[m] = row[d];
        }
        let ranks = rank_slice(&column);
        for (s, r) in rank_sums.iter_mut().zip(ranks.iter()) {
            *s += r;
        }
        // count tie group sizes in this column
        let mut sorted = column.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut i = 0usize;
        while i < k {
            let mut j = i;
            while j + 1 < k && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            tie_term += t * t * t - t;
            i = j + 1;
        }
    }
    let kf = k as f64;
    let nf = n as f64;
    let sum_r2: f64 = rank_sums.iter().map(|&r| r * r).sum();
    // tie-corrected form: χ² = [12 Σ R²/(nk(k+1)) − 3n(k+1)] / (1 − T/(nk(k²−1)))
    let chi_uncorrected = 12.0 / (nf * kf * (kf + 1.0)) * sum_r2 - 3.0 * nf * (kf + 1.0);
    let correction = 1.0 - tie_term / (nf * kf * (kf * kf - 1.0));
    let statistic = if correction > 1e-12 {
        chi_uncorrected / correction
    } else {
        0.0 // all columns fully tied: no evidence against the null
    };
    let df = kf - 1.0;
    let p_value = chi2_sf(statistic.max(0.0), df);
    let average_ranks = rank_sums.iter().map(|&r| r / nf).collect();
    Ok(FriedmanResult { statistic: statistic.max(0.0), df, p_value, average_ranks })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_separation_rejects_null() {
        // method 0 always best, method 2 always worst, 10 datasets
        let scores = vec![
            (0..10).map(|i| 0.9 + (i as f64) * 1e-3).collect::<Vec<_>>(),
            (0..10).map(|i| 0.6 + (i as f64) * 1e-3).collect(),
            (0..10).map(|i| 0.3 + (i as f64) * 1e-3).collect(),
        ];
        let r = friedman_test(&scores).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert_eq!(r.average_ranks, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.df, 2.0);
    }

    #[test]
    fn identical_methods_do_not_reject() {
        let row: Vec<f64> = (0..8).map(|i| 0.5 + i as f64 * 0.01).collect();
        let scores = vec![row.clone(), row.clone(), row];
        let r = friedman_test(&scores).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        assert!(r.statistic.abs() < 1e-9);
    }

    #[test]
    fn matches_textbook_example() {
        // Classic example (Conover): 3 treatments, 4 blocks.
        // Data arranged so ranks are clean.
        let scores =
            vec![vec![9.0, 9.5, 5.0, 7.5], vec![7.0, 6.5, 7.0, 5.5], vec![6.0, 8.0, 4.0, 4.0]];
        let r = friedman_test(&scores).unwrap();
        // hand-computed: ranks per block (higher better):
        // b1: 1,2,3 ; b2: 1,3,2 ; b3: 2,1,3 ; b4: 1,2,3
        // R = [5, 8, 11]; χ² = 12/(4·3·4)·(25+64+121) − 3·4·4 = 52.5 − 48 = 4.5
        assert!((r.statistic - 4.5).abs() < 1e-9, "stat {}", r.statistic);
        assert!((r.p_value - chi2_sf(4.5, 2.0)).abs() < 1e-12);
    }

    fn mix(x: u64) -> f64 {
        // splitmix64 finalizer as a deterministic noise source
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 10_000) as f64 / 10_000.0
    }

    #[test]
    fn random_noise_usually_retains_null() {
        // deterministic well-mixed noise, no real differences
        let scores: Vec<Vec<f64>> =
            (0..4).map(|m| (0..20).map(|d| mix((m * 1_000 + d) as u64)).collect()).collect();
        let r = friedman_test(&scores).unwrap();
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }
}
