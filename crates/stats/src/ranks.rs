//! Ranking utilities: per-dataset ranks with ties, and average ranks across
//! datasets (the x-axis of the paper's critical-difference diagrams).

use crate::{Result, StatsError};

/// Ranks a slice where **higher values are better**: the best value gets
/// rank 1. Ties receive the average of the ranks they span (standard
/// fractional ranking, as the Friedman test requires).
pub fn rank_slice(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a])); // descending
    let mut ranks = vec![0.0f64; n];
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // positions i..=j share the average rank
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Validates a `methods × datasets` score matrix.
pub(crate) fn check_matrix(scores: &[Vec<f64>]) -> Result<(usize, usize)> {
    let k = scores.len();
    if k < 2 {
        return Err(StatsError::BadInput { what: "need at least 2 methods".into() });
    }
    let n = scores[0].len();
    if n == 0 {
        return Err(StatsError::BadInput { what: "need at least 1 dataset".into() });
    }
    if scores.iter().any(|row| row.len() != n) {
        return Err(StatsError::BadInput { what: "ragged score matrix".into() });
    }
    Ok((k, n))
}

/// Average rank of each method over all datasets, from a
/// `methods × datasets` score matrix where higher scores are better.
///
/// This is the paper's ranking procedure: "methods are ranked according to
/// the pairwise comparison of accuracy for every set …, then the average
/// rank across all the data sets … is computed" (Figure 13).
pub fn average_ranks(scores: &[Vec<f64>]) -> Result<Vec<f64>> {
    let (k, n) = check_matrix(scores)?;
    let mut avg = vec![0.0f64; k];
    let mut column = vec![0.0f64; k];
    for d in 0..n {
        for (m, row) in scores.iter().enumerate() {
            column[m] = row[d];
        }
        let ranks = rank_slice(&column);
        for (a, r) in avg.iter_mut().zip(ranks.iter()) {
            *a += r;
        }
    }
    for a in &mut avg {
        *a /= n as f64;
    }
    Ok(avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_slice_basic() {
        assert_eq!(rank_slice(&[0.9, 0.5, 0.7]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn rank_slice_ties_average() {
        // two-way tie for first: ranks (1+2)/2 = 1.5 each
        assert_eq!(rank_slice(&[0.9, 0.9, 0.5]), vec![1.5, 1.5, 3.0]);
        // three-way tie: all rank 2
        assert_eq!(rank_slice(&[0.4, 0.4, 0.4]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn rank_sums_are_invariant() {
        // ranks always sum to k(k+1)/2
        let ranks = rank_slice(&[0.1, 0.8, 0.8, 0.3, 0.5]);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 15.0).abs() < 1e-12);
    }

    #[test]
    fn average_ranks_identify_dominant_method() {
        let scores = vec![vec![0.9, 0.8, 0.7], vec![0.5, 0.6, 0.5], vec![0.1, 0.2, 0.6]];
        let avg = average_ranks(&scores).unwrap();
        assert_eq!(avg[0], 1.0);
        assert!(avg[1] < avg[2]);
    }

    #[test]
    fn validation_errors() {
        assert!(average_ranks(&[vec![1.0]]).is_err());
        assert!(average_ranks(&[vec![1.0], vec![]]).is_err());
        assert!(average_ranks(&[vec![1.0, 2.0], vec![1.0]]).is_err());
    }
}
