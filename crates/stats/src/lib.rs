//! # lightts-stats
//!
//! The statistical testing machinery of the LightTS evaluation (paper
//! Section 4.1.2 and Figures 13–18): the Friedman omnibus test over method
//! rankings across datasets, Wilcoxon signed-rank post-hoc comparisons with
//! Holm correction, and critical-difference grouping (the clusters drawn as
//! horizontal bars in the paper's CD diagrams).
//!
//! All special functions (log-gamma, regularized incomplete gamma for the
//! χ² tail, the normal CDF) are implemented here — no external statistics
//! crates.
//!
//! ```
//! use lightts_stats::{average_ranks, friedman_test};
//!
//! // 3 methods × 4 datasets, higher is better
//! let scores = vec![
//!     vec![0.9, 0.8, 0.95, 0.85],  // method A: always best
//!     vec![0.7, 0.6, 0.80, 0.70],
//!     vec![0.5, 0.4, 0.60, 0.55],
//! ];
//! let ranks = average_ranks(&scores).unwrap();
//! assert_eq!(ranks, vec![1.0, 2.0, 3.0]);
//! let f = friedman_test(&scores).unwrap();
//! assert!(f.p_value < 0.05);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod cd;
mod error;
mod friedman;
mod ranks;
mod special;
mod wilcoxon;

pub use cd::{cd_cliques, render_cd_diagram, Clique};
pub use error::StatsError;
pub use friedman::{friedman_test, FriedmanResult};
pub use ranks::{average_ranks, rank_slice};
pub use special::{chi2_sf, ln_gamma, normal_cdf};
pub use wilcoxon::{holm_correction, wilcoxon_signed_rank, WilcoxonResult};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
