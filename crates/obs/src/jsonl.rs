//! A minimal JSON parser and the event-schema validator.
//!
//! The obs crate has zero dependencies, so it carries its own tiny
//! recursive-descent JSON reader — enough to round-trip the lines the
//! crate itself emits and to let CI validate an experiment run's JSONL
//! output against the documented schema (see the crate docs).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse or schema error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, JsonError> {
        Err(JsonError(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected {word:?}"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(&format!("unexpected character {:?}", c as char)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError(format!("bad number {text:?}")))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

/// Validates one line against the documented obs event schema.
///
/// Required: `ts_us` (number ≥ 0), `kind` (`"span"` or `"event"`), `path`
/// (non-empty string), `fields` (object of string/number/bool values);
/// `dur_us` (number ≥ 0) required for spans and forbidden for events. No
/// other top-level keys are allowed.
pub fn validate_event_line(line: &str) -> Result<(), JsonError> {
    let v = parse(line)?;
    let obj = v.as_obj().ok_or_else(|| JsonError("event line is not an object".into()))?;
    let ts = obj.get("ts_us").ok_or_else(|| JsonError("missing ts_us".into()))?;
    let ts = ts.as_num().ok_or_else(|| JsonError("ts_us is not a number".into()))?;
    if ts < 0.0 {
        return Err(JsonError(format!("negative ts_us {ts}")));
    }
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError("missing/invalid kind".into()))?;
    if kind != "span" && kind != "event" {
        return Err(JsonError(format!("kind {kind:?} is neither span nor event")));
    }
    let path = obj
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError("missing/invalid path".into()))?;
    if path.is_empty() {
        return Err(JsonError("empty path".into()));
    }
    let fields = obj
        .get("fields")
        .and_then(Json::as_obj)
        .ok_or_else(|| JsonError("missing/invalid fields object".into()))?;
    for (k, fv) in fields {
        match fv {
            Json::Str(_) | Json::Num(_) | Json::Bool(_) | Json::Null => {}
            other => {
                return Err(JsonError(format!("field {k:?} has non-scalar value {other:?}")));
            }
        }
    }
    match (kind, obj.get("dur_us")) {
        ("span", Some(Json::Num(d))) if *d >= 0.0 => {}
        ("span", other) => {
            return Err(JsonError(format!("span needs non-negative dur_us, got {other:?}")));
        }
        ("event", None) => {}
        ("event", Some(_)) => return Err(JsonError("event must not carry dur_us".into())),
        _ => unreachable!(),
    }
    const ALLOWED: [&str; 5] = ["ts_us", "kind", "path", "fields", "dur_us"];
    for k in obj.keys() {
        if !ALLOWED.contains(&k.as_str()) {
            return Err(JsonError(format!("unknown top-level key {k:?}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let arr = parse("[1, 2, []]").unwrap();
        assert_eq!(arr, Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Arr(vec![])]));
        let obj = parse("{\"a\": 1, \"b\": {\"c\": false}}").unwrap();
        let m = obj.as_obj().unwrap();
        assert_eq!(m["a"], Json::Num(1.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn validator_accepts_good_lines_and_rejects_bad() {
        validate_event_line(
            "{\"ts_us\":1,\"kind\":\"span\",\"path\":\"a.b\",\"fields\":{\"x\":1},\"dur_us\":2.5}",
        )
        .unwrap();
        validate_event_line("{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{}}")
            .unwrap();
        for bad in [
            "{\"kind\":\"span\",\"path\":\"a\",\"fields\":{},\"dur_us\":1}", // no ts
            "{\"ts_us\":1,\"kind\":\"trace\",\"path\":\"a\",\"fields\":{}}", // bad kind
            "{\"ts_us\":1,\"kind\":\"span\",\"path\":\"\",\"fields\":{},\"dur_us\":1}", // empty path
            "{\"ts_us\":1,\"kind\":\"span\",\"path\":\"a\",\"fields\":{}}", // span without dur
            "{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{},\"dur_us\":1}", // event with dur
            "{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{\"x\":[1]}}", // nested field
            "{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{},\"extra\":1}", // unknown key
        ] {
            assert!(validate_event_line(bad).is_err(), "{bad} should fail validation");
        }
    }
}
