//! A minimal JSON parser and the event-schema validator.
//!
//! The obs crate has zero dependencies, so it carries its own tiny
//! recursive-descent JSON reader — enough to round-trip the lines the
//! crate itself emits and to let CI validate an experiment run's JSONL
//! output against the documented schema (see the crate docs).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse or schema error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, JsonError> {
        Err(JsonError(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected {word:?}"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(&format!("unexpected character {:?}", c as char)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError(format!("bad number {text:?}")))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

/// Validates one line against the documented obs event schema.
///
/// Required: `ts_us` (number ≥ 0), `kind` (`"span"` or `"event"`), `path`
/// (non-empty string), `fields` (object of string/number/bool values);
/// `dur_us` (number ≥ 0) required for spans and forbidden for events. No
/// other top-level keys are allowed.
pub fn validate_event_line(line: &str) -> Result<(), JsonError> {
    let v = parse(line)?;
    let obj = v.as_obj().ok_or_else(|| JsonError("event line is not an object".into()))?;
    let ts = obj.get("ts_us").ok_or_else(|| JsonError("missing ts_us".into()))?;
    let ts = ts.as_num().ok_or_else(|| JsonError("ts_us is not a number".into()))?;
    if ts < 0.0 {
        return Err(JsonError(format!("negative ts_us {ts}")));
    }
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError("missing/invalid kind".into()))?;
    if kind != "span" && kind != "event" {
        return Err(JsonError(format!("kind {kind:?} is neither span nor event")));
    }
    let path = obj
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError("missing/invalid path".into()))?;
    if path.is_empty() {
        return Err(JsonError("empty path".into()));
    }
    let fields = obj
        .get("fields")
        .and_then(Json::as_obj)
        .ok_or_else(|| JsonError("missing/invalid fields object".into()))?;
    for (k, fv) in fields {
        match fv {
            Json::Str(_) | Json::Num(_) | Json::Bool(_) | Json::Null => {}
            other => {
                return Err(JsonError(format!("field {k:?} has non-scalar value {other:?}")));
            }
        }
    }
    match (kind, obj.get("dur_us")) {
        ("span", Some(Json::Num(d))) if *d >= 0.0 => {}
        ("span", other) => {
            return Err(JsonError(format!("span needs non-negative dur_us, got {other:?}")));
        }
        ("event", None) => {}
        ("event", Some(_)) => return Err(JsonError("event must not carry dur_us".into())),
        _ => unreachable!(),
    }
    const ALLOWED: [&str; 5] = ["ts_us", "kind", "path", "fields", "dur_us"];
    for k in obj.keys() {
        if !ALLOWED.contains(&k.as_str()) {
            return Err(JsonError(format!("unknown top-level key {k:?}")));
        }
    }
    Ok(())
}

/// One serving span as seen by the trace-linkage validator.
struct ServeSpan {
    path: String,
    trace_id: u64,
    ts_us: f64,
    dur_us: f64,
}

/// Validates the request-trace contract over a batch of JSONL lines.
///
/// Rules (applied to `kind:"span"` lines whose `path` starts with
/// `serve.`):
///
/// 1. every such span carries a `trace_id` field that is a positive
///    integer number;
/// 2. spans sharing a `trace_id` include exactly one root
///    (`serve.request`) span;
/// 3. every other span of the trace nests inside the root's time range
///    `[ts_us − dur_us, ts_us]` (`ts_us` stamps span *completion*), with a
///    2 µs epsilon for float rounding.
///
/// Returns the number of distinct trace ids checked. Non-serve lines are
/// ignored (but must still individually satisfy [`validate_event_line`] —
/// callers validate per-line first).
pub fn validate_trace_linkage<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> Result<usize, JsonError> {
    const ROOT: &str = "serve.request";
    const EPS_US: f64 = 2.0;
    let mut traces: BTreeMap<u64, Vec<ServeSpan>> = BTreeMap::new();
    for line in lines {
        let v = parse(line)?;
        let obj = v.as_obj().ok_or_else(|| JsonError("line is not an object".into()))?;
        if obj.get("kind").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let path = obj.get("path").and_then(Json::as_str).unwrap_or_default();
        if !path.starts_with("serve.") {
            continue;
        }
        let fields = obj
            .get("fields")
            .and_then(Json::as_obj)
            .ok_or_else(|| JsonError(format!("serve span {path:?} has no fields")))?;
        let tid = fields
            .get("trace_id")
            .and_then(Json::as_num)
            .ok_or_else(|| JsonError(format!("serve span {path:?} lacks a numeric trace_id")))?;
        if tid <= 0.0 || tid.fract() != 0.0 {
            return Err(JsonError(format!(
                "serve span {path:?} has non-positive/non-integer trace_id {tid}"
            )));
        }
        let ts_us = obj.get("ts_us").and_then(Json::as_num).unwrap_or(0.0);
        let dur_us = obj.get("dur_us").and_then(Json::as_num).unwrap_or(0.0);
        traces.entry(tid as u64).or_default().push(ServeSpan {
            path: path.to_string(),
            trace_id: tid as u64,
            ts_us,
            dur_us,
        });
    }
    for (tid, spans) in &traces {
        let roots: Vec<&ServeSpan> = spans.iter().filter(|s| s.path == ROOT).collect();
        if roots.len() != 1 {
            return Err(JsonError(format!(
                "trace {tid} has {} {ROOT:?} root spans (want exactly 1) among {} spans",
                roots.len(),
                spans.len()
            )));
        }
        let root = roots[0];
        let (lo, hi) = (root.ts_us - root.dur_us - EPS_US, root.ts_us + EPS_US);
        for s in spans.iter().filter(|s| s.path != ROOT) {
            let (start, end) = (s.ts_us - s.dur_us, s.ts_us);
            if start < lo || end > hi {
                return Err(JsonError(format!(
                    "trace {} span {:?} [{start}, {end}] escapes root range [{lo}, {hi}]",
                    s.trace_id, s.path
                )));
            }
        }
    }
    Ok(traces.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let arr = parse("[1, 2, []]").unwrap();
        assert_eq!(arr, Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Arr(vec![])]));
        let obj = parse("{\"a\": 1, \"b\": {\"c\": false}}").unwrap();
        let m = obj.as_obj().unwrap();
        assert_eq!(m["a"], Json::Num(1.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn validator_accepts_good_lines_and_rejects_bad() {
        validate_event_line(
            "{\"ts_us\":1,\"kind\":\"span\",\"path\":\"a.b\",\"fields\":{\"x\":1},\"dur_us\":2.5}",
        )
        .unwrap();
        validate_event_line("{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{}}")
            .unwrap();
        for bad in [
            "{\"kind\":\"span\",\"path\":\"a\",\"fields\":{},\"dur_us\":1}", // no ts
            "{\"ts_us\":1,\"kind\":\"trace\",\"path\":\"a\",\"fields\":{}}", // bad kind
            "{\"ts_us\":1,\"kind\":\"span\",\"path\":\"\",\"fields\":{},\"dur_us\":1}", // empty path
            "{\"ts_us\":1,\"kind\":\"span\",\"path\":\"a\",\"fields\":{}}", // span without dur
            "{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{},\"dur_us\":1}", // event with dur
            "{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{\"x\":[1]}}", // nested field
            "{\"ts_us\":1,\"kind\":\"event\",\"path\":\"a\",\"fields\":{},\"extra\":1}", // unknown key
        ] {
            assert!(validate_event_line(bad).is_err(), "{bad} should fail validation");
        }
    }

    fn span_line(path: &str, tid: u64, ts: f64, dur: f64) -> String {
        format!(
            "{{\"ts_us\":{ts},\"kind\":\"span\",\"path\":\"{path}\",\
             \"fields\":{{\"trace_id\":{tid}}},\"dur_us\":{dur}}}"
        )
    }

    #[test]
    fn trace_linkage_accepts_nested_stages() {
        let lines = vec![
            span_line("serve.queue_wait", 7, 1_050.0, 50.0),
            span_line("serve.fuse", 7, 1_060.0, 10.0),
            span_line("serve.forward", 7, 1_160.0, 100.0),
            span_line("serve.reply", 7, 1_170.0, 10.0),
            span_line("serve.request", 7, 1_170.0, 170.0),
            span_line("serve.request", 9, 2_000.0, 5.0),
            "{\"ts_us\":1,\"kind\":\"event\",\"path\":\"bench.cell\",\"fields\":{}}".to_string(),
            "{\"ts_us\":1,\"kind\":\"span\",\"path\":\"trainer.epoch\",\"fields\":{},\
             \"dur_us\":3}"
                .to_string(),
        ];
        let n = validate_trace_linkage(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(n, 2, "two distinct traces checked");
    }

    #[test]
    fn trace_linkage_rejects_broken_traces() {
        // serve span without a trace_id
        let missing = ["{\"ts_us\":1,\"kind\":\"span\",\"path\":\"serve.forward\",\"fields\":{},\
              \"dur_us\":1}"];
        assert!(validate_trace_linkage(missing.iter().copied()).is_err());
        // zero trace_id
        let zero = [span_line("serve.forward", 0, 10.0, 1.0)];
        assert!(validate_trace_linkage(zero.iter().map(String::as_str)).is_err());
        // stage span with no root
        let orphan = [span_line("serve.forward", 5, 10.0, 1.0)];
        assert!(validate_trace_linkage(orphan.iter().map(String::as_str)).is_err());
        // two roots for one trace
        let doubled =
            [span_line("serve.request", 5, 10.0, 5.0), span_line("serve.request", 5, 20.0, 5.0)];
        assert!(validate_trace_linkage(doubled.iter().map(String::as_str)).is_err());
        // stage escaping the root's window
        let escapee =
            [span_line("serve.request", 5, 100.0, 10.0), span_line("serve.fuse", 5, 200.0, 5.0)];
        assert!(validate_trace_linkage(escapee.iter().map(String::as_str)).is_err());
    }
}
