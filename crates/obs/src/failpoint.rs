//! Deterministic fault injection — failpoints.
//!
//! A *failpoint* is a named hook compiled into a recovery-critical code
//! path (the serve batch loop, the trainer epoch loop, the MOBO trial
//! loop, the checkpoint writer). In normal operation a hook costs exactly
//! one relaxed atomic load — the same discipline as the
//! [`span!`](crate::span)/[`event!`](crate::event) off switch. When armed,
//! a hook can be made to **panic** or to **return an injected error** on a
//! chosen hit, which is how the chaos tests prove that every shedding and
//! recovery path actually fires.
//!
//! ## Arming failpoints
//!
//! Via the environment (read once, at first use):
//!
//! ```text
//! LIGHTTS_FAILPOINTS=serve.batch=panic@3,mobo.trial=err@5
//! ```
//!
//! or programmatically (tests, embedders): [`set_failpoints`] /
//! [`clear_failpoints`]. The spec grammar is
//! `name=action[@n|%p][,name=action[@n|%p]…]` where `action` is `panic`
//! or `err`. The trigger suffix picks *when* the point fires:
//!
//! * no suffix — fire on every hit;
//! * `@n` (1-based) — fire *once*, on the `n`-th hit;
//! * `%p` (`0 < p ≤ 1`) — fire each hit independently with probability
//!   `p`, **deterministically**: whether hit `k` fires is a pure function
//!   of the seed ([`set_failpoint_seed`] / `LIGHTTS_FAILPOINT_SEED`, default
//!   `0x5EED`), the point name, and `k`, so a chaos soak replays its exact
//!   kill schedule under a fixed seed.
//!
//! The two suffixes are mutually exclusive per point.
//!
//! ## Using a failpoint in library code
//!
//! ```
//! # fn doit() -> Result<(), String> {
//! lightts_obs::failpoint::hit("mobo.trial").map_err(|what| what)?;
//! # Ok(())
//! # }
//! ```
//!
//! [`hit`] returns `Err(description)` for `err` actions (the caller maps
//! it into its own error type), panics for `panic` actions, and returns
//! `Ok(())` — after one relaxed load and nothing else — when no spec is
//! armed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a descriptive message (exercises `catch_unwind` paths).
    Panic,
    /// Return an injected error from [`hit`] (exercises `Err` recovery).
    Err,
}

/// When an armed failpoint fires, parsed from the trigger suffix.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// No suffix: fire on every hit.
    Every,
    /// `@n`: fire once, on the `n`-th hit (1-based).
    At(u64),
    /// `%p`: fire each hit independently with probability `p`, derived
    /// deterministically from (seed, point name, hit index).
    Prob(f64),
}

#[derive(Debug)]
struct Point {
    action: FailAction,
    trigger: Trigger,
    hits: u64,
}

struct FpState {
    armed: AtomicBool,
    /// Seed for `%p` probabilistic triggers (fixed in CI so a chaos soak
    /// replays its kill schedule).
    seed: AtomicU64,
    points: Mutex<HashMap<String, Point>>,
}

/// Default probabilistic-trigger seed when neither
/// `LIGHTTS_FAILPOINT_SEED` nor [`set_failpoint_seed`] picked one.
pub const DEFAULT_SEED: u64 = 0x5EED;

fn state() -> &'static FpState {
    static STATE: OnceLock<FpState> = OnceLock::new();
    STATE.get_or_init(|| {
        let seed = std::env::var("LIGHTTS_FAILPOINT_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SEED);
        let st = FpState {
            armed: AtomicBool::new(false),
            seed: AtomicU64::new(seed),
            points: Mutex::new(HashMap::new()),
        };
        if let Ok(spec) = std::env::var("LIGHTTS_FAILPOINTS") {
            if !spec.is_empty() {
                match parse_spec(&spec) {
                    Ok(map) => {
                        *st.points.lock().unwrap_or_else(PoisonError::into_inner) = map;
                        st.armed.store(true, Ordering::Relaxed);
                    }
                    Err(e) => eprintln!("lightts-obs: ignoring LIGHTTS_FAILPOINTS: {e}"),
                }
            }
        }
        st
    })
}

fn parse_spec(spec: &str) -> Result<HashMap<String, Point>, String> {
    let mut map = HashMap::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, rhs) = part.split_once('=').ok_or_else(|| format!("missing '=' in {part:?}"))?;
        let (action_str, trigger) = if let Some((a, n)) = rhs.split_once('@') {
            if a.contains('%') || n.contains('%') {
                return Err(format!("{part:?} mixes '@n' and '%p' triggers"));
            }
            let n: u64 = n.parse().map_err(|_| format!("bad hit index {n:?} in {part:?}"))?;
            if n == 0 {
                return Err(format!("hit index in {part:?} is 1-based, got 0"));
            }
            (a, Trigger::At(n))
        } else if let Some((a, p)) = rhs.split_once('%') {
            let p: f64 = p.parse().map_err(|_| format!("bad probability {p:?} in {part:?}"))?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("probability in {part:?} must be in (0, 1], got {p}"));
            }
            (a, Trigger::Prob(p))
        } else {
            (rhs, Trigger::Every)
        };
        let action = match action_str {
            "panic" => FailAction::Panic,
            "err" => FailAction::Err,
            other => return Err(format!("unknown action {other:?} in {part:?}")),
        };
        map.insert(name.trim().to_string(), Point { action, trigger, hits: 0 });
    }
    Ok(map)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a, mixing a point's name into its probabilistic-trigger stream so
/// two `%p` points armed together draw independent (but each
/// deterministic) schedules.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Whether a `%p` trigger fires on hit `k`: a pure function of (seed,
/// name, k), so a fixed seed replays the exact same schedule.
fn prob_fires(seed: u64, name: &str, k: u64, p: f64) -> bool {
    let x = splitmix64(seed ^ name_hash(name) ^ k);
    // Map the top 53 bits to a uniform fraction in [0, 1).
    let frac = (x >> 11) as f64 / (1u64 << 53) as f64;
    frac < p
}

/// Sets the seed for `%p` probabilistic triggers, overriding
/// `LIGHTTS_FAILPOINT_SEED` (which is read once, at first use). Does not
/// reset hit counts; re-arm via [`set_failpoints`] for a fresh schedule.
pub fn set_failpoint_seed(seed: u64) {
    state().seed.store(seed, Ordering::Relaxed);
}

/// Arms failpoints from a spec string, replacing any previous arming and
/// resetting all hit counts. An empty spec disarms everything (same as
/// [`clear_failpoints`]). Overrides `LIGHTTS_FAILPOINTS`.
pub fn set_failpoints(spec: &str) -> Result<(), String> {
    let map = parse_spec(spec)?;
    let st = state();
    let armed = !map.is_empty();
    *st.points.lock().unwrap_or_else(PoisonError::into_inner) = map;
    st.armed.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Disarms all failpoints; [`hit`] reverts to its one-atomic-load fast
/// path.
pub fn clear_failpoints() {
    let st = state();
    st.armed.store(false, Ordering::Relaxed);
    st.points.lock().unwrap_or_else(PoisonError::into_inner).clear();
}

/// Whether any failpoint is armed (one relaxed atomic load).
pub fn armed() -> bool {
    state().armed.load(Ordering::Relaxed)
}

/// Number of times the named point has been hit since arming (0 if it is
/// not armed; diagnostics for chaos tests).
pub fn hits(name: &str) -> u64 {
    if !armed() {
        return 0;
    }
    state().points.lock().unwrap_or_else(PoisonError::into_inner).get(name).map_or(0, |p| p.hits)
}

/// Marks a failpoint. Disabled cost: one relaxed atomic load.
///
/// When the named point is armed this increments its hit count and, if the
/// firing condition holds, either panics ([`FailAction::Panic`]) or
/// returns an `Err` describing the injection ([`FailAction::Err`]).
#[inline]
pub fn hit(name: &str) -> Result<(), String> {
    if !armed() {
        return Ok(());
    }
    hit_slow(name)
}

#[cold]
fn hit_slow(name: &str) -> Result<(), String> {
    let st = state();
    let seed = st.seed.load(Ordering::Relaxed);
    let mut points = st.points.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(p) = points.get_mut(name) else { return Ok(()) };
    p.hits += 1;
    let fire = match p.trigger {
        Trigger::At(n) => p.hits == n,
        Trigger::Prob(prob) => prob_fires(seed, name, p.hits, prob),
        Trigger::Every => true,
    };
    if !fire {
        return Ok(());
    }
    let msg = format!("failpoint {name:?} fired (hit {})", p.hits);
    match p.action {
        FailAction::Err => Err(msg),
        FailAction::Panic => {
            drop(points); // never poison our own mutex
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global failpoint table.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        crate::span::TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_hits_are_free_and_ok() {
        let _g = guard();
        clear_failpoints();
        assert!(!armed());
        assert!(hit("anything").is_ok());
        assert_eq!(hits("anything"), 0);
    }

    #[test]
    fn err_action_fires_once_at_index() {
        let _g = guard();
        set_failpoints("a.b=err@3").unwrap();
        assert!(hit("a.b").is_ok());
        assert!(hit("a.b").is_ok());
        let e = hit("a.b").unwrap_err();
        assert!(e.contains("a.b"), "{e}");
        // one-shot: subsequent hits pass
        assert!(hit("a.b").is_ok());
        assert_eq!(hits("a.b"), 4);
        // unarmed points are unaffected
        assert!(hit("other").is_ok());
        clear_failpoints();
    }

    #[test]
    fn err_without_index_fires_every_hit() {
        let _g = guard();
        set_failpoints("x=err").unwrap();
        assert!(hit("x").is_err());
        assert!(hit("x").is_err());
        clear_failpoints();
    }

    #[test]
    fn panic_action_panics_without_poisoning() {
        let _g = guard();
        set_failpoints("p=panic@1").unwrap();
        let r = std::panic::catch_unwind(|| hit("p"));
        assert!(r.is_err());
        // the table is still usable afterwards
        assert!(hit("p").is_ok());
        assert_eq!(hits("p"), 2);
        clear_failpoints();
    }

    #[test]
    fn rearming_resets_hit_counts() {
        let _g = guard();
        set_failpoints("a=err@2").unwrap();
        assert!(hit("a").is_ok());
        set_failpoints("a=err@2").unwrap();
        assert_eq!(hits("a"), 0);
        assert!(hit("a").is_ok());
        assert!(hit("a").is_err());
        clear_failpoints();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = guard();
        assert!(set_failpoints("noequals").is_err());
        assert!(set_failpoints("a=explode").is_err());
        assert!(set_failpoints("a=err@zero").is_err());
        assert!(set_failpoints("a=err@0").is_err());
        // probabilistic triggers: p must parse and sit in (0, 1]
        assert!(set_failpoints("a=err%zero").is_err());
        assert!(set_failpoints("a=err%0").is_err());
        assert!(set_failpoints("a=err%-0.5").is_err());
        assert!(set_failpoints("a=err%1.5").is_err());
        assert!(set_failpoints("a=err%NaN").is_err());
        // the two trigger suffixes are mutually exclusive
        assert!(set_failpoints("a=err@2%0.5").is_err());
        assert!(set_failpoints("a=err%0.5@2").is_err());
        // rejected specs must not arm anything
        assert!(!armed());
    }

    #[test]
    fn probabilistic_spec_parses_and_is_deterministic_under_a_seed() {
        let _g = guard();
        set_failpoint_seed(42);
        set_failpoints("p.q=err%0.5").unwrap();
        assert!(armed());
        let schedule: Vec<bool> = (0..64).map(|_| hit("p.q").is_err()).collect();
        // A 50% point over 64 hits fires at least once and passes at least
        // once (the seeded schedule is fixed, so this can never flake).
        assert!(schedule.iter().any(|&f| f));
        assert!(schedule.iter().any(|&f| !f));
        // Re-arming under the same seed replays the exact schedule.
        set_failpoints("p.q=err%0.5").unwrap();
        let replay: Vec<bool> = (0..64).map(|_| hit("p.q").is_err()).collect();
        assert_eq!(schedule, replay);
        // A different seed draws a different schedule (for these seeds).
        set_failpoint_seed(43);
        set_failpoints("p.q=err%0.5").unwrap();
        let other: Vec<bool> = (0..64).map(|_| hit("p.q").is_err()).collect();
        assert_ne!(schedule, other);
        // p = 1 fires on every hit.
        set_failpoints("p.q=err%1.0").unwrap();
        assert!(hit("p.q").is_err());
        assert!(hit("p.q").is_err());
        set_failpoint_seed(DEFAULT_SEED);
        clear_failpoints();
    }

    #[test]
    fn probabilistic_points_draw_independent_schedules_per_name() {
        let _g = guard();
        set_failpoint_seed(7);
        set_failpoints("alpha=err%0.5,beta=err%0.5").unwrap();
        let a: Vec<bool> = (0..64).map(|_| hit("alpha").is_err()).collect();
        let b: Vec<bool> = (0..64).map(|_| hit("beta").is_err()).collect();
        assert_ne!(a, b, "two %p points must not share one schedule");
        set_failpoint_seed(DEFAULT_SEED);
        clear_failpoints();
    }

    #[test]
    fn multi_point_specs_parse() {
        let _g = guard();
        set_failpoints("serve.batch=panic@3, mobo.trial=err@5").unwrap();
        assert!(armed());
        assert!(hit("mobo.trial").is_ok());
        assert_eq!(hits("mobo.trial"), 1);
        assert_eq!(hits("serve.batch"), 0);
        clear_failpoints();
    }
}
