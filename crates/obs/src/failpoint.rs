//! Deterministic fault injection — failpoints.
//!
//! A *failpoint* is a named hook compiled into a recovery-critical code
//! path (the serve batch loop, the trainer epoch loop, the MOBO trial
//! loop, the checkpoint writer). In normal operation a hook costs exactly
//! one relaxed atomic load — the same discipline as the
//! [`span!`](crate::span)/[`event!`](crate::event) off switch. When armed,
//! a hook can be made to **panic** or to **return an injected error** on a
//! chosen hit, which is how the chaos tests prove that every shedding and
//! recovery path actually fires.
//!
//! ## Arming failpoints
//!
//! Via the environment (read once, at first use):
//!
//! ```text
//! LIGHTTS_FAILPOINTS=serve.batch=panic@3,mobo.trial=err@5
//! ```
//!
//! or programmatically (tests, embedders): [`set_failpoints`] /
//! [`clear_failpoints`]. The spec grammar is
//! `name=action[@n][,name=action[@n]…]` where `action` is `panic` or
//! `err`, and `@n` (1-based) makes the point fire *once*, on its `n`-th
//! hit; without `@n` the point fires on every hit.
//!
//! ## Using a failpoint in library code
//!
//! ```
//! # fn doit() -> Result<(), String> {
//! lightts_obs::failpoint::hit("mobo.trial").map_err(|what| what)?;
//! # Ok(())
//! # }
//! ```
//!
//! [`hit`] returns `Err(description)` for `err` actions (the caller maps
//! it into its own error type), panics for `panic` actions, and returns
//! `Ok(())` — after one relaxed load and nothing else — when no spec is
//! armed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a descriptive message (exercises `catch_unwind` paths).
    Panic,
    /// Return an injected error from [`hit`] (exercises `Err` recovery).
    Err,
}

#[derive(Debug)]
struct Point {
    action: FailAction,
    /// 1-based hit index to fire at; `None` = fire on every hit.
    at: Option<u64>,
    hits: u64,
}

struct FpState {
    armed: AtomicBool,
    points: Mutex<HashMap<String, Point>>,
}

fn state() -> &'static FpState {
    static STATE: OnceLock<FpState> = OnceLock::new();
    STATE.get_or_init(|| {
        let st = FpState { armed: AtomicBool::new(false), points: Mutex::new(HashMap::new()) };
        if let Ok(spec) = std::env::var("LIGHTTS_FAILPOINTS") {
            if !spec.is_empty() {
                match parse_spec(&spec) {
                    Ok(map) => {
                        *st.points.lock().unwrap_or_else(PoisonError::into_inner) = map;
                        st.armed.store(true, Ordering::Relaxed);
                    }
                    Err(e) => eprintln!("lightts-obs: ignoring LIGHTTS_FAILPOINTS: {e}"),
                }
            }
        }
        st
    })
}

fn parse_spec(spec: &str) -> Result<HashMap<String, Point>, String> {
    let mut map = HashMap::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, rhs) = part.split_once('=').ok_or_else(|| format!("missing '=' in {part:?}"))?;
        let (action_str, at) = match rhs.split_once('@') {
            Some((a, n)) => {
                let n: u64 = n.parse().map_err(|_| format!("bad hit index {n:?} in {part:?}"))?;
                if n == 0 {
                    return Err(format!("hit index in {part:?} is 1-based, got 0"));
                }
                (a, Some(n))
            }
            None => (rhs, None),
        };
        let action = match action_str {
            "panic" => FailAction::Panic,
            "err" => FailAction::Err,
            other => return Err(format!("unknown action {other:?} in {part:?}")),
        };
        map.insert(name.trim().to_string(), Point { action, at, hits: 0 });
    }
    Ok(map)
}

/// Arms failpoints from a spec string, replacing any previous arming and
/// resetting all hit counts. An empty spec disarms everything (same as
/// [`clear_failpoints`]). Overrides `LIGHTTS_FAILPOINTS`.
pub fn set_failpoints(spec: &str) -> Result<(), String> {
    let map = parse_spec(spec)?;
    let st = state();
    let armed = !map.is_empty();
    *st.points.lock().unwrap_or_else(PoisonError::into_inner) = map;
    st.armed.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Disarms all failpoints; [`hit`] reverts to its one-atomic-load fast
/// path.
pub fn clear_failpoints() {
    let st = state();
    st.armed.store(false, Ordering::Relaxed);
    st.points.lock().unwrap_or_else(PoisonError::into_inner).clear();
}

/// Whether any failpoint is armed (one relaxed atomic load).
pub fn armed() -> bool {
    state().armed.load(Ordering::Relaxed)
}

/// Number of times the named point has been hit since arming (0 if it is
/// not armed; diagnostics for chaos tests).
pub fn hits(name: &str) -> u64 {
    if !armed() {
        return 0;
    }
    state().points.lock().unwrap_or_else(PoisonError::into_inner).get(name).map_or(0, |p| p.hits)
}

/// Marks a failpoint. Disabled cost: one relaxed atomic load.
///
/// When the named point is armed this increments its hit count and, if the
/// firing condition holds, either panics ([`FailAction::Panic`]) or
/// returns an `Err` describing the injection ([`FailAction::Err`]).
#[inline]
pub fn hit(name: &str) -> Result<(), String> {
    if !armed() {
        return Ok(());
    }
    hit_slow(name)
}

#[cold]
fn hit_slow(name: &str) -> Result<(), String> {
    let mut points = state().points.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(p) = points.get_mut(name) else { return Ok(()) };
    p.hits += 1;
    let fire = match p.at {
        Some(n) => p.hits == n,
        None => true,
    };
    if !fire {
        return Ok(());
    }
    let msg = format!("failpoint {name:?} fired (hit {})", p.hits);
    match p.action {
        FailAction::Err => Err(msg),
        FailAction::Panic => {
            drop(points); // never poison our own mutex
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global failpoint table.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        crate::span::TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_hits_are_free_and_ok() {
        let _g = guard();
        clear_failpoints();
        assert!(!armed());
        assert!(hit("anything").is_ok());
        assert_eq!(hits("anything"), 0);
    }

    #[test]
    fn err_action_fires_once_at_index() {
        let _g = guard();
        set_failpoints("a.b=err@3").unwrap();
        assert!(hit("a.b").is_ok());
        assert!(hit("a.b").is_ok());
        let e = hit("a.b").unwrap_err();
        assert!(e.contains("a.b"), "{e}");
        // one-shot: subsequent hits pass
        assert!(hit("a.b").is_ok());
        assert_eq!(hits("a.b"), 4);
        // unarmed points are unaffected
        assert!(hit("other").is_ok());
        clear_failpoints();
    }

    #[test]
    fn err_without_index_fires_every_hit() {
        let _g = guard();
        set_failpoints("x=err").unwrap();
        assert!(hit("x").is_err());
        assert!(hit("x").is_err());
        clear_failpoints();
    }

    #[test]
    fn panic_action_panics_without_poisoning() {
        let _g = guard();
        set_failpoints("p=panic@1").unwrap();
        let r = std::panic::catch_unwind(|| hit("p"));
        assert!(r.is_err());
        // the table is still usable afterwards
        assert!(hit("p").is_ok());
        assert_eq!(hits("p"), 2);
        clear_failpoints();
    }

    #[test]
    fn rearming_resets_hit_counts() {
        let _g = guard();
        set_failpoints("a=err@2").unwrap();
        assert!(hit("a").is_ok());
        set_failpoints("a=err@2").unwrap();
        assert_eq!(hits("a"), 0);
        assert!(hit("a").is_ok());
        assert!(hit("a").is_err());
        clear_failpoints();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = guard();
        assert!(set_failpoints("noequals").is_err());
        assert!(set_failpoints("a=explode").is_err());
        assert!(set_failpoints("a=err@zero").is_err());
        assert!(set_failpoints("a=err@0").is_err());
        // rejected specs must not arm anything
        assert!(!armed());
    }

    #[test]
    fn multi_point_specs_parse() {
        let _g = guard();
        set_failpoints("serve.batch=panic@3, mobo.trial=err@5").unwrap();
        assert!(armed());
        assert!(hit("mobo.trial").is_ok());
        assert_eq!(hits("mobo.trial"), 1);
        assert_eq!(hits("serve.batch"), 0);
        clear_failpoints();
    }
}
