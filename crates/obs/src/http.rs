//! The telemetry front door: a zero-dependency `std::net` HTTP/1.1 server
//! exposing the live metrics, traces, and profiles of a running process.
//!
//! | endpoint | body | content type |
//! |---|---|---|
//! | `GET /` | endpoint index | `text/plain` |
//! | `GET /metrics` | [`Snapshot::render_prometheus`] (or `render_openmetrics` with exemplars when the `Accept` header asks for `application/openmetrics-text`) | `text/plain; version=0.0.4` / `application/openmetrics-text; version=1.0.0` |
//! | `GET /metrics.json` | [`Snapshot::render_json`] | `application/json` |
//! | `GET /healthz` | liveness JSON (`status`, `uptime_us`, `scheduler_alive`, plus any [`TelemetryBuilder::health_detail`] fields such as serving's `shards_alive`/`shards_total`); `503` when the health callback reports dead | `application/json` |
//! | `GET /tracez` | the span ring's contents, one JSONL span per line | `application/x-ndjson` |
//! | `GET /profilez` | [`prof::render_collapsed`](crate::prof::render_collapsed) collapsed stacks | `text/plain` |
//!
//! The server is deliberately small: a blocking accept loop feeding a
//! bounded handful of worker threads over a channel — no async runtime, no
//! external crates, HTTP/1.1 with `Connection: close` on every response.
//! Scrapes are cheap (a registry snapshot) and rare (seconds apart), so
//! worker starvation means an overload response, not queueing: when all
//! workers are busy the accept loop answers `503` inline.
//!
//! Spawning the server also enables the span ring
//! ([`crate::trace::enable_ring`]) so `/tracez` works without any
//! `LIGHTTS_OBS` sink configured.
//!
//! ```no_run
//! use lightts_obs as obs;
//! let reg = std::sync::Arc::new(obs::Registry::new());
//! let srv = obs::http::spawn(reg, "127.0.0.1:0").unwrap();
//! println!("scrape me at http://{}/metrics", srv.addr());
//! ```

use crate::metrics::{Registry, Snapshot};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest accepted request line (method + target + version), bytes.
/// Longer request lines are answered `414 URI Too Long`.
pub const MAX_REQUEST_LINE: usize = 4096;
/// Longest accepted request head (request line + headers), bytes. Larger
/// requests are answered `413 Content Too Large`.
pub const MAX_REQUEST_HEAD: usize = 16 * 1024;
/// Number of worker threads serving parsed connections.
const WORKERS: usize = 4;
/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestLine {
    /// The method token (`GET`, `HEAD`, …), verbatim.
    pub method: String,
    /// The request target (path + optional query), verbatim.
    pub target: String,
    /// The HTTP version token (`HTTP/1.1`).
    pub version: String,
}

/// Why a request line failed to parse, mapped to the HTTP status the
/// server answers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Not `token SP target SP HTTP/x.y` — answered `400`.
    Malformed,
    /// Request line exceeded [`MAX_REQUEST_LINE`] — answered `414`.
    LineTooLong,
    /// Head exceeded [`MAX_REQUEST_HEAD`] — answered `413`.
    HeadTooLarge,
}

/// Parses one HTTP/1.x request line (the bytes before the first CRLF).
///
/// Total function over arbitrary bytes: never panics, rejects with a typed
/// [`ParseError`] instead (a proptest pins this). Oversized input fails
/// with [`ParseError::LineTooLong`] before any splitting.
pub fn parse_request_line(line: &[u8]) -> Result<RequestLine, ParseError> {
    if line.len() > MAX_REQUEST_LINE {
        return Err(ParseError::LineTooLong);
    }
    let text = std::str::from_utf8(line).map_err(|_| ParseError::Malformed)?;
    let text = text.strip_suffix('\r').unwrap_or(text);
    let mut parts = text.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::Malformed),
    };
    let token_ok = |s: &str| {
        !s.is_empty()
            && s.bytes().all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
    };
    if !token_ok(method) {
        return Err(ParseError::Malformed);
    }
    if target.is_empty() || target.bytes().any(|b| !(0x21..=0x7e).contains(&b)) {
        return Err(ParseError::Malformed);
    }
    if !version.starts_with("HTTP/") || version.len() < 8 {
        return Err(ParseError::Malformed);
    }
    Ok(RequestLine {
        method: method.to_string(),
        target: target.to_string(),
        version: version.to_string(),
    })
}

/// A handle to a running telemetry server; dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop and joins every
/// worker.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The registry a telemetry server scrapes: a shared per-server registry
/// (serving) or the process-global one (experiment binaries). Both
/// [`Arc<Registry>`] and [`&'static Registry`](crate::global) convert into
/// it, so `spawn(server.metrics(), …)` and `spawn(obs::global(), …)` both
/// read naturally.
pub enum RegistrySource {
    /// A shared registry (e.g. a serve instance's per-server registry).
    Shared(Arc<Registry>),
    /// The process-global registry ([`crate::global`]).
    Global(&'static Registry),
}

impl RegistrySource {
    fn snapshot(&self) -> Snapshot {
        match self {
            RegistrySource::Shared(r) => r.snapshot(),
            RegistrySource::Global(r) => r.snapshot(),
        }
    }
}

impl From<Arc<Registry>> for RegistrySource {
    fn from(r: Arc<Registry>) -> RegistrySource {
        RegistrySource::Shared(r)
    }
}

impl From<&'static Registry> for RegistrySource {
    fn from(r: &'static Registry) -> RegistrySource {
        RegistrySource::Global(r)
    }
}

/// Extra `/healthz` body fields: `(name, value)` pairs rendered as
/// numeric JSON members (e.g. `"shards_alive":3`).
pub type HealthDetail = Vec<(String, i64)>;

/// What the endpoints serve: the scrape registry, the optional health
/// callbacks, and the start instant for uptime.
struct Telemetry {
    registry: RegistrySource,
    health: Option<Box<dyn Fn() -> bool + Send + Sync>>,
    health_status: Option<Box<dyn Fn() -> String + Send + Sync>>,
    health_detail: Option<Box<dyn Fn() -> HealthDetail + Send + Sync>>,
    started: Instant,
}

/// Configures and spawns a [`TelemetryServer`].
pub struct TelemetryBuilder {
    registry: RegistrySource,
    health: Option<Box<dyn Fn() -> bool + Send + Sync>>,
    health_status: Option<Box<dyn Fn() -> String + Send + Sync>>,
    health_detail: Option<Box<dyn Fn() -> HealthDetail + Send + Sync>>,
    ring_capacity: usize,
}

impl TelemetryBuilder {
    /// Starts a builder serving `registry` from `/metrics`.
    pub fn new(registry: impl Into<RegistrySource>) -> TelemetryBuilder {
        TelemetryBuilder {
            registry: registry.into(),
            health: None,
            health_status: None,
            health_detail: None,
            ring_capacity: crate::trace::DEFAULT_RING_CAPACITY,
        }
    }

    /// Attaches a liveness callback: `/healthz` answers `503` (with
    /// `"scheduler_alive":false`) once it returns `false`. Without one,
    /// `/healthz` reports process liveness only (`"scheduler_alive":null`).
    pub fn health(mut self, f: impl Fn() -> bool + Send + Sync + 'static) -> TelemetryBuilder {
        self.health = Some(Box::new(f));
        self
    }

    /// Attaches a status-string callback refining the `/healthz` `status`
    /// field while the [`health`](Self::health) callback still reports
    /// *alive*: the serving runtime reports `"recovering"` while a dead
    /// shard is being respawned and `"degraded"` once a shard is
    /// permanently failed. Ignored when the health callback reports dead
    /// (the status is always `"unhealthy"` then), and the status *code*
    /// stays `200` — only [`health`](Self::health) controls the code.
    pub fn health_status(
        mut self,
        f: impl Fn() -> String + Send + Sync + 'static,
    ) -> TelemetryBuilder {
        self.health_status = Some(Box::new(f));
        self
    }

    /// Attaches a detail callback: its `(name, value)` pairs are rendered
    /// into the `/healthz` body as additional numeric JSON fields on every
    /// scrape. The sharded serving runtime uses this to report
    /// `shards_alive`/`shards_total` alongside the boolean liveness bit —
    /// a partially degraded server stays `200` (only the [`health`]
    /// callback controls the status code) but shows how degraded it is.
    ///
    /// [`health`]: Self::health
    pub fn health_detail(
        mut self,
        f: impl Fn() -> HealthDetail + Send + Sync + 'static,
    ) -> TelemetryBuilder {
        self.health_detail = Some(Box::new(f));
        self
    }

    /// Overrides the `/tracez` span-ring capacity (default
    /// [`DEFAULT_RING_CAPACITY`](crate::trace::DEFAULT_RING_CAPACITY)).
    pub fn ring_capacity(mut self, n: usize) -> TelemetryBuilder {
        self.ring_capacity = n;
        self
    }

    /// Binds `addr` and spawns the accept loop + worker threads.
    pub fn spawn(self, addr: impl ToSocketAddrs) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        crate::trace::enable_ring(self.ring_capacity);
        let telemetry = Arc::new(Telemetry {
            registry: self.registry,
            health: self.health,
            health_status: self.health_status,
            health_detail: self.health_detail,
            started: Instant::now(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(WORKERS * 2);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..WORKERS)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let telemetry = Arc::clone(&telemetry);
                std::thread::Builder::new()
                    .name(format!("lightts-telemetry-{i}"))
                    .spawn(move || loop {
                        let conn = {
                            let guard =
                                rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        match conn {
                            Ok(stream) => handle_connection(stream, &telemetry),
                            Err(_) => return, // accept loop gone: drain done
                        }
                    })
                    .expect("spawn telemetry worker")
            })
            .collect();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("lightts-telemetry-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                        if let Err(mpsc::TrySendError::Full(stream)) = tx.try_send(stream) {
                            // Every worker busy and the backlog full: shed.
                            let mut stream = stream;
                            let _ = write_response(
                                &mut stream,
                                503,
                                "Service Unavailable",
                                "text/plain; charset=utf-8",
                                "telemetry workers saturated\n",
                            );
                        }
                    }
                    // Dropping `tx` disconnects the channel; workers exit
                    // after serving whatever was already queued.
                })
                .expect("spawn telemetry accept loop")
        };
        Ok(TelemetryServer { addr: local, stop, accept_thread: Some(accept_thread), workers })
    }
}

/// Spawns a telemetry server over `registry` on `addr` with default
/// options — the one-liner for trainer / MOBO / bench runs:
///
/// ```no_run
/// # let registry = std::sync::Arc::new(lightts_obs::Registry::new());
/// let srv = lightts_obs::http::spawn(registry, "127.0.0.1:9464").unwrap();
/// ```
pub fn spawn(
    registry: impl Into<RegistrySource>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<TelemetryServer> {
    TelemetryBuilder::new(registry).spawn(addr)
}

/// Spawns a telemetry server on the address named by the
/// `LIGHTTS_TELEMETRY_ADDR` environment variable, or returns `Ok(None)`
/// when it is unset/empty. The experiment binaries call this at startup so
/// any long run can be scraped by exporting one variable.
pub fn spawn_from_env(
    registry: impl Into<RegistrySource>,
) -> std::io::Result<Option<TelemetryServer>> {
    match std::env::var("LIGHTTS_TELEMETRY_ADDR") {
        Ok(addr) if !addr.is_empty() => spawn(registry, addr.as_str()).map(Some),
        _ => Ok(None),
    }
}

/// Reads the request head (up to the blank line), honouring the size caps.
fn read_head(stream: &mut TcpStream) -> Result<Vec<u8>, ParseError> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        head.extend_from_slice(&buf[..n]);
        if head.len() > MAX_REQUEST_HEAD {
            return Err(ParseError::HeadTooLarge);
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        // A request line longer than the cap can never become valid.
        if !head.contains(&b'\n') && head.len() > MAX_REQUEST_LINE {
            return Err(ParseError::LineTooLong);
        }
    }
    Ok(head)
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Whether the request head asks for the OpenMetrics exposition format.
fn wants_openmetrics(head: &[u8]) -> bool {
    let text = String::from_utf8_lossy(head).to_ascii_lowercase();
    text.lines().any(|l| {
        l.strip_prefix("accept:").is_some_and(|v| v.contains("application/openmetrics-text"))
    })
}

fn healthz_body(t: &Telemetry, alive: Option<bool>) -> String {
    let status = if alive == Some(false) {
        "unhealthy".to_string()
    } else {
        t.health_status.as_ref().map_or_else(|| "ok".to_string(), |f| f())
    };
    let alive_json = match alive {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    };
    let mut detail = String::new();
    if let Some(f) = &t.health_detail {
        for (name, value) in f() {
            detail.push_str(&format!(",\"{name}\":{value}"));
        }
    }
    format!(
        "{{\"status\":\"{status}\",\"uptime_us\":{},\"scheduler_alive\":{alive_json}{detail}}}\n",
        t.started.elapsed().as_micros()
    )
}

fn handle_connection(mut stream: TcpStream, t: &Telemetry) {
    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(ParseError::HeadTooLarge) => {
            let _ = write_response(
                &mut stream,
                413,
                "Content Too Large",
                "text/plain; charset=utf-8",
                "request head too large\n",
            );
            return;
        }
        Err(_) => {
            let _ = write_response(
                &mut stream,
                414,
                "URI Too Long",
                "text/plain; charset=utf-8",
                "request line too long\n",
            );
            return;
        }
    };
    let line_end = head.iter().position(|&b| b == b'\n').unwrap_or(head.len());
    let req = match parse_request_line(&head[..line_end]) {
        Ok(r) => r,
        Err(ParseError::LineTooLong) => {
            let _ = write_response(
                &mut stream,
                414,
                "URI Too Long",
                "text/plain; charset=utf-8",
                "request line too long\n",
            );
            return;
        }
        Err(_) => {
            let _ = write_response(
                &mut stream,
                400,
                "Bad Request",
                "text/plain; charset=utf-8",
                "malformed request line\n",
            );
            return;
        }
    };
    if req.method != "GET" {
        let _ = write_response(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
        return;
    }
    let path = req.target.split('?').next().unwrap_or("");
    let snapshot = || -> Snapshot { t.registry.snapshot() };
    match path {
        "/" => {
            let _ = write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; charset=utf-8",
                "lightts telemetry\n\n/metrics\n/metrics.json\n/healthz\n/tracez\n/profilez\n",
            );
        }
        "/metrics" => {
            if wants_openmetrics(&head) {
                let _ = write_response(
                    &mut stream,
                    200,
                    "OK",
                    "application/openmetrics-text; version=1.0.0; charset=utf-8",
                    &snapshot().render_openmetrics(),
                );
            } else {
                let _ = write_response(
                    &mut stream,
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &snapshot().render_prometheus(),
                );
            }
        }
        "/metrics.json" => {
            let mut body = snapshot().render_json();
            body.push('\n');
            let _ = write_response(&mut stream, 200, "OK", "application/json", &body);
        }
        "/healthz" => {
            let alive = t.health.as_ref().map(|f| f());
            let body = healthz_body(t, alive);
            if alive == Some(false) {
                let _ = write_response(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "application/json",
                    &body,
                );
            } else {
                let _ = write_response(&mut stream, 200, "OK", "application/json", &body);
            }
        }
        "/tracez" => {
            let mut body = crate::trace::tracez_lines().join("\n");
            if !body.is_empty() {
                body.push('\n');
            }
            let _ = write_response(&mut stream, 200, "OK", "application/x-ndjson", &body);
        }
        "/profilez" => {
            let _ = write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; charset=utf-8",
                &crate::prof::render_collapsed(),
            );
        }
        _ => {
            let _ = write_response(
                &mut stream,
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "unknown endpoint\n",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_rejects() {
        let ok = parse_request_line(b"GET /metrics HTTP/1.1\r").unwrap();
        assert_eq!(ok.method, "GET");
        assert_eq!(ok.target, "/metrics");
        assert_eq!(ok.version, "HTTP/1.1");
        for bad in [
            &b"GET /metrics"[..],
            b"GET  /metrics HTTP/1.1",
            b"GET /metrics HTTP/1.1 extra",
            b"/metrics GET HTTP/1.1",
            b"GET /me trics HTTP/1.1",
            b"GET /metrics FTP/1.1",
            b"\xff\xfe /x HTTP/1.1",
            b"",
        ] {
            assert_eq!(parse_request_line(bad), Err(ParseError::Malformed), "{bad:?}");
        }
        let long = vec![b'a'; MAX_REQUEST_LINE + 1];
        assert_eq!(parse_request_line(&long), Err(ParseError::LineTooLong));
    }

    #[test]
    fn healthz_body_shapes() {
        let t = Telemetry {
            registry: Arc::new(Registry::new()).into(),
            health: None,
            health_status: None,
            health_detail: None,
            started: Instant::now(),
        };
        let body = healthz_body(&t, None);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"scheduler_alive\":null"), "{body}");
        let body = healthz_body(&t, Some(false));
        assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
        crate::jsonl::parse(body.trim()).expect("healthz JSON parses");
    }

    #[test]
    fn healthz_status_callback_refines_status_only_while_alive() {
        let t = Telemetry {
            registry: Arc::new(Registry::new()).into(),
            health: None,
            health_status: Some(Box::new(|| "recovering".to_string())),
            health_detail: None,
            started: Instant::now(),
        };
        let body = healthz_body(&t, Some(true));
        assert!(body.contains("\"status\":\"recovering\""), "{body}");
        // A dead health callback always wins: unhealthy, not the refinement.
        let body = healthz_body(&t, Some(false));
        assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
        crate::jsonl::parse(body.trim()).expect("healthz JSON parses");
    }

    #[test]
    fn healthz_body_renders_detail_fields() {
        let t = Telemetry {
            registry: Arc::new(Registry::new()).into(),
            health: None,
            health_status: None,
            health_detail: Some(Box::new(|| {
                vec![("shards_alive".to_string(), 3), ("shards_total".to_string(), 4)]
            })),
            started: Instant::now(),
        };
        let body = healthz_body(&t, Some(true));
        assert!(body.contains("\"shards_alive\":3"), "{body}");
        assert!(body.contains("\"shards_total\":4"), "{body}");
        crate::jsonl::parse(body.trim()).expect("healthz JSON with detail parses");
    }

    #[test]
    fn accept_header_negotiates_openmetrics() {
        assert!(wants_openmetrics(
            b"GET /metrics HTTP/1.1\r\nAccept: application/openmetrics-text; version=1.0.0\r\n\r\n"
        ));
        assert!(!wants_openmetrics(b"GET /metrics HTTP/1.1\r\nAccept: text/plain\r\n\r\n"));
        assert!(!wants_openmetrics(b"GET /metrics HTTP/1.1\r\n\r\n"));
    }
}
