//! An always-cheap hierarchical profiler.
//!
//! [`scope`] opens an RAII timer named after its call site; nested scopes
//! build a dotted-at-semicolons *stack path* (`serve.forward;conv.lowered_fwd;gemm.panel`)
//! and every completed scope adds its wall-clock to a process-global,
//! path-keyed call tree (cumulative nanoseconds + hit count per path).
//! [`render_collapsed`] dumps the tree in the collapsed-stack format that
//! `flamegraph.pl` and speedscope consume directly — one line per path,
//! value = **self** nanoseconds (cumulative minus direct children), so the
//! flamegraph's visual widths are correct without double counting.
//!
//! ## The off switch
//!
//! Profiling follows the `LIGHTTS_PROF` environment variable (same contract
//! as `LIGHTTS_OBS`): unset/`0`/`off`/`false` disables it, anything else
//! enables it, and [`set_enabled`] overrides programmatically. When off, a
//! [`scope`] costs exactly **one relaxed atomic load** — no clock read, no
//! thread-local access, no allocation, and crucially **no tree nodes are
//! ever created** ([`node_count`] stays 0; a regression test pins this).
//! The hooks therefore live permanently inside the GEMM panel, the conv
//! lowerings, the quantized kernels, and the serve forward, and a live
//! process answers "where did the milliseconds go" the moment
//! `LIGHTTS_PROF=1` (or [`set_enabled`]`(true)`) is in effect — no rerun,
//! no recompile.
//!
//! ## Aggregation model
//!
//! Each thread keeps its own current stack (profiling a parallel kernel
//! from pool workers roots those samples at the kernel's own name), but all
//! threads aggregate into one global tree keyed by the full stack path, so
//! identical paths merge across threads exactly like merged flamegraph
//! samples. The per-(thread, path) node handle is cached thread-locally
//! after the first hit; the steady-state enter/exit cost is a thread-local
//! lookup plus two relaxed atomic adds.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One aggregated call-tree node (shared by every thread that visits the
/// same stack path).
#[derive(Debug, Default)]
struct Node {
    /// Cumulative wall-clock spent inside this path, nanoseconds.
    cum_ns: AtomicU64,
    /// Completed visits.
    hits: AtomicU64,
}

/// The global tree: full stack path → node. Locked only on the first visit
/// of a path per thread (thereafter the handle comes from a thread-local
/// cache); the hot path is atomics only.
fn tree() -> &'static Mutex<HashMap<String, Arc<Node>>> {
    static TREE: OnceLock<Mutex<HashMap<String, Arc<Node>>>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = match std::env::var("LIGHTTS_PROF") {
            Err(_) => false,
            Ok(v) => !matches!(v.as_str(), "" | "0" | "off" | "false"),
        };
        AtomicBool::new(on)
    })
}

/// Whether profiling is on — one relaxed atomic load, the permanent
/// hot-path check inside every instrumented kernel.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Turns profiling on or off, overriding `LIGHTTS_PROF`.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

thread_local! {
    /// This thread's current stack path and its path→node handle cache.
    static STACK: RefCell<ThreadStack> = RefCell::new(ThreadStack::default());
}

#[derive(Default)]
struct ThreadStack {
    /// Current stack path, segments joined by `;`.
    path: String,
    /// Byte length of `path` before each open scope (for truncate-on-exit).
    marks: Vec<usize>,
    /// Path → node cache so the global mutex is off the steady-state path.
    cache: HashMap<String, Arc<Node>>,
}

impl ThreadStack {
    fn enter(&mut self, name: &'static str) -> Arc<Node> {
        self.marks.push(self.path.len());
        if !self.path.is_empty() {
            self.path.push(';');
        }
        self.path.push_str(name);
        if let Some(n) = self.cache.get(&self.path) {
            return Arc::clone(n);
        }
        let node = {
            let mut t = tree().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(t.entry(self.path.clone()).or_default())
        };
        self.cache.insert(self.path.clone(), Arc::clone(&node));
        node
    }

    fn exit(&mut self) {
        if let Some(mark) = self.marks.pop() {
            self.path.truncate(mark);
        }
    }
}

/// An open profiling scope; closes (and records) on drop.
///
/// Inert — holding no node, reading no clock — when profiling is off.
/// `!Send`: a scope must close on the thread that opened it (its stack
/// bookkeeping is thread-local).
pub struct ProfGuard(Option<(Arc<Node>, Instant)>, std::marker::PhantomData<*const ()>);

/// Opens a profiling scope named `name` under the thread's current stack.
///
/// `name` should be a short dotted identifier (`gemm.panel`,
/// `conv.lowered_fwd`); `;` is reserved as the stack separator and must not
/// appear in it.
#[inline]
pub fn scope(name: &'static str) -> ProfGuard {
    if !enabled() {
        return ProfGuard(None, std::marker::PhantomData);
    }
    let node = STACK.with(|s| s.borrow_mut().enter(name));
    ProfGuard(Some((node, Instant::now())), std::marker::PhantomData)
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        let Some((node, start)) = self.0.take() else { return };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        node.cum_ns.fetch_add(ns, Ordering::Relaxed);
        node.hits.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| s.borrow_mut().exit());
    }
}

/// One row of [`snapshot`]: a stack path with its aggregated totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfEntry {
    /// Full stack path, segments joined by `;`.
    pub path: String,
    /// Cumulative nanoseconds inside this path (including children).
    pub cum_ns: u64,
    /// Nanoseconds not attributed to any direct child (`cum − Σ children`,
    /// clamped at 0 against concurrent-update skew).
    pub self_ns: u64,
    /// Completed visits.
    pub hits: u64,
}

/// Number of distinct stack paths in the tree (0 until the first enabled
/// scope completes — the zero-overhead regression test's assertion).
pub fn node_count() -> usize {
    tree().lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
}

/// Clears the tree (tests; live use never needs it — the tree only grows
/// with distinct paths, not with samples).
pub fn reset() {
    tree().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    // Thread-local caches may still hold handles to orphaned nodes; those
    // nodes keep accumulating harmlessly but are no longer rendered. Tests
    // that reset must re-enter scopes from a fresh path set anyway.
}

/// A consistent-by-path dump of the whole tree, path-sorted.
pub fn snapshot() -> Vec<ProfEntry> {
    let rows: Vec<(String, u64, u64)> = {
        let t = tree().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        t.iter()
            .map(|(p, n)| {
                (p.clone(), n.cum_ns.load(Ordering::Relaxed), n.hits.load(Ordering::Relaxed))
            })
            .collect()
    };
    let mut out: Vec<ProfEntry> = rows
        .iter()
        .map(|(path, cum, hits)| {
            let prefix = format!("{path};");
            let children: u64 = rows
                .iter()
                .filter(|(p, _, _)| p.starts_with(&prefix) && !p[prefix.len()..].contains(';'))
                .map(|(_, c, _)| *c)
                .sum();
            ProfEntry {
                path: path.clone(),
                cum_ns: *cum,
                self_ns: cum.saturating_sub(children),
                hits: *hits,
            }
        })
        .collect();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

/// Renders the tree as collapsed stacks: one `path self_ns` line per path
/// with non-zero self time, ready for `flamegraph.pl` (value unit:
/// nanoseconds). Empty string when nothing has been profiled.
pub fn render_collapsed() -> String {
    let mut out = String::new();
    for e in snapshot() {
        if e.self_ns > 0 {
            out.push_str(&e.path);
            out.push(' ');
            out.push_str(&e.self_ns.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global enabled flag + tree.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_scopes_create_no_nodes() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let _a = scope("test_prof_off.outer");
            let _b = scope("test_prof_off.inner");
        }
        assert_eq!(
            snapshot().iter().filter(|e| e.path.contains("test_prof_off")).count(),
            0,
            "disabled profiling must not allocate tree nodes"
        );
    }

    #[test]
    fn nested_scopes_build_stack_paths_with_self_time() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _a = scope("tp.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = scope("tp.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let snap = snapshot();
        let outer = snap.iter().find(|e| e.path == "tp.outer").expect("outer node");
        let inner = snap.iter().find(|e| e.path == "tp.outer;tp.inner").expect("nested node");
        assert_eq!(outer.hits, 1);
        assert_eq!(inner.hits, 1);
        assert!(outer.cum_ns >= inner.cum_ns, "parent cum covers child");
        assert!(
            outer.self_ns <= outer.cum_ns - inner.cum_ns + 1,
            "self excludes the direct child: {outer:?} vs {inner:?}"
        );
        let dump = render_collapsed();
        assert!(dump.contains("tp.outer;tp.inner "), "{dump}");
        for line in dump.lines() {
            let (path, val) = line.rsplit_once(' ').expect("`path value` shape");
            assert!(!path.is_empty());
            val.parse::<u64>().expect("numeric self-ns");
        }
    }

    #[test]
    fn sibling_scopes_do_not_nest() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _a = scope("ts.first");
        }
        {
            let _b = scope("ts.second");
        }
        set_enabled(false);
        let snap = snapshot();
        assert!(snap.iter().any(|e| e.path == "ts.first"));
        assert!(snap.iter().any(|e| e.path == "ts.second"));
        assert!(!snap.iter().any(|e| e.path.contains("ts.first;ts.second")));
    }

    #[test]
    fn threads_merge_into_one_tree_by_path() {
        let _g = guard();
        set_enabled(true);
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = scope("tm.kernel");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let snap = snapshot();
        let k = snap.iter().find(|e| e.path == "tm.kernel").expect("merged node");
        assert_eq!(k.hits, 4, "4 threads → 4 hits on one merged path");
    }
}
