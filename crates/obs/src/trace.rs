//! Request-scoped trace context and the `/tracez` span ring buffer.
//!
//! A [`TraceCtx`] is minted once per request at the serving front door
//! ([`TraceCtx::mint`]) and carried through every stage the request
//! touches — queue, batch fusion, forward, reply. Each stage stamps the
//! context's `trace_id` on the span line it emits, so grepping one id out
//! of a trace file (or `GET /tracez`) reconstructs that request's full
//! queue-wait / fuse / forward / reply timing breakdown.
//!
//! Timestamps derived from a context ([`TraceCtx::ts_us_at`]) are computed
//! as `submit_us + (instant − anchor)` against the *same* monotonic anchor
//! captured at mint time, so the stage spans of one trace nest exactly
//! inside the root span's `[submit, reply]` range — the invariant
//! `jsonl::validate_trace_linkage` checks.
//!
//! The **span ring** is a fixed-capacity buffer of the most recently
//! completed span lines, independent of the `LIGHTTS_OBS` sink: enabling it
//! (the telemetry HTTP server does so on startup) makes `GET /tracez` serve
//! live spans even when no JSONL sink is configured. When the ring is off
//! (the default) it costs nothing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Default ring capacity used by the telemetry HTTP server.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Returns a fresh process-unique, non-zero trace id.
///
/// Ids are a splitmix64 hash of a monotone counter seeded from the wall
/// clock at first use, truncated to **48 bits** so they survive a round
/// trip through any JSON reader that holds numbers as `f64` (exact below
/// 2⁵³) — trace ids travel as plain numeric span fields. Zero is reserved
/// as "no trace" (histogram exemplar slots use it as the empty marker).
pub fn next_trace_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(1)
    });
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n)) & ((1u64 << 48) - 1);
        if id != 0 {
            return id;
        }
    }
}

/// Per-request trace context: a process-unique id plus the submit
/// timestamp in both clock domains (wall for export, monotonic for exact
/// stage arithmetic).
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    /// Non-zero process-unique request id.
    pub trace_id: u64,
    /// Wall-clock submit time, µs since the UNIX epoch — the root span's
    /// start.
    pub submit_us: u64,
    /// Monotonic anchor captured at the same moment as `submit_us`.
    anchor: Instant,
}

impl TraceCtx {
    /// Mints a context for a request entering the system now.
    pub fn mint() -> TraceCtx {
        let submit_us =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0);
        TraceCtx { trace_id: next_trace_id(), submit_us, anchor: Instant::now() }
    }

    /// The monotonic anchor captured at mint time (pair stage `Instant`s
    /// against this for exact in-trace arithmetic).
    pub fn anchor(&self) -> Instant {
        self.anchor
    }

    /// The wall-clock µs timestamp corresponding to the monotonic `at`,
    /// derived arithmetically from the mint anchor — never re-reads the
    /// wall clock, so stage timestamps of one trace are mutually exact.
    pub fn ts_us_at(&self, at: Instant) -> u64 {
        self.submit_us + at.saturating_duration_since(self.anchor).as_micros() as u64
    }

    /// Elapsed time from the mint anchor to `at`.
    pub fn since_submit(&self, at: Instant) -> Duration {
        at.saturating_duration_since(self.anchor)
    }
}

struct Ring {
    lines: VecDeque<String>,
    capacity: usize,
}

fn ring() -> &'static Mutex<Option<Ring>> {
    static RING: OnceLock<Mutex<Option<Ring>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(None))
}

/// Fast-path flag mirroring whether the ring is enabled (one relaxed load
/// on every span drop).
static RING_ON: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the span ring is capturing (one relaxed atomic load).
#[inline]
pub fn ring_enabled() -> bool {
    RING_ON.load(Ordering::Relaxed)
}

/// Enables the span ring with the given capacity (replacing any existing
/// ring and its contents; a 0 is treated as 1). Completed spans start
/// landing in `GET /tracez` / [`tracez_lines`] from this point on.
pub fn enable_ring(capacity: usize) {
    let mut r = ring().lock().unwrap_or_else(PoisonError::into_inner);
    *r = Some(Ring { lines: VecDeque::new(), capacity: capacity.max(1) });
    RING_ON.store(true, Ordering::Relaxed);
    crate::span::set_ring_capture(true);
}

/// Disables the ring and drops its contents.
pub fn disable_ring() {
    RING_ON.store(false, Ordering::Relaxed);
    crate::span::set_ring_capture(false);
    *ring().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Pushes one completed span line (called from the span layer; no-op when
/// the ring is off).
pub(crate) fn push_span_line(line: &str) {
    if !ring_enabled() {
        return;
    }
    let mut guard = ring().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(r) = guard.as_mut() {
        if r.lines.len() == r.capacity {
            r.lines.pop_front();
        }
        r.lines.push_back(line.to_string());
    }
}

/// The ring's current contents, oldest first (empty when the ring is off).
pub fn tracez_lines() -> Vec<String> {
    let guard = ring().lock().unwrap_or_else(PoisonError::into_inner);
    guard.as_ref().map(|r| r.lines.iter().cloned().collect()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_non_zero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }

    #[test]
    fn ctx_timestamps_are_monotone_and_anchored() {
        let ctx = TraceCtx::mint();
        let t1 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let t2 = Instant::now();
        let a = ctx.ts_us_at(t1);
        let b = ctx.ts_us_at(t2);
        assert!(a >= ctx.submit_us);
        assert!(b >= a + 1_000, "2ms apart must be ≥1000µs apart: {a} vs {b}");
    }

    #[test]
    fn ring_keeps_last_n_lines() {
        let _g = crate::span::test_lock();
        enable_ring(3);
        for i in 0..5 {
            push_span_line(&format!("line{i}"));
        }
        assert_eq!(tracez_lines(), vec!["line2", "line3", "line4"]);
        disable_ring();
        assert!(tracez_lines().is_empty());
        push_span_line("ignored");
        assert!(tracez_lines().is_empty());
    }
}
