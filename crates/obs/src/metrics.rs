//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms with lock-free hot paths.
//!
//! Metric handles are `Arc`s shared between the registry and every
//! instrumentation site; updates are single atomic operations, so a metric
//! can be hammered from the serving scheduler or the training loop without
//! contention. The registry's mutex is only taken on the cold paths —
//! get-or-create by name, and [`Registry::snapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of power-of-two buckets in a [`Histogram`] (covers all of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`sub`](Self::sub)).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (a running-maximum gauge).
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Returns the bucket index of `v`: `floor(log2(max(v, 1)))`.
///
/// Bucket `i` holds values in `[2^i, 2^(i+1))`, except bucket 0, which
/// holds `{0, 1}`. With nanosecond inputs the relative resolution is a
/// factor of two per bucket — coarse for exact statistics, plenty for
/// latency quantiles spanning nine orders of magnitude.
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0).
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the last bucket,
/// whose true bound `2^64` is not representable).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// A log-bucketed histogram of `u64` observations (typically nanoseconds).
///
/// Recording is three relaxed atomic adds — no locks, no allocation; the
/// exact `count` and `sum` ride along with the buckets so means are exact
/// and only quantiles pay the bucket resolution.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Last exemplar trace id per bucket (0 = none); see
    /// [`record_with_exemplar`](Self::record_with_exemplar).
    exemplar_ids: [AtomicU64; HISTOGRAM_BUCKETS],
    /// The observed value that carried each bucket's exemplar.
    exemplar_vals: [AtomicU64; HISTOGRAM_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)] // const used purely as an array initializer
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; 64],
            exemplar_ids: [ZERO; 64],
            exemplar_vals: [ZERO; 64],
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one observation and stamps it as the bucket's **exemplar**:
    /// the last `(value, trace_id)` pair to land in each bucket, exported
    /// in the OpenMetrics rendering and the JSON dump so a scrape can
    /// answer "show me a request that hit this latency bucket". A
    /// `trace_id` of 0 records the value without touching the exemplar.
    pub fn record_with_exemplar(&self, v: u64, trace_id: u64) {
        self.record(v);
        if trace_id != 0 {
            let i = bucket_index(v);
            self.exemplar_vals[i].store(v, Ordering::Relaxed);
            self.exemplar_ids[i].store(trace_id, Ordering::Relaxed);
        }
    }

    /// [`record_with_exemplar`](Self::record_with_exemplar) for a duration.
    pub fn record_duration_with_exemplar(&self, d: Duration, trace_id: u64) {
        self.record_with_exemplar(d.as_nanos().min(u64::MAX as u128) as u64, trace_id);
    }

    /// A point-in-time copy of the histogram state.
    ///
    /// Concurrent recorders may land between the field loads, so `count`,
    /// `sum`, and the bucket totals are each individually correct but not
    /// guaranteed mutually consistent mid-flight; quiescent reads (the
    /// normal snapshot use) are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let exemplars: Vec<Option<Exemplar>> = (0..HISTOGRAM_BUCKETS)
            .map(|i| {
                let trace_id = self.exemplar_ids[i].load(Ordering::Relaxed);
                (trace_id != 0).then(|| Exemplar {
                    value: self.exemplar_vals[i].load(Ordering::Relaxed),
                    trace_id,
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
            exemplars,
        }
    }
}

/// The last observation that landed in a histogram bucket, tagged with the
/// trace that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value.
    pub value: u64,
    /// The non-zero trace id stamped on the observation.
    pub trace_id: u64,
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Per-bucket counts, `HISTOGRAM_BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Per-bucket exemplars (`HISTOGRAM_BUCKETS` entries, `None` where no
    /// exemplar-stamped observation has landed).
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Exact mean of the observations (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`), 0 for an empty histogram.
    ///
    /// Finds the bucket containing the rank-`⌈q·count⌉` observation and
    /// interpolates linearly inside it, so the estimate is within one
    /// bucket width (a factor of two) of the true order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i) as f64;
                let frac = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1) as f64
    }

    /// Upper bound of the highest non-empty bucket (0 if empty) — a cheap
    /// over-approximation of the maximum observation.
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map_or(0, |(i, _)| bucket_upper(i))
    }
}

/// One registered metric: a shared handle plus its kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics.
///
/// There is one process-wide default ([`global`]) used by the library's
/// built-in instrumentation; subsystems that need isolated numbers (one
/// serving instance, a test) create their own with [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// A consistent-by-name snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().unwrap();
        let metrics = m
            .iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect();
        Snapshot { metrics }
    }
}

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time dump of a whole [`Registry`], name-sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub metrics: Vec<(String, MetricSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)? {
            MetricSnapshot::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)? {
            MetricSnapshot::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name)? {
            MetricSnapshot::Histogram(h) => Some(h),
            _ => None,
        }
    }

    fn find(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Renders the snapshot in the classic Prometheus text exposition
    /// format (`text/plain; version=0.0.4`) — what a stock Prometheus
    /// scraper accepts.
    ///
    /// Every series is preceded by `# HELP` and `# TYPE` lines; metric
    /// names are sanitized (`.` and `-` become `_`, the original dotted
    /// name survives in the HELP text and in [`render_json`](Self::render_json)).
    /// Histograms expand into cumulative `_bucket{le="…"}` series plus
    /// `_sum` and `_count`, counters gain the conventional `_total` suffix.
    pub fn render_prometheus(&self) -> String {
        self.render_prom_inner(false)
    }

    /// Renders the snapshot in the OpenMetrics text format: identical to
    /// [`render_prometheus`](Self::render_prometheus) plus per-bucket
    /// **exemplars** (`# {trace_id="…"} value` suffixes on bucket lines,
    /// from [`Histogram::record_with_exemplar`]) and the mandatory `# EOF`
    /// terminator. Served by the telemetry endpoint when the client's
    /// `Accept` header asks for `application/openmetrics-text`.
    pub fn render_openmetrics(&self) -> String {
        let mut out = self.render_prom_inner(true);
        out.push_str("# EOF\n");
        out
    }

    fn render_prom_inner(&self, exemplars: bool) -> String {
        let mut out = String::new();
        for (name, m) in &self.metrics {
            let pname = sanitize_prometheus(name);
            let help = escape_help(name);
            match m {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!(
                        "# HELP {pname}_total LightTS counter {help}\n\
                         # TYPE {pname}_total counter\n{pname}_total {v}\n"
                    ));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!(
                        "# HELP {pname} LightTS gauge {help}\n# TYPE {pname} gauge\n{pname} {v}\n"
                    ));
                }
                MetricSnapshot::Histogram(h) => {
                    out.push_str(&format!(
                        "# HELP {pname} LightTS histogram {help}\n# TYPE {pname} histogram\n"
                    ));
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let le = bucket_upper(i);
                        out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cum}"));
                        if exemplars {
                            if let Some(Some(ex)) = h.exemplars.get(i) {
                                out.push_str(&format!(
                                    " # {{trace_id=\"{}\"}} {}",
                                    ex.trace_id, ex.value
                                ));
                            }
                        }
                        out.push('\n');
                    }
                    out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{pname}_sum {}\n", h.sum));
                    out.push_str(&format!("{pname}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// Renders the snapshot as one JSON object keyed by metric name.
    ///
    /// Names keep their original dotted form here (only the Prometheus
    /// rendering sanitizes). Counters and gauges map to bare numbers;
    /// histograms map to `{"count", "sum", "mean", "p50", "p90", "p99",
    /// "buckets", "exemplars"}` where `buckets` is an array of
    /// `[upper_bound, count]` pairs for the non-empty buckets and
    /// `exemplars` an array of `[upper_bound, value, trace_id]` triples
    /// for buckets carrying one.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:", crate::span::json_string(name)));
            match m {
                MetricSnapshot::Counter(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Gauge(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        fmt_f64(h.mean()),
                        fmt_f64(h.quantile(0.5)),
                        fmt_f64(h.quantile(0.9)),
                        fmt_f64(h.quantile(0.99)),
                    ));
                    let mut first = true;
                    for (bi, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("[{},{}]", bucket_upper(bi), c));
                    }
                    out.push_str("],\"exemplars\":[");
                    let mut first = true;
                    for (bi, ex) in h.exemplars.iter().enumerate() {
                        let Some(ex) = ex else { continue };
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!(
                            "[{},{},{}]",
                            bucket_upper(bi),
                            ex.value,
                            ex.trace_id
                        ));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Formats an `f64` so it parses back as JSON (no `inf`/`NaN` output).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints without a decimal point; that is
        // still valid JSON, so leave it.
        s
    } else {
        "null".to_string()
    }
}

fn sanitize_prometheus(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    // A Prometheus metric name must not start with a digit.
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a HELP text per the exposition format (`\` and newline only).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.record_max(7);
        assert_eq!(g.get(), 12, "record_max must not lower the gauge");
        g.record_max(40);
        assert_eq!(g.get(), 40);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 1..63 {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
            assert_eq!(bucket_index(bucket_upper(i) - 1), i, "top of bucket {i}");
        }
    }

    #[test]
    fn histogram_mean_is_exact_and_quantiles_bracket() {
        let h = Histogram::new();
        for v in [10u64, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 11_110);
        assert_eq!(s.mean(), 11_110.0 / 4.0);
        // p50 must fall within a factor of 2 of the true median bracket.
        let p50 = s.quantile(0.5);
        assert!((64.0..=256.0).contains(&p50), "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!((8192.0..=16384.0).contains(&p99), "p99 {p99}");
        assert!(s.quantile(0.0) <= s.quantile(1.0));
        assert!(s.max_bound() >= 10_000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.max_bound(), 0);
    }

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter("x.hits"), Some(2));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn snapshot_renders_prometheus_and_json() {
        let r = Registry::new();
        r.counter("serve.requests").add(3);
        r.gauge("serve.queue_depth").set(2);
        r.histogram("serve.latency_ns").record(1500);
        let snap = r.snapshot();
        let prom = snap.render_prometheus();
        assert!(prom.contains("serve_requests_total 3"), "{prom}");
        assert!(prom.contains("serve_queue_depth 2"), "{prom}");
        assert!(prom.contains("serve_latency_ns_bucket{le=\"2048\"} 1"), "{prom}");
        assert!(prom.contains("serve_latency_ns_sum 1500"), "{prom}");
        let json = snap.render_json();
        assert!(json.contains("\"serve.requests\":3"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        // Machine-readable: the JSON dump must parse.
        crate::jsonl::parse(&json).expect("snapshot JSON parses");
    }

    #[test]
    fn prometheus_rendering_has_help_and_type_for_every_series() {
        let r = Registry::new();
        r.counter("a.requests").inc();
        r.gauge("a.depth").set(1);
        r.histogram("a.lat_ns").record(100);
        let prom = r.snapshot().render_prometheus();
        assert!(prom.contains("# HELP a_requests_total "), "{prom}");
        assert!(prom.contains("# TYPE a_requests_total counter"), "{prom}");
        assert!(prom.contains("# HELP a_depth "), "{prom}");
        assert!(prom.contains("# TYPE a_depth gauge"), "{prom}");
        assert!(prom.contains("# HELP a_lat_ns "), "{prom}");
        assert!(prom.contains("# TYPE a_lat_ns histogram"), "{prom}");
        // The HELP text preserves the original dotted name.
        assert!(prom.contains("a.requests"), "{prom}");
        // Every non-comment line is `name{labels}? value` with a finite value.
        for line in prom.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (_, v) = line.rsplit_once(' ').expect("sample line shape: {line}");
            v.parse::<f64>().expect("numeric sample value");
        }
        // No exemplars and no EOF marker in the classic rendering.
        assert!(!prom.contains("trace_id"), "{prom}");
        assert!(!prom.contains("# EOF"), "{prom}");
    }

    #[test]
    fn openmetrics_rendering_carries_exemplars_and_eof() {
        let r = Registry::new();
        let h = r.histogram("t.lat_ns");
        h.record_with_exemplar(1500, 0xABCD);
        h.record(90); // no exemplar for this bucket
        let snap = r.snapshot();
        let hs = snap.histogram("t.lat_ns").unwrap();
        assert_eq!(
            hs.exemplars[bucket_index(1500)],
            Some(Exemplar { value: 1500, trace_id: 0xABCD })
        );
        assert_eq!(hs.exemplars[bucket_index(90)], None);
        let om = snap.render_openmetrics();
        // Bucket counts are cumulative (the le="2048" bucket also counts
        // the 90 sample); the exemplar is the bucket's own last sample.
        assert!(om.contains("t_lat_ns_bucket{le=\"2048\"} 2 # {trace_id=\"43981\"} 1500"), "{om}");
        assert!(om.ends_with("# EOF\n"), "{om}");
        let json = snap.render_json();
        assert!(json.contains("\"exemplars\":[[2048,1500,43981]]"), "{json}");
        crate::jsonl::parse(&json).expect("snapshot JSON parses");
    }

    #[test]
    fn sanitized_names_never_start_with_a_digit() {
        assert_eq!(sanitize_prometheus("3sigma.count"), "_3sigma_count");
        assert_eq!(sanitize_prometheus("serve.latency-ns"), "serve_latency_ns");
    }
}
