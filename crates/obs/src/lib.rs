//! # lightts-obs
//!
//! The observability layer of the LightTS reproduction: a **metrics
//! registry** (named counters, gauges, and log-bucketed histograms with
//! lock-free hot paths), **tracing spans** with RAII timing, and
//! **structured JSONL event export** — all with zero external
//! dependencies, so every crate in the workspace can depend on it.
//!
//! ## Metrics
//!
//! ```
//! use lightts_obs as obs;
//!
//! let reg = obs::Registry::new();         // or obs::global()
//! reg.counter("serve.requests").add(3);
//! reg.histogram("serve.latency_ns").record(1_500_000);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("serve.requests"), Some(3));
//! println!("{}", snap.render_prometheus()); // text exposition
//! println!("{}", snap.render_json());       // machine-readable dump
//! ```
//!
//! ## Spans and events
//!
//! ```
//! use lightts_obs as obs;
//! {
//!     let mut sp = obs::span!("trainer.epoch", { epoch: 3usize });
//!     // … work …
//!     sp.record("loss", 0.42f32);
//! } // drop records duration into `span.trainer.epoch` and emits JSONL
//! obs::event!("bench.cell", { dataset: "Adiac", acc: 0.81f64 });
//! ```
//!
//! Emission is off by default. Set `LIGHTTS_OBS=1` (stderr), a file path,
//! or `memory`, or call [`set_sink`] programmatically. When disabled, a
//! span or event costs one relaxed atomic load — field expressions are not
//! evaluated and nothing allocates ([`events_emitted`] lets tests prove
//! it).
//!
//! ## JSONL event schema
//!
//! One JSON object per line:
//!
//! ```json
//! {"ts_us":1754500000000000,"kind":"span","path":"aed.epoch",
//!  "fields":{"dataset":"Adiac","trial":3,"loss":0.42},"dur_us":15310.2}
//! ```
//!
//! | key | type | presence |
//! |---|---|---|
//! | `ts_us` | unsigned number — µs since the UNIX epoch at emission | always |
//! | `kind` | `"span"` or `"event"` | always |
//! | `path` | non-empty dotted string, e.g. `"mobo.trial"` | always |
//! | `fields` | object of string / number / bool / null values | always (may be empty) |
//! | `dur_us` | wall-clock duration in µs | spans only |
//!
//! No other top-level keys are emitted; [`jsonl::validate_event_line`]
//! enforces exactly this contract (CI runs it over a real experiment's
//! output via the `obs_validate` binary). Serving spans additionally carry
//! a numeric `trace_id` field linking every stage of one request;
//! [`jsonl::validate_trace_linkage`] checks that contract — see [`trace`].
//!
//! ## Live telemetry
//!
//! Three further modules turn a running process into something you can
//! *look at* without restarting it:
//!
//! * [`http`] — a zero-dependency `std::net` HTTP/1.1 server exposing
//!   `GET /metrics` (Prometheus text, OpenMetrics-with-exemplars via
//!   `Accept`), `/metrics.json`, `/healthz`, `/tracez`, and `/profilez`.
//!   One call: `obs::http::spawn(registry, "127.0.0.1:9464")`.
//! * [`trace`] — per-request [`TraceCtx`] (48-bit ids,
//!   anchored timestamps) and the `/tracez` span ring buffer.
//! * [`prof`] — an always-compiled hierarchical profiler
//!   (`LIGHTTS_PROF=1`): RAII [`prof::scope`]s aggregate into a global
//!   call tree rendered as flamegraph-ready collapsed stacks
//!   ([`prof::render_collapsed`], `GET /profilez`).
//!
//! ## Fault tolerance
//!
//! Two further subsystems share the same "one relaxed atomic load when
//! off" discipline:
//!
//! * [`failpoint`] — deterministic fault injection
//!   (`LIGHTTS_FAILPOINTS=serve.batch=panic@3,mobo.trial=err@5`), used by
//!   the chaos tests to prove shedding and recovery paths fire.
//! * [`checkpoint`] — atomic write-temp→fsync→rename snapshot files and a
//!   named-section container, the storage layer under the crash-safe
//!   distillation and MOBO runs (`checkpoint.writes` /
//!   `checkpoint.resumes` counters in the global registry).
//!
//! ## Environment variables (workspace index)
//!
//! Every environment variable the workspace reads, in one place. Each is
//! read **once** at first use and cached; programmatic setters take
//! precedence over the environment. None of the observability or
//! threading knobs can change numerical results — only `LIGHTTS_SIMD`
//! can, and only within the FMA class documented in `docs/NUMERICS.md`.
//!
//! | Variable | Crate | Values | Effect |
//! |---|---|---|---|
//! | `LIGHTTS_OBS` | `lightts-obs` | unset/`0` (off), `1` (stderr), a file path, `memory` | span/event JSONL emission target; metrics are always on |
//! | `LIGHTTS_FAILPOINTS` | `lightts-obs` | `name=action[@N\|%p]`, action `panic`/`err`, comma-separated | arms deterministic fault injection at named points (`serve.batch`, `serve.shard`, `trainer.epoch`, `mobo.trial`, `checkpoint.write`); `@N` fires once on the N-th hit, `%p` fires each hit with probability p (deterministic under the seed) |
//! | `LIGHTTS_FAILPOINT_SEED` | `lightts-obs` | u64 (default `0x5EED`) | seed for `%p` probabilistic failpoint triggers — a fixed seed replays the exact kill schedule (CI chaos soak); overridden by [`failpoint::set_failpoint_seed`] |
//! | `LIGHTTS_NUM_THREADS` | `lightts-tensor` (`par`) | positive integer | thread-pool size; overridden by `lightts::runtime::set_num_threads`; never changes bits |
//! | `LIGHTTS_SIMD` | `lightts-tensor` (`simd`) | `avx2` / `sse2` / `scalar` (case-insensitive) | forces the SIMD backend, clamped down to CPU support; overridden by `set_simd_backend`; see `docs/NUMERICS.md` |
//! | `LIGHTTS_BENCH_SMOKE` | `lightts-bench` | `1` | shrinks every criterion bench to a CI-sized compile-rot check |
//! | `LIGHTTS_PROF` | `lightts-obs` (`prof`) | unset/`0`/`off`/`false` (off), anything else (on) | hierarchical profiler behind the permanent kernel/serve hooks; `GET /profilez` renders collapsed stacks; never changes bits |
//! | `LIGHTTS_TELEMETRY_ADDR` | `lightts-obs` (`http`) | `host:port`, e.g. `127.0.0.1:9464` | the experiment binaries spawn the telemetry HTTP server here at startup ([`http::spawn_from_env`]) |
//! | `LIGHTTS_SERVE_SHARDS` | `lightts-serve`, `lightts-bench` | positive integer | scheduler shard count when `ServeConfig::shards` is 0 (read at each server start, capped at 64); without it the count defaults to available parallelism clamped to the model count; `bench_serve_cluster` sweeps only this count when set; never changes bits — routing is deterministic and every replica answers identically |
//! | `LIGHTTS_SERVE_RESTARTS` | `lightts-serve` | non-negative integer (default 3) | restart budget when `ServeConfig::restart_budget` is `None`: how many times the supervisor may respawn one shard per rolling window before marking it permanently failed (`0` disables respawn) |
//! | `LIGHTTS_SERVE_RETRIES` | `lightts-serve` | positive integer (default 3) | `RetryPolicy::from_env` total attempt count (first try included) for `predict_with_retry` |
//! | `LIGHTTS_SERVE_RETRY_BACKOFF_US` | `lightts-serve` | non-negative integer µs (default 5000) | `RetryPolicy::from_env` base backoff before the first retry; doubles per attempt |
//! | `LIGHTTS_SERVE_RETRY_JITTER` | `lightts-serve` | 0–100 (default 50) | `RetryPolicy::from_env` jitter percentage subtracted deterministically from each backoff |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod failpoint;
pub mod http;
pub mod jsonl;
mod metrics;
pub mod prof;
mod span;
pub mod trace;

pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, global, Counter, Exemplar, Gauge, Histogram,
    HistogramSnapshot, Metric, MetricSnapshot, Registry, Snapshot, HISTOGRAM_BUCKETS,
};
pub use span::{
    emit_event, emit_span_at, enabled, events_emitted, init_from_env_or, json_string, set_sink,
    take_memory, FieldValue, Fields, SinkTarget, Span,
};
pub use trace::TraceCtx;
