//! Crash-safe checkpoint primitives: atomic snapshot files and a tiny
//! named-section container.
//!
//! The expensive loops of this workspace (AED distillation epochs, MOBO
//! trials) periodically snapshot their state so a crash loses at most one
//! epoch/trial of work. This module owns the two properties every such
//! snapshot needs and no domain crate should reimplement:
//!
//! * **Atomicity** — [`atomic_write`] writes to a same-directory temp
//!   file, `fsync`s it, then `rename`s over the target. A reader therefore
//!   sees either the previous complete checkpoint or the new complete
//!   checkpoint, never a torn file, even across a crash mid-write.
//! * **Framing** — [`SectionWriter`]/[`SectionReader`] provide a
//!   length-prefixed named-section container (magic `LTCK`), so domain
//!   checkpoints (trainer state, MOBO state) compose wire formats that are
//!   already hardened elsewhere (e.g. `lightts_nn::serialize`) without
//!   inventing new framing.
//!
//! Writes and resumes are counted in the global registry
//! (`checkpoint.writes`, `checkpoint.resumes`) so long runs expose their
//! crash-safety cadence through the same Prometheus/JSON exposition as
//! everything else. The writer carries the `checkpoint.write` failpoint:
//! chaos tests arm it to prove that a failing disk surfaces as a typed
//! error instead of a silently missing snapshot.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Current container format version.
pub const CHECKPOINT_VERSION: u16 = 1;

const MAGIC: &[u8; 4] = b"LTCK";

fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: write temp → fsync → rename.
///
/// Increments `checkpoint.writes` in the global registry on success.
/// Carries the `checkpoint.write` failpoint.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    crate::failpoint::hit("checkpoint.write").map_err(io::Error::other)?;
    let tmp = temp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    crate::metrics::global().counter("checkpoint.writes").inc();
    Ok(())
}

/// Reads a checkpoint written by [`atomic_write`].
///
/// Returns `Ok(None)` when no checkpoint exists (a fresh run), `Ok(Some)`
/// — and increments `checkpoint.resumes` — when one was loaded.
pub fn read_checkpoint(path: &Path) -> io::Result<Option<Vec<u8>>> {
    match std::fs::read(path) {
        Ok(bytes) => {
            crate::metrics::global().counter("checkpoint.resumes").inc();
            Ok(Some(bytes))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Builds a checkpoint container: a `kind` tag plus ordered named byte
/// sections.
///
/// ```
/// use lightts_obs::checkpoint::{SectionReader, SectionWriter};
/// let mut w = SectionWriter::new("demo");
/// w.section("weights", &[1, 2, 3]);
/// let bytes = w.finish();
/// let r = SectionReader::parse(&bytes).unwrap();
/// assert_eq!(r.kind(), "demo");
/// assert_eq!(r.get("weights"), Some(&[1u8, 2, 3][..]));
/// ```
#[derive(Debug)]
pub struct SectionWriter {
    buf: Vec<u8>,
    count: u32,
    count_at: usize,
}

impl SectionWriter {
    /// Starts a container of the given `kind` (e.g. `"distill.trainer"`).
    pub fn new(kind: &str) -> SectionWriter {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        let kind_bytes = kind.as_bytes();
        buf.extend_from_slice(&(kind_bytes.len() as u16).to_le_bytes());
        buf.extend_from_slice(kind_bytes);
        let count_at = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes());
        SectionWriter { buf, count: 0, count_at }
    }

    /// Appends one named section.
    pub fn section(&mut self, name: &str, payload: &[u8]) {
        let name_bytes = name.as_bytes();
        self.buf.extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(name_bytes);
        self.buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.count += 1;
    }

    /// Finalizes the container and returns its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[self.count_at..self.count_at + 4].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

/// Parses a container written by [`SectionWriter`]; every structural
/// violation (bad magic, truncation, trailing bytes) is a typed error.
#[derive(Debug)]
pub struct SectionReader<'a> {
    kind: &'a str,
    sections: Vec<(&'a str, &'a [u8])>,
}

impl<'a> SectionReader<'a> {
    /// Parses `bytes`, validating magic, version, and framing.
    pub fn parse(bytes: &'a [u8]) -> Result<SectionReader<'a>, String> {
        let mut rest = bytes;
        let take = |rest: &mut &'a [u8], n: usize, what: &str| -> Result<&'a [u8], String> {
            if rest.len() < n {
                return Err(format!("checkpoint truncated reading {what}"));
            }
            let (head, tail) = rest.split_at(n);
            *rest = tail;
            Ok(head)
        };
        let magic = take(&mut rest, 4, "magic")?;
        if magic != MAGIC {
            return Err(format!("bad checkpoint magic {magic:?}"));
        }
        let version = u16::from_le_bytes(take(&mut rest, 2, "version")?.try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let kind_len =
            u16::from_le_bytes(take(&mut rest, 2, "kind length")?.try_into().unwrap()) as usize;
        let kind = std::str::from_utf8(take(&mut rest, kind_len, "kind")?)
            .map_err(|_| "non-UTF8 checkpoint kind".to_string())?;
        let count =
            u32::from_le_bytes(take(&mut rest, 4, "section count")?.try_into().unwrap()) as usize;
        if count > 4096 {
            return Err(format!("implausible section count {count}"));
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let name_len =
                u16::from_le_bytes(take(&mut rest, 2, "section name length")?.try_into().unwrap())
                    as usize;
            let name = std::str::from_utf8(take(&mut rest, name_len, "section name")?)
                .map_err(|_| format!("non-UTF8 name in section {i}"))?;
            let payload_len =
                u64::from_le_bytes(take(&mut rest, 8, "section length")?.try_into().unwrap());
            let payload_len = usize::try_from(payload_len)
                .map_err(|_| format!("section {name:?} implausibly large"))?;
            let payload = take(&mut rest, payload_len, name)?;
            sections.push((name, payload));
        }
        if !rest.is_empty() {
            return Err(format!("{} trailing bytes after checkpoint", rest.len()));
        }
        Ok(SectionReader { kind, sections })
    }

    /// The container's kind tag.
    pub fn kind(&self) -> &'a str {
        self.kind
    }

    /// The payload of the named section, if present.
    pub fn get(&self, name: &str) -> Option<&'a [u8]> {
        self.sections.iter().find(|(n, _)| *n == name).map(|(_, p)| *p)
    }

    /// Like [`get`](Self::get) but a missing section is a descriptive
    /// error — the common case for required checkpoint fields.
    pub fn require(&self, name: &str) -> Result<&'a [u8], String> {
        self.get(name).ok_or_else(|| format!("checkpoint missing section {name:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lightts-ckpt-{}-{name}", std::process::id()))
    }

    #[test]
    fn atomic_write_then_read_roundtrips_and_counts() {
        let path = tmp("roundtrip.bin");
        let _ = std::fs::remove_file(&path);
        let writes = crate::metrics::global().counter("checkpoint.writes");
        let resumes = crate::metrics::global().counter("checkpoint.resumes");
        let (w0, r0) = (writes.get(), resumes.get());
        assert_eq!(read_checkpoint(&path).unwrap(), None);
        atomic_write(&path, b"state-v1").unwrap();
        atomic_write(&path, b"state-v2").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().as_deref(), Some(&b"state-v2"[..]));
        assert!(writes.get() >= w0 + 2);
        assert!(resumes.get() >= r0 + 1);
        assert!(!temp_path(&path).exists(), "temp file left behind");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn section_container_roundtrips() {
        let mut w = SectionWriter::new("test.kind");
        w.section("a", b"alpha");
        w.section("b", &[]);
        w.section("c", &[0xFF; 300]);
        let bytes = w.finish();
        let r = SectionReader::parse(&bytes).unwrap();
        assert_eq!(r.kind(), "test.kind");
        assert_eq!(r.get("a"), Some(&b"alpha"[..]));
        assert_eq!(r.get("b"), Some(&[][..]));
        assert_eq!(r.require("c").unwrap().len(), 300);
        assert_eq!(r.get("missing"), None);
        assert!(r.require("missing").is_err());
    }

    #[test]
    fn section_parser_rejects_corruption() {
        let mut w = SectionWriter::new("k");
        w.section("s", b"payload");
        let bytes = w.finish();
        // bad magic
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SectionReader::parse(&bad).is_err());
        // truncation at every boundary
        for cut in 0..bytes.len() {
            assert!(SectionReader::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // trailing garbage
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(SectionReader::parse(&extra).is_err());
        // bad version
        let mut bad_ver = bytes;
        bad_ver[4] = 0x7F;
        assert!(SectionReader::parse(&bad_ver).is_err());
    }

    #[test]
    fn write_failpoint_surfaces_as_io_error() {
        let _g = crate::span::TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let path = tmp("failpoint.bin");
        let _ = std::fs::remove_file(&path);
        crate::failpoint::set_failpoints("checkpoint.write=err@1").unwrap();
        let err = atomic_write(&path, b"doomed").unwrap_err();
        assert!(err.to_string().contains("checkpoint.write"), "{err}");
        assert!(!path.exists());
        // recovery: the next write succeeds
        atomic_write(&path, b"ok").unwrap();
        crate::failpoint::clear_failpoints();
        std::fs::remove_file(&path).unwrap();
    }
}
