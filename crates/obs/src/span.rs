//! Tracing spans and structured JSONL events.
//!
//! A [`Span`] is an RAII guard: created by the [`span!`](crate::span)
//! macro, it stamps a start time, collects typed fields, and on drop (a)
//! records its wall-clock duration into the global registry histogram
//! `span.<path>` and (b) writes one JSONL event to the configured sink.
//! [`event!`](crate::event) writes a point-in-time event with no duration.
//!
//! ## The off switch
//!
//! Everything is gated on one atomic flag read by [`enabled`]. When obs is
//! disabled (the default), `span!` and `event!` expand to a single relaxed
//! atomic load — field expressions are not evaluated, nothing allocates,
//! no clock is read. The [`events_emitted`] counter (same pattern as
//! `lightts_tensor::tape::tapes_created`) lets tests prove that.
//!
//! The flag follows the `LIGHTTS_OBS` environment variable on first use:
//!
//! | `LIGHTTS_OBS` | effect |
//! |---|---|
//! | unset, ``, `0`, `off`, `false` | disabled |
//! | `1`, `true`, `stderr` | JSONL to stderr |
//! | `mem`, `memory` | JSONL to an in-memory buffer ([`take_memory`]) |
//! | anything else | treated as a file path, JSONL appended there |
//!
//! [`set_sink`] overrides the environment at any time (tests, embedders).

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Where JSONL events go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkTarget {
    /// Drop everything; spans and events cost one atomic load.
    Off,
    /// One JSON object per line on standard error.
    Stderr,
    /// Append to the given file.
    File(PathBuf),
    /// Buffer lines in memory; drain with [`take_memory`] (tests).
    Memory,
}

enum SinkImpl {
    Off,
    Stderr,
    File(std::fs::File),
    Memory(Vec<String>),
}

/// Capture-mask bit: the JSONL sink is on (`LIGHTTS_OBS` / [`set_sink`]).
const SINK_BIT: u8 = 1;
/// Capture-mask bit: the `/tracez` span ring is on
/// ([`crate::trace::enable_ring`]).
const RING_BIT: u8 = 2;

struct ObsState {
    /// Bitmask of active capture targets ([`SINK_BIT`] | [`RING_BIT`]);
    /// zero means spans and events cost one relaxed load.
    mask: AtomicU8,
    sink: Mutex<SinkImpl>,
    emitted: AtomicU64,
}

fn target_from_env() -> SinkTarget {
    match std::env::var("LIGHTTS_OBS") {
        Err(_) => SinkTarget::Off,
        Ok(v) => match v.as_str() {
            "" | "0" | "off" | "false" => SinkTarget::Off,
            "1" | "true" | "stderr" => SinkTarget::Stderr,
            "mem" | "memory" => SinkTarget::Memory,
            path => SinkTarget::File(PathBuf::from(path)),
        },
    }
}

fn build_sink(target: &SinkTarget) -> SinkImpl {
    match target {
        SinkTarget::Off => SinkImpl::Off,
        SinkTarget::Stderr => SinkImpl::Stderr,
        SinkTarget::Memory => SinkImpl::Memory(Vec::new()),
        SinkTarget::File(path) => match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => SinkImpl::File(f),
            Err(e) => {
                eprintln!("lightts-obs: cannot open {path:?} ({e}), falling back to stderr");
                SinkImpl::Stderr
            }
        },
    }
}

fn state() -> &'static ObsState {
    static STATE: OnceLock<ObsState> = OnceLock::new();
    STATE.get_or_init(|| {
        let target = target_from_env();
        ObsState {
            mask: AtomicU8::new(if target != SinkTarget::Off { SINK_BIT } else { 0 }),
            sink: Mutex::new(build_sink(&target)),
            emitted: AtomicU64::new(0),
        }
    })
}

/// Whether any span/event capture is on — the JSONL sink, the `/tracez`
/// span ring, or both. One relaxed atomic load — this is the
/// instrumentation hot-path check; field expressions are only evaluated
/// when it returns `true`.
pub fn enabled() -> bool {
    state().mask.load(Ordering::Relaxed) != 0
}

/// Whether the JSONL sink specifically is on (events only go to the sink;
/// the ring holds completed spans).
pub(crate) fn sink_enabled() -> bool {
    state().mask.load(Ordering::Relaxed) & SINK_BIT != 0
}

fn set_mask_bit(bit: u8, on: bool) {
    let s = state();
    if on {
        s.mask.fetch_or(bit, Ordering::Relaxed);
    } else {
        s.mask.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Mirrors the `/tracez` ring's enabled state into the capture mask
/// (called by [`crate::trace::enable_ring`] / `disable_ring`).
pub(crate) fn set_ring_capture(on: bool) {
    set_mask_bit(RING_BIT, on);
}

/// Points the JSONL sink somewhere, overriding `LIGHTTS_OBS`.
///
/// `SinkTarget::Off` disables sink emission (the `/tracez` ring, if
/// enabled, keeps capturing spans independently).
pub fn set_sink(target: SinkTarget) {
    let s = state();
    *s.sink.lock().unwrap() = build_sink(&target);
    set_mask_bit(SINK_BIT, target != SinkTarget::Off);
}

/// Initializes from `LIGHTTS_OBS` if it is set, else from `default`.
///
/// The experiment binaries call this with [`SinkTarget::Stderr`] so their
/// progress output is structured by default while `LIGHTTS_OBS=0` still
/// silences it.
pub fn init_from_env_or(default: SinkTarget) {
    if std::env::var_os("LIGHTTS_OBS").is_some() {
        set_sink(target_from_env());
    } else {
        set_sink(default);
    }
}

/// Total JSONL events written since process start (diagnostics; the
/// disabled-mode tests assert this does not move).
pub fn events_emitted() -> u64 {
    state().emitted.load(Ordering::Relaxed)
}

/// Drains and returns the in-memory sink's lines (empty unless the sink is
/// [`SinkTarget::Memory`]).
pub fn take_memory() -> Vec<String> {
    match &mut *state().sink.lock().unwrap() {
        SinkImpl::Memory(lines) => std::mem::take(lines),
        _ => Vec::new(),
    }
}

/// Routes one rendered line to the active capture targets: the sink (spans
/// and events) and, for spans only, the `/tracez` ring.
fn write_line(line: String, is_span: bool) {
    let s = state();
    let mask = s.mask.load(Ordering::Relaxed);
    if mask & SINK_BIT != 0 {
        s.emitted.fetch_add(1, Ordering::Relaxed);
        match &mut *s.sink.lock().unwrap() {
            SinkImpl::Off => {}
            SinkImpl::Stderr => eprintln!("{line}"),
            SinkImpl::File(f) => {
                let _ = writeln!(f, "{line}");
            }
            SinkImpl::Memory(lines) => lines.push(line.clone()),
        }
    }
    if is_span && mask & RING_BIT != 0 {
        crate::trace::push_span_line(&line);
    }
}

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite values serialize as `null`).
    Float(f64),
    /// A boolean.
    Bool(bool),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue { FieldValue::$variant(v as $conv) }
        }
    )*};
}
field_from! {
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64,
    f32 => Float as f64, f64 => Float as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> FieldValue {
        FieldValue::Str(v.clone())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// Field list attached to a span or event (keys come from `stringify!`, so
/// they are static).
pub type Fields = Vec<(&'static str, FieldValue)>;

/// Escapes `s` as a JSON string literal (with the surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn append_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::Str(s) => out.push_str(&json_string(s)),
        FieldValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        FieldValue::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        FieldValue::Float(f) => out.push_str(&crate::metrics::fmt_f64(*f)),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn now_us() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// Serializes one event line per the schema in the crate docs; `ts_us`
/// defaults to the wall clock now, but trace-anchored emitters
/// ([`emit_span_at`]) pass an exact timestamp instead.
fn render_line(
    kind: &str,
    path: &str,
    fields: &Fields,
    dur_us: Option<f64>,
    ts_us: Option<u64>,
) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"ts_us\":{},\"kind\":\"{kind}\",\"path\":{}",
        ts_us.unwrap_or_else(now_us),
        json_string(path)
    );
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        append_field_value(&mut out, v);
    }
    out.push('}');
    if let Some(d) = dur_us {
        let _ = write!(out, ",\"dur_us\":{}", crate::metrics::fmt_f64(d.max(0.0)));
    }
    out.push('}');
    out
}

/// Emits a point event immediately (no duration). Prefer the
/// [`event!`](crate::event) macro, which skips field construction when obs
/// is disabled.
pub fn emit_event(path: &'static str, fields: Fields) {
    if !sink_enabled() {
        return;
    }
    write_line(render_line("event", path, &fields, None, None), false);
}

/// Emits a completed span line with an explicit end timestamp (`ts_us`,
/// µs since the UNIX epoch) and duration (`dur_us`, µs), bypassing the
/// RAII clock.
///
/// This is the export path for trace-anchored stage spans (the serving
/// scheduler derives both values arithmetically from one
/// [`TraceCtx`](crate::trace::TraceCtx) anchor so a trace's spans nest
/// exactly). Unlike a dropped [`Span`], no `span.<path>` histogram is
/// recorded in the global registry — callers of this API own their
/// metrics. No-op unless capture is [`enabled`].
pub fn emit_span_at(path: &str, fields: Fields, ts_us: u64, dur_us: f64) {
    if !enabled() {
        return;
    }
    write_line(render_line("span", path, &fields, Some(dur_us.max(0.0)), Some(ts_us)), true);
}

struct ActiveSpan {
    path: &'static str,
    fields: Fields,
    start: Instant,
}

/// An RAII timing span; see the [`span!`](crate::span) macro.
///
/// When obs is disabled the guard is inert: no clock read, no fields, no
/// emission on drop.
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Starts a span (checks [`enabled`] itself; the macro pre-checks to
    /// avoid building `fields` needlessly).
    pub fn enter(path: &'static str, fields: Fields) -> Span {
        if !enabled() {
            return Span(None);
        }
        Span(Some(ActiveSpan { path, fields, start: Instant::now() }))
    }

    /// An inert span (what `span!` yields when obs is disabled).
    pub fn disabled() -> Span {
        Span(None)
    }

    /// Whether this span will emit on drop.
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches a field after creation (results computed inside the span).
    /// No-op on an inert span.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(s) = &mut self.0 {
            s.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.0.take() else { return };
        let elapsed = s.start.elapsed();
        crate::metrics::global().histogram(&format!("span.{}", s.path)).record_duration(elapsed);
        write_line(
            render_line("span", s.path, &s.fields, Some(elapsed.as_secs_f64() * 1e6), None),
            true,
        );
    }
}

/// Opens a timing [`Span`](crate::Span) with a static path and optional
/// `{key: value}` fields.
///
/// ```
/// let mut sp = lightts_obs::span!("aed.epoch", { dataset: "Adiac", trial: 3usize });
/// // … work …
/// sp.record("loss", 0.25f32);
/// // emits on drop
/// ```
///
/// Field expressions are **not evaluated** when obs is disabled.
#[macro_export]
macro_rules! span {
    ($path:expr) => {
        $crate::Span::enter($path, ::std::vec::Vec::new())
    };
    ($path:expr, { $($k:ident : $v:expr),* $(,)? }) => {
        if $crate::enabled() {
            $crate::Span::enter(
                $path,
                ::std::vec![$((stringify!($k), $crate::FieldValue::from($v))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Emits a point-in-time structured event with optional `{key: value}`
/// fields.
///
/// ```
/// lightts_obs::event!("bench.cell", { dataset: "Adiac", acc: 0.81f64 });
/// ```
///
/// Field expressions are **not evaluated** when obs is disabled.
#[macro_export]
macro_rules! event {
    ($path:expr) => {
        $crate::emit_event($path, ::std::vec::Vec::new())
    };
    ($path:expr, { $($k:ident : $v:expr),* $(,)? }) => {
        if $crate::enabled() {
            $crate::emit_event(
                $path,
                ::std::vec![$((stringify!($k), $crate::FieldValue::from($v))),*],
            );
        }
    };
}

#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests across modules that mutate the global sink/ring state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global sink/enabled state.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_mode_emits_nothing_and_skips_field_evaluation() {
        let _g = guard();
        set_sink(SinkTarget::Off);
        let before = events_emitted();
        let mut evaluated = false;
        {
            let mut sp = crate::span!("test.disabled", {
                expensive: {
                    evaluated = true;
                    "value"
                }
            });
            sp.record("late", 1u64);
            crate::event!("test.disabled_event", { x: 1u64 });
        }
        assert!(!evaluated, "field expressions must not run when disabled");
        assert_eq!(events_emitted(), before, "disabled mode wrote an event");
    }

    #[test]
    fn memory_sink_captures_span_and_event_lines() {
        let _g = guard();
        set_sink(SinkTarget::Memory);
        take_memory();
        {
            let mut sp = crate::span!("test.span", { dataset: "Adiac", trial: 3usize });
            sp.record("loss", 0.5f32);
        }
        crate::event!("test.event", { ok: true, n: -2i64 });
        let lines = take_memory();
        set_sink(SinkTarget::Off);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span\""), "{}", lines[0]);
        assert!(lines[0].contains("\"path\":\"test.span\""), "{}", lines[0]);
        assert!(lines[0].contains("\"dataset\":\"Adiac\""), "{}", lines[0]);
        assert!(lines[0].contains("\"loss\":0.5"), "{}", lines[0]);
        assert!(lines[0].contains("\"dur_us\":"), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"event\""), "{}", lines[1]);
        assert!(!lines[1].contains("dur_us"), "{}", lines[1]);
        for l in &lines {
            crate::jsonl::validate_event_line(l).expect("schema-valid line");
        }
    }

    #[test]
    fn span_durations_land_in_global_histogram() {
        let _g = guard();
        set_sink(SinkTarget::Memory);
        take_memory();
        {
            let _sp = crate::span!("test.timed");
        }
        take_memory();
        set_sink(SinkTarget::Off);
        let snap = crate::metrics::global().snapshot();
        let h = snap.histogram("span.test.timed").expect("span histogram registered");
        assert!(h.count >= 1);
    }

    #[test]
    fn ring_captures_spans_without_a_sink() {
        let _g = guard();
        set_sink(SinkTarget::Off);
        crate::trace::enable_ring(8);
        let before = events_emitted();
        {
            let _sp = crate::span!("test.ring_only", { n: 1u64 });
        }
        crate::event!("test.ring_only_event", { n: 2u64 });
        let lines = crate::trace::tracez_lines();
        crate::trace::disable_ring();
        assert_eq!(events_emitted(), before, "ring-only capture must not count as sink emission");
        assert_eq!(lines.len(), 1, "ring holds the span but not the event: {lines:?}");
        assert!(lines[0].contains("\"path\":\"test.ring_only\""), "{}", lines[0]);
        crate::jsonl::validate_event_line(&lines[0]).expect("ring line is schema-valid");
    }

    #[test]
    fn emit_span_at_uses_the_given_timestamp() {
        let _g = guard();
        set_sink(SinkTarget::Memory);
        take_memory();
        emit_span_at("test.at", vec![("trace_id", FieldValue::UInt(7))], 1_234_567, 42.5);
        let lines = take_memory();
        set_sink(SinkTarget::Off);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"ts_us\":1234567"), "{}", lines[0]);
        assert!(lines[0].contains("\"dur_us\":42.5"), "{}", lines[0]);
        crate::jsonl::validate_event_line(&lines[0]).unwrap();
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn file_sink_appends_lines() {
        let _g = guard();
        let path =
            std::env::temp_dir().join(format!("lightts-obs-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        set_sink(SinkTarget::File(path.clone()));
        crate::event!("test.file", { n: 7u64 });
        set_sink(SinkTarget::Off); // drops the file handle
        let body = std::fs::read_to_string(&path).expect("file written");
        let _ = std::fs::remove_file(&path);
        assert_eq!(body.lines().count(), 1);
        crate::jsonl::validate_event_line(body.lines().next().unwrap()).unwrap();
    }
}
