//! Property-based tests: histogram bucket geometry and JSONL round-trips.

use lightts_obs::jsonl::{self, Json};
use lightts_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose [lower, upper) range contains it.
    #[test]
    fn bucket_contains_its_values(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_lower(i) <= v, "{v} below bucket {i} lower bound");
        // The last bucket's true upper bound (2^64) is clamped to u64::MAX,
        // so it is inclusive there.
        if i < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(v < bucket_upper(i), "{v} at/above bucket {i} upper bound");
        } else {
            prop_assert!(v <= bucket_upper(i));
        }
    }

    /// Buckets tile the u64 line: consecutive buckets share a boundary.
    #[test]
    fn buckets_are_contiguous(i in 1usize..HISTOGRAM_BUCKETS) {
        prop_assert_eq!(bucket_lower(i), bucket_upper(i - 1));
    }

    /// Quantiles are monotone in q and bracket a single recorded value to
    /// within its bucket.
    #[test]
    fn quantiles_monotone_and_bracketing(values in proptest::collection::vec(0u64..1_000_000_000, 1..64)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        let mut prev = 0.0f64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            prop_assert!(est >= prev, "quantile({q}) = {est} < {prev}");
            prev = est;
        }
        // Estimates stay inside the observed bucket range.
        let lo = bucket_lower(bucket_index(*values.iter().min().unwrap())) as f64;
        let hi = bucket_upper(bucket_index(*values.iter().max().unwrap())) as f64;
        prop_assert!(s.quantile(0.0) >= lo);
        prop_assert!(s.quantile(1.0) <= hi);
    }

    /// JSON string escaping round-trips through the parser for arbitrary
    /// (printable and control) characters.
    #[test]
    fn json_string_round_trips(codes in proptest::collection::vec(0u32..0xD7FF, 0..24)) {
        let s: String = codes.into_iter().filter_map(char::from_u32).collect();
        let encoded = lightts_obs::json_string(&s);
        let parsed = jsonl::parse(&encoded).unwrap();
        prop_assert_eq!(parsed, Json::Str(s));
    }

    /// Numbers survive an emit→parse round trip exactly enough for the
    /// schema (f64 formatting is shortest-round-trip in Rust).
    #[test]
    fn numbers_round_trip(v in -1.0e12f64..1.0e12) {
        let parsed = jsonl::parse(&format!("{v}")).unwrap();
        prop_assert_eq!(parsed, Json::Num(v));
    }
}
