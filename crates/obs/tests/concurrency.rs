//! Concurrent-update correctness: metrics hammered from N threads must sum
//! exactly — the registry's hot path is relaxed atomics, and nothing may
//! be lost or double-counted.

use lightts_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counter_updates_from_n_threads_sum_exactly() {
    let c = Arc::new(Counter::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_updates_from_n_threads_sum_exactly() {
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across buckets; value depends on the thread so
                    // per-bucket totals also exercise contention.
                    h.record((t as u64 + 1) * 100 + i % 7);
                }
            })
        })
        .collect();
    for th in handles {
        th.join().unwrap();
    }
    let s = h.snapshot();
    assert_eq!(s.count, THREADS as u64 * PER_THREAD);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| (t + 1) * 100 + i % 7).sum::<u64>())
        .sum();
    assert_eq!(s.sum, expected_sum);
    assert_eq!(s.buckets.iter().sum::<u64>(), s.count, "bucket totals must cover every record");
}

#[test]
fn gauge_add_sub_from_n_threads_cancels_exactly() {
    let g = Arc::new(Gauge::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let g = Arc::clone(&g);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    g.add(3);
                    g.sub(3);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(g.get(), 0);
}

#[test]
fn registry_get_or_create_is_thread_safe() {
    let r = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                // Every thread races the same names; each must land on the
                // single shared metric instance.
                for _ in 0..1000 {
                    r.counter("shared.counter").inc();
                    r.histogram("shared.hist").record(42);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = r.snapshot();
    assert_eq!(snap.counter("shared.counter"), Some(THREADS as u64 * 1000));
    assert_eq!(snap.histogram("shared.hist").unwrap().count, THREADS as u64 * 1000);
}
