//! Integration tests for the telemetry HTTP server: concurrent scrapes
//! against a live registry, status-code handling over real sockets, and a
//! property test over the request-line parser.

use lightts_obs::http::{self, parse_request_line, ParseError, MAX_REQUEST_HEAD, MAX_REQUEST_LINE};
use lightts_obs::Registry;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn get_raw(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(request).expect("send");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read");
    buf
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let resp = get_raw(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    let status = resp.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn concurrent_scrapes_see_consistent_metrics_during_live_updates() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("scrape.test_events");
    let srv = http::spawn(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
    let addr = srv.addr();

    // A writer hammers the counter while 8 scrapers hit /metrics.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let counter = Arc::clone(&counter);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                counter.inc();
            }
        })
    };
    let scrapers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..12 {
                    let (status, body) = get(addr, "/metrics");
                    assert_eq!(status, 200, "{body}");
                    // Counters render with the conventional `_total` suffix.
                    let line = body
                        .lines()
                        .find(|l| l.starts_with("scrape_test_events_total "))
                        .unwrap_or_else(|| panic!("counter line missing in:\n{body}"));
                    let v: u64 = line.split(' ').nth(1).unwrap().parse().unwrap();
                    assert!(v >= last, "counter went backwards: {v} < {last}");
                    last = v;
                }
            })
        })
        .collect();
    for s in scrapers {
        s.join().expect("scraper thread");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
    srv.shutdown();
}

#[test]
fn endpoints_answer_with_correct_statuses() {
    let registry = Arc::new(Registry::new());
    registry.histogram("h.x_ns").record(42);
    let srv = http::spawn(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
    let addr = srv.addr();

    let (status, body) = get(addr, "/");
    assert_eq!(status, 200);
    assert!(body.contains("/metrics"), "{body}");

    let (status, body) = get(addr, "/metrics.json");
    assert_eq!(status, 200);
    lightts_obs::jsonl::parse(body.trim()).expect("metrics.json parses");

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"scheduler_alive\":null"), "no health callback: {body}");

    assert_eq!(get(addr, "/nothing-here").0, 404);

    // Query strings are stripped before routing.
    assert_eq!(get(addr, "/metrics?format=prometheus").0, 200);

    // Non-GET methods are rejected.
    let resp = get_raw(addr, b"POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

    // Malformed request line.
    let resp = get_raw(addr, b"NOT-HTTP\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // Oversized request line → 414.
    let mut long = Vec::from(&b"GET /"[..]);
    long.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
    long.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let resp = get_raw(addr, &long);
    assert!(resp.starts_with("HTTP/1.1 414"), "{resp}");

    // Oversized head → 413.
    let mut big = Vec::from(&b"GET /metrics HTTP/1.1\r\n"[..]);
    while big.len() <= MAX_REQUEST_HEAD {
        big.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    big.extend_from_slice(b"\r\n");
    let resp = get_raw(addr, &big);
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

    srv.shutdown();
}

#[test]
fn openmetrics_negotiation_over_the_wire() {
    let registry = Arc::new(Registry::new());
    registry.histogram("neg.lat_ns").record_with_exemplar(900, 77);
    let srv = http::spawn(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
    let addr = srv.addr();

    let classic = get_raw(
        addr,
        format!("GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    assert!(classic.contains("text/plain; version=0.0.4"), "{classic}");
    assert!(!classic.contains("trace_id"), "classic exposition must not carry exemplars");

    let om = get_raw(
        addr,
        b"GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: application/openmetrics-text\r\nConnection: close\r\n\r\n",
    );
    assert!(om.contains("application/openmetrics-text"), "{om}");
    assert!(om.contains("# {trace_id=\"77\"} 900"), "exemplar missing: {om}");
    assert!(om.trim_end().ends_with("# EOF"), "{om}");

    srv.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The request-line parser is total: arbitrary bytes never panic, and
    /// every accepted line re-serializes to the same three tokens.
    #[test]
    fn request_line_parser_never_panics(raw in proptest::collection::vec(0u16..256, 0..256)) {
        let bytes: Vec<u8> = raw.iter().map(|&v| v as u8).collect();
        match parse_request_line(&bytes) {
            Ok(r) => {
                prop_assert!(!r.method.is_empty());
                prop_assert!(!r.target.is_empty());
                prop_assert!(r.version.starts_with("HTTP/"));
                let rebuilt = format!("{} {} {}", r.method, r.target, r.version);
                let text = std::str::from_utf8(&bytes).unwrap();
                prop_assert_eq!(text.strip_suffix('\r').unwrap_or(text), rebuilt);
            }
            Err(ParseError::Malformed) => {}
            Err(ParseError::LineTooLong) => prop_assert!(bytes.len() > MAX_REQUEST_LINE),
            Err(ParseError::HeadTooLarge) => prop_assert!(false, "head cap is not the line parser's job"),
        }
    }

    /// Oversized request lines always fail with LineTooLong, never panic.
    #[test]
    fn oversized_request_lines_rejected(extra in 1usize..64) {
        let line = vec![b'a'; MAX_REQUEST_LINE + extra];
        prop_assert_eq!(parse_request_line(&line), Err(ParseError::LineTooLong));
    }
}
