//! Serving correctness: batched results are bitwise identical to
//! per-sample `predict_proba`, the serve path never constructs an autodiff
//! tape, and queue bookkeeping (routing, draining, stats) holds up.
//!
//! Every test in this file must stay tape-free: the zero-tape proof reads
//! a process-global counter, so a concurrently running test that trains a
//! model would pollute it. Models are therefore built from random init
//! plus hand-set batch-norm running statistics.

use lightts_models::inception::{BlockSpec, InceptionConfig, InceptionTime};
use lightts_models::{Classifier, ModelError};
use lightts_serve::{ModelRegistry, Pending, PlanKind, ServeConfig, ServeError, Server};
use lightts_tensor::rng::seeded;
use lightts_tensor::tape::tapes_created;
use lightts_tensor::Tensor;
use std::time::Duration;

const IN_DIMS: usize = 2;
const IN_LEN: usize = 16;

/// A small quantized student with non-trivial BN statistics, built without
/// ever touching the tape (no training).
fn build_model(seed: u64, classes: usize, bits: u8) -> InceptionTime {
    let cfg = InceptionConfig {
        blocks: vec![
            BlockSpec { layers: 2, filter_len: 8, bits },
            BlockSpec { layers: 2, filter_len: 4, bits },
        ],
        filters: 3,
        in_dims: IN_DIMS,
        in_len: IN_LEN,
        num_classes: classes,
    };
    let mut rng = seeded(seed);
    let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
    for (i, c) in model.bn_channel_counts().iter().enumerate() {
        let mean: Vec<f32> = (0..*c).map(|j| 0.04 * j as f32 - 0.08).collect();
        let var: Vec<f32> = (0..*c).map(|j| 0.6 + 0.02 * j as f32).collect();
        model.set_bn_running_stats(i, &mean, &var).unwrap();
    }
    model
}

/// Deterministic pseudo-random sample `i` (pure integer arithmetic — no
/// platform-dependent libm).
fn sample(i: usize) -> Vec<f32> {
    (0..IN_DIMS * IN_LEN)
        .map(|j| {
            let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
            h as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn reference_row(model: &InceptionTime, s: &[f32]) -> Vec<f32> {
    let x = Tensor::from_vec(s.to_vec(), &[1, IN_DIMS, IN_LEN]).unwrap();
    model.predict_proba(&x).unwrap().into_vec()
}

#[test]
fn batched_results_bitwise_equal_single_sample_inference() {
    let model = build_model(21, 4, 8);
    let mut registry = ModelRegistry::new();
    registry.load_packed("student", &model.save_bytes().unwrap()).unwrap();
    // Reload through the same packed bytes so the reference model is the
    // exact model being served.
    let served = InceptionTime::load_bytes(&model.save_bytes().unwrap()).unwrap();

    // Exercise every batch size the scheduler can form under max_batch=4:
    // j <= 4 queued requests fuse into one batch of j (long max_wait makes
    // formation deterministic once the queue is full; smaller j relies on
    // the deadline path).
    for max_batch in [1usize, 2, 4, 16] {
        let cfg =
            ServeConfig { max_batch, max_wait: Duration::from_millis(2), ..ServeConfig::default() };
        let mut reg = ModelRegistry::new();
        reg.load_packed("student", &model.save_bytes().unwrap()).unwrap();
        let server = Server::start(reg, cfg);
        let handle = server.handle();
        let n = 13; // not a multiple of any max_batch: forces partial batches
        let pendings: Vec<Pending> =
            (0..n).map(|i| handle.submit("student", sample(i)).unwrap()).collect();
        for (i, p) in pendings.into_iter().enumerate() {
            let got = p.wait().unwrap();
            let expect = reference_row(&served, &sample(i));
            assert_eq!(got.len(), expect.len());
            for (k, (a, b)) in expect.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "max_batch={max_batch} sample {i} elem {k}: {a} vs {b}"
                );
            }
        }
        let stats = server.stats();
        assert_eq!(stats.requests, n as u64);
        assert!(stats.batches >= n.div_ceil(max_batch) as u64);
        assert!(stats.max_batch <= max_batch);
        server.shutdown();
    }
}

#[test]
fn serve_path_performs_zero_tape_allocations() {
    let model = build_model(22, 3, 4);
    let mut registry = ModelRegistry::new();
    registry.load_packed("student", &model.save_bytes().unwrap()).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();

    // Warm up (grows scratch buffers), then measure.
    handle.predict("student", sample(0)).unwrap();
    let before = tapes_created();
    let pendings: Vec<Pending> =
        (0..32).map(|i| handle.submit("student", sample(i)).unwrap()).collect();
    for p in pendings {
        p.wait().unwrap();
    }
    assert_eq!(tapes_created(), before, "the serve path constructed an autodiff Tape");
    server.shutdown();
}

#[test]
fn routes_between_multiple_models() {
    let m3 = build_model(31, 3, 8);
    let m5 = build_model(32, 5, 8);
    let mut registry = ModelRegistry::new();
    registry.register("three", &m3).unwrap();
    registry.register("five", &m5).unwrap();
    assert_eq!(registry.names(), vec!["three", "five"]);
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    let p3 = handle.predict("three", sample(1)).unwrap();
    let p5 = handle.predict("five", sample(1)).unwrap();
    assert_eq!(p3.len(), 3);
    assert_eq!(p5.len(), 5);
    assert_eq!(p3, reference_row(&m3, &sample(1)));
    assert_eq!(p5, reference_row(&m5, &sample(1)));
    server.shutdown();
}

#[test]
fn rejects_unknown_models_and_bad_lengths() {
    let model = build_model(41, 2, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    assert!(matches!(handle.predict("nope", sample(0)), Err(ServeError::UnknownModel { .. })));
    assert!(matches!(handle.predict("student", vec![1.0; 3]), Err(ServeError::BadRequest { .. })));
    // Valid requests still succeed afterwards.
    assert_eq!(handle.predict("student", sample(0)).unwrap().len(), 2);
    server.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests_then_rejects() {
    let model = build_model(51, 3, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    // Long max_wait: pending requests would sit for 10s unless shutdown
    // drains them promptly.
    let cfg =
        ServeConfig { max_batch: 64, max_wait: Duration::from_secs(10), ..ServeConfig::default() };
    let server = Server::start(registry, cfg);
    let handle = server.handle();
    let pendings: Vec<Pending> =
        (0..5).map(|i| handle.submit("student", sample(i)).unwrap()).collect();
    server.shutdown();
    for p in pendings {
        assert!(p.wait().is_ok(), "accepted request dropped on shutdown");
    }
    assert!(matches!(handle.submit("student", sample(0)), Err(ServeError::Shutdown)));
}

#[test]
fn stats_track_latency_and_throughput() {
    let model = build_model(61, 3, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    let pendings: Vec<Pending> =
        (0..8).map(|i| handle.submit("student", sample(i)).unwrap()).collect();
    for p in pendings {
        p.wait().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.errors, 0);
    assert!(stats.batches >= 1);
    assert!(stats.mean_batch_size() >= 1.0);
    assert!(stats.total_latency > Duration::ZERO);
    assert!(stats.total_service > Duration::ZERO);
    assert!(stats.service_throughput() > 0.0);
    server.shutdown();
}

#[test]
fn rejects_non_finite_inputs_with_typed_error() {
    let model = build_model(81, 3, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    let mut bad = sample(0);
    bad[7] = f32::NAN;
    assert_eq!(handle.predict("student", bad), Err(ServeError::NonFiniteInput { index: 7 }));
    let mut bad = sample(0);
    bad[3] = f32::INFINITY;
    assert_eq!(handle.predict("student", bad), Err(ServeError::NonFiniteInput { index: 3 }));
    // Valid requests still succeed afterwards.
    assert_eq!(handle.predict("student", sample(0)).unwrap().len(), 3);
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_error_and_counter() {
    let model = build_model(82, 3, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    // max_batch larger than max_queue and a long max_wait: nothing drains
    // until the queue fills, so the admission bound is exercised exactly.
    let cfg = ServeConfig {
        max_batch: 1024,
        max_wait: Duration::from_secs(10),
        max_queue: 3,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();
    let accepted: Vec<Pending> =
        (0..3).map(|i| handle.submit("student", sample(i)).unwrap()).collect();
    let shed = handle.submit("student", sample(3));
    assert_eq!(shed.err(), Some(ServeError::Overloaded { model: "student".into(), max_queue: 3 }));
    let stats = handle.stats();
    assert_eq!(stats.shed_overload, 1);
    // The accepted requests are still answered (shutdown drains).
    server.shutdown();
    for p in accepted {
        assert!(p.wait().is_ok());
    }
}

#[test]
fn expired_deadlines_are_shed_before_inference() {
    let model = build_model(83, 3, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    // max_wait far beyond the deadline: by the time the scheduler forms
    // the batch (after max_wait), every deadline has long expired.
    let cfg = ServeConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(50),
        max_queue: 64,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();
    let pendings: Vec<Pending> = (0..4)
        .map(|i| {
            handle.submit_with_deadline("student", sample(i), Duration::from_millis(1)).unwrap()
        })
        .collect();
    for p in pendings {
        assert_eq!(p.wait(), Err(ServeError::DeadlineExceeded));
    }
    let stats = handle.stats();
    assert_eq!(stats.shed_deadline, 4);
    assert_eq!(stats.requests, 0, "shed requests must not run inference");
    // A generous deadline still gets an answer.
    let ok =
        handle.submit_with_deadline("student", sample(0), Duration::from_secs(30)).unwrap().wait();
    assert!(ok.is_ok());
    server.shutdown();
}

#[test]
fn robustness_counters_appear_in_metrics_exposition() {
    let model = build_model(84, 3, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    let cfg = ServeConfig {
        max_batch: 1024,
        max_wait: Duration::from_secs(10),
        max_queue: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let handle = server.handle();
    let held = handle.submit("student", sample(0)).unwrap();
    assert!(handle.submit("student", sample(1)).is_err()); // shed: queue full
    let snap = server.metrics().snapshot();
    assert_eq!(snap.counter("serve.shed_overload"), Some(1));
    assert_eq!(snap.counter("serve.shed_deadline"), Some(0));
    assert_eq!(snap.counter("serve.batch_panics"), Some(0));
    let prom = snap.render_prometheus();
    for name in ["serve_shed_overload", "serve_shed_deadline", "serve_batch_panics"] {
        assert!(prom.contains(name), "{name} missing from Prometheus exposition:\n{prom}");
    }
    server.shutdown();
    assert!(held.wait().is_ok());
}

/// Reference row through the int8 plan directly (per-sample, no server).
fn reference_row_i8(model: &InceptionTime, s: &[f32]) -> Vec<f32> {
    let mut plan = model.compile_quantized().unwrap();
    let mut out = Vec::new();
    plan.predict_proba_into(s, 1, &mut out).unwrap();
    out
}

#[test]
fn i8_plan_serving_is_batch_size_invariant_bitwise() {
    let model = build_model(91, 4, 8);
    let packed = model.save_bytes().unwrap();
    let served = InceptionTime::load_bytes(&packed).unwrap();
    for max_batch in [1usize, 2, 4, 16] {
        let cfg = ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(2),
            plan: PlanKind::I8,
            ..ServeConfig::default()
        };
        let mut reg = ModelRegistry::for_config(&cfg);
        assert_eq!(reg.default_plan(), PlanKind::I8);
        reg.load_packed("student", &packed).unwrap();
        assert_eq!(reg.plan_kind("student"), Some(PlanKind::I8));
        let server = Server::start(reg, cfg);
        let handle = server.handle();
        let n = 13; // not a multiple of any max_batch: forces partial batches
        let pendings: Vec<Pending> =
            (0..n).map(|i| handle.submit("student", sample(i)).unwrap()).collect();
        for (i, p) in pendings.into_iter().enumerate() {
            let got = p.wait().unwrap();
            let expect = reference_row_i8(&served, &sample(i));
            assert_eq!(got.len(), expect.len());
            for (k, (a, b)) in expect.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "i8 max_batch={max_batch} sample {i} elem {k}: {a} vs {b}"
                );
            }
        }
        let stats = server.stats();
        assert_eq!(stats.requests, n as u64);
        assert_eq!(stats.plan_i8_requests, n as u64);
        assert_eq!(stats.plan_f32_requests, 0);
        server.shutdown();
    }
}

#[test]
fn mixed_registry_routes_f32_and_i8_plans_correctly() {
    let model = build_model(92, 4, 8);
    let mut registry = ModelRegistry::new();
    registry.register_as("fast", &model, PlanKind::F32).unwrap();
    registry.register_as("small", &model, PlanKind::I8).unwrap();
    assert_eq!(registry.plan_kind("fast"), Some(PlanKind::F32));
    assert_eq!(registry.plan_kind("small"), Some(PlanKind::I8));
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    for i in 0..6 {
        let f = handle.predict("fast", sample(i)).unwrap();
        let q = handle.predict("small", sample(i)).unwrap();
        // Each lane reproduces its own reference bitwise; same model, two
        // resident plans, routed by name.
        assert_eq!(f, reference_row(&model, &sample(i)), "f32 lane, sample {i}");
        assert_eq!(q, reference_row_i8(&model, &sample(i)), "i8 lane, sample {i}");
    }
    let stats = server.stats();
    assert_eq!(stats.plan_f32_requests, 6);
    assert_eq!(stats.plan_i8_requests, 6);
    assert_eq!(stats.requests, 12);
    let snap = server.metrics().snapshot();
    assert_eq!(snap.counter("serve.plan_f32_requests"), Some(6));
    assert_eq!(snap.counter("serve.plan_i8_requests"), Some(6));
    server.shutdown();
}

#[test]
fn unsupported_plan_kind_is_a_typed_registration_error() {
    // A model packed with 32-bit (and 16-bit) quantization metadata cannot
    // serve the i8 plan: registration must fail with a typed error — never
    // a panic — and leave the registry unchanged.
    for bits in [16u8, 32] {
        let model = build_model(93, 3, bits);
        let packed = model.save_bytes().unwrap();
        let mut registry = ModelRegistry::new();
        match registry.load_packed_as("student", &packed, PlanKind::I8) {
            Err(ServeError::Model(ModelError::UnsupportedPlan { .. })) => {}
            other => panic!("bits={bits}: expected UnsupportedPlan, got {other:?}"),
        }
        assert!(registry.is_empty(), "failed registration must not leave an entry");
        // The same bytes still load fine as f32.
        registry.load_packed_as("student", &packed, PlanKind::F32).unwrap();
        assert_eq!(registry.plan_kind("student"), Some(PlanKind::F32));
    }
}

#[test]
fn malformed_packed_bytes_surface_typed_errors_for_both_plan_kinds() {
    let model = build_model(94, 3, 8);
    let packed = model.save_bytes().unwrap();
    for kind in [PlanKind::F32, PlanKind::I8] {
        let mut registry = ModelRegistry::new();
        // Truncated container.
        assert!(registry.load_packed_as("m", &packed[..packed.len() / 2], kind).is_err());
        // Corrupted magic.
        let mut bad = packed.clone();
        bad[0] ^= 0xFF;
        assert!(registry.load_packed_as("m", &bad, kind).is_err());
        assert!(registry.is_empty());
    }
}

#[test]
fn metrics_expose_tensor_pool_gauges_after_traffic() {
    let model = build_model(71, 3, 8);
    let mut registry = ModelRegistry::new();
    registry.register("student", &model).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let handle = server.handle();
    for i in 0..4 {
        handle.predict("student", sample(i)).unwrap();
    }
    // stats() snapshots the registry, which refreshes the pool gauges.
    let _ = server.stats();
    let snap = server.metrics().snapshot();
    let gauge = |name: &str| snap.gauge(name).unwrap_or_else(|| panic!("missing gauge {name}"));
    // The scheduler's pooled scratch guarantees a non-trivial high-water
    // mark, and hits+misses covers every pooled take it performed.
    assert!(gauge("serve.pool_high_water_bytes") > 0);
    assert!(gauge("serve.pool_hits") + gauge("serve.pool_misses") > 0);
    server.shutdown();
}
