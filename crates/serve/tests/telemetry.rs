//! Live-telemetry integration: a serving instance must answer all four
//! observability endpoints over real TCP, one trace id must reconstruct a
//! request's full stage breakdown from `/tracez`, `/healthz` must track
//! scheduler liveness (including recovery telemetry after a shard death),
//! and profiling must stay zero-allocation when off.

use lightts_models::inception::{BlockSpec, InceptionConfig, InceptionTime};
use lightts_serve::{ModelRegistry, Pending, ServeConfig, ServeError, Server};
use lightts_tensor::rng::seeded;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Failpoints are process-global: the recovery test arms one, so every
/// test in this binary serializes on this lock to keep a stray armed
/// failpoint from killing an innocent server.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const IN_DIMS: usize = 2;
const IN_LEN: usize = 16;

fn build_model(seed: u64, classes: usize) -> InceptionTime {
    let cfg = InceptionConfig {
        blocks: vec![BlockSpec { layers: 2, filter_len: 8, bits: 8 }],
        filters: 3,
        in_dims: IN_DIMS,
        in_len: IN_LEN,
        num_classes: classes,
    };
    let mut rng = seeded(seed);
    let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
    for (i, c) in model.bn_channel_counts().iter().enumerate() {
        let mean: Vec<f32> = (0..*c).map(|j| 0.04 * j as f32 - 0.08).collect();
        let var: Vec<f32> = (0..*c).map(|j| 0.6 + 0.02 * j as f32).collect();
        model.set_bn_running_stats(i, &mean, &var).unwrap();
    }
    model
}

fn sample(i: usize) -> Vec<f32> {
    (0..IN_DIMS * IN_LEN)
        .map(|j| {
            let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
            h as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").expect("send");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read");
    let status = buf.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn live_server_answers_all_endpoints_and_traces_reconstruct() {
    let _g = lock();
    // Profiling stays OFF here: the same serving path must allocate no
    // profiler tree nodes (the LIGHTTS_PROF=0 zero-overhead contract) —
    // checked at the end against a snapshot taken now.
    let nodes_before = lightts_obs::prof::node_count();

    let model = build_model(31, 4);
    let mut registry = ModelRegistry::new();
    registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let telemetry = server.serve_telemetry("127.0.0.1:0").expect("bind telemetry");
    let addr = telemetry.addr();

    let handle = server.handle();
    let pendings: Vec<Pending> = (0..64).map(|i| handle.submit("m", sample(i)).unwrap()).collect();
    for p in pendings {
        p.wait().unwrap();
    }

    // /healthz: alive while the scheduler runs, and the body reports the
    // shard topology (default config on one model resolves to one shard).
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"scheduler_alive\":true"), "{body}");
    assert!(body.contains("\"shards_alive\":1"), "{body}");
    assert!(body.contains("\"shards_total\":1"), "{body}");

    // /metrics: stage histograms present with TYPE lines; request counter
    // reflects the traffic.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for series in ["serve_queue_wait_ns", "serve_fuse_ns", "serve_forward_ns", "serve_reply_ns"] {
        assert!(body.contains(&format!("# TYPE {series} histogram")), "{series} missing:\n{body}");
        assert!(
            body.lines().any(|l| l.starts_with(&format!("{series}_count ")) && !l.ends_with(" 0")),
            "{series} recorded nothing:\n{body}"
        );
    }
    assert!(body.contains("serve_requests_total 64"), "{body}");

    // /metrics.json parses and carries exemplar arrays.
    let (status, body) = get(addr, "/metrics.json");
    assert_eq!(status, 200);
    lightts_obs::jsonl::parse(body.trim()).expect("metrics JSON parses");
    assert!(body.contains("\"exemplars\":"), "{body}");

    // /tracez: every line passes the schema, linkage holds, and one trace
    // id reconstructs the full queue-wait/fuse/forward/reply breakdown.
    let (status, body) = get(addr, "/tracez");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "ring is empty");
    for l in &lines {
        lightts_obs::jsonl::validate_event_line(l).unwrap_or_else(|e| panic!("{e}: {l}"));
    }
    let traces =
        lightts_obs::jsonl::validate_trace_linkage(lines.iter().copied()).expect("linkage");
    assert!(traces > 0, "no serve traces in the ring");
    // Pick the trace id out of one root span and count its stage spans.
    let root = lines
        .iter()
        .find(|l| l.contains("\"path\":\"serve.request\""))
        .expect("a serve.request root span");
    let tid = {
        let tail = root.split("\"trace_id\":").nth(1).expect("trace_id field");
        tail.split(|c: char| !c.is_ascii_digit()).next().unwrap().to_string()
    };
    for stage in ["serve.queue_wait", "serve.fuse", "serve.forward", "serve.reply"] {
        assert!(
            lines.iter().any(|l| l.contains(&format!("\"path\":\"{stage}\""))
                && l.contains(&format!("\"trace_id\":{tid}"))),
            "trace {tid} is missing its {stage} span"
        );
    }

    // /profilez exists; with LIGHTTS_PROF off it must be empty for the
    // serve-driven paths, and the profiler tree must not have grown.
    let (status, _) = get(addr, "/profilez");
    assert_eq!(status, 200);
    assert_eq!(
        lightts_obs::prof::node_count(),
        nodes_before,
        "serving with LIGHTTS_PROF off must allocate no profiler nodes"
    );

    // /healthz flips to 503 once the *last* shard is gone.
    server.shutdown();
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"scheduler_alive\":false"), "{body}");
    assert!(body.contains("\"shards_alive\":0"), "{body}");
    assert!(body.contains("\"shards_total\":1"), "{body}");

    telemetry.shutdown();
}

/// Recovery telemetry: a shard death and respawn must be visible end to
/// end — `/healthz` transitions `ok → recovering/degraded-free ok` with
/// restart counters and a last-restart timestamp, and `/metrics` carries
/// the per-shard restart counter and the circuit-state gauges.
#[test]
fn shard_respawn_is_visible_in_healthz_and_metrics() {
    let _g = lock();
    let model_a = build_model(35, 4);
    let model_b = build_model(36, 3);
    let mut registry = ModelRegistry::new();
    registry.load_packed("a", &model_a.save_bytes().unwrap()).unwrap();
    registry.load_packed("b", &model_b.save_bytes().unwrap()).unwrap();
    // One replica each on two shards: the sibling keeps `/healthz` at 200
    // while the killed shard is being respawned.
    let cfg = ServeConfig {
        shards: 2,
        replicas: 1,
        max_wait: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let telemetry = server.serve_telemetry("127.0.0.1:0").expect("bind telemetry");
    let addr = telemetry.addr();
    let handle = server.handle();
    let shard_a = handle.route_of("a", 0).unwrap();

    // Healthy baseline: status ok, zero restarts, no failed shards, no
    // restart timestamp yet — and the circuit gauge scrapes as closed.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"restarts\":0"), "{body}");
    assert!(body.contains("\"shards_failed\":0"), "{body}");
    assert!(body.contains("\"last_restart_us\":0"), "{body}");
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("serve_circuit0_state 0"), "{body}");
    assert!(body.contains(&format!("serve_shard{shard_a}_restarts_total 0")), "{body}");

    // Kill "a"'s shard; the supervisor respawns it while "b"'s shard keeps
    // the server healthy.
    lightts_obs::failpoint::set_failpoints("serve.shard=panic@1").unwrap();
    match handle.predict("a", sample(0)) {
        Err(ServeError::SchedulerDied { shard }) => assert_eq!(shard, Some(shard_a)),
        other => panic!("request on the dying shard got {other:?}"),
    }
    lightts_obs::failpoint::clear_failpoints();

    // Poll healthz itself back to `ok`: in between it may legitimately
    // report `recovering` (the shard is alive but the supervisor has not
    // finished its bookkeeping), and that transient is itself part of the
    // contract — never `degraded`, never a 503.
    let deadline = Instant::now() + Duration::from_secs(10);
    let body = loop {
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200, "mid-respawn healthz must stay 200: {body}");
        assert!(!body.contains("\"status\":\"degraded\""), "{body}");
        if body.contains("\"status\":\"ok\"") && body.contains("\"restarts\":1") {
            break body;
        }
        assert!(Instant::now() < deadline, "healthz never recovered: {body}");
        std::thread::sleep(Duration::from_millis(5));
    };

    // Recovered: healthz carries the recovery counters — one restart,
    // nothing permanently failed, and a real (nonzero epoch µs)
    // last-restart timestamp.
    assert!(body.contains("\"restarts\":1"), "{body}");
    assert!(body.contains("\"shards_failed\":0"), "{body}");
    let ts: i64 = body
        .split("\"last_restart_us\":")
        .nth(1)
        .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("no last_restart_us in {body}"));
    assert!(ts > 1_600_000_000_000_000, "last_restart_us should be epoch µs, got {ts}");

    // The scrape sees the same story, per shard.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains(&format!("serve_shard{shard_a}_restarts_total 1")), "{body}");
    assert!(body.contains("serve_restarts_total 1"), "{body}");
    assert!(body.contains("serve_circuit0_state 0"), "{body}");

    // And the reborn shard actually serves.
    handle.predict("a", sample(1)).unwrap();
    server.shutdown();
    telemetry.shutdown();
}

#[test]
fn telemetry_server_sheds_cleanly_and_survives_bad_clients() {
    let _g = lock();
    let model = build_model(33, 3);
    let mut registry = ModelRegistry::new();
    registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();
    let server = Server::start(registry, ServeConfig::default());
    let telemetry = server.serve_telemetry("127.0.0.1:0").expect("bind telemetry");
    let addr = telemetry.addr();

    // A client that connects and hangs up mid-request must not wedge the
    // workers.
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(b"GET /met");
        drop(s);
    }
    // A garbage client gets a clean 400.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"\x01\x02\x03 garbage\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // And the server still answers normal requests afterwards.
    let (status, _) = get(addr, "/metrics");
    assert_eq!(status, 200);

    telemetry.shutdown();
    server.shutdown();
}
