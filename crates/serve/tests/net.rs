//! Front-door integration: the TCP/Unix `LTSP` path must be semantically
//! *and bitwise* identical to in-process submission — same golden answers,
//! same typed errors, same shed/drain behavior — for any shard count.
//!
//! The golden student fixture (`tests/fixtures/golden_student.bin`, pinned
//! by `tests/golden_model.rs`) is served here so the byte-for-byte
//! contract covers the exact artifact the repo ships.

use lightts_serve::wire::{self, Reply, Status};
use lightts_serve::{ModelRegistry, NetClient, NetError, ServeConfig, ServeError, Server};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

const IN_DIMS: usize = 1;
const IN_LEN: usize = 32;
const CLASSES: usize = 6;

fn golden_packed() -> &'static [u8] {
    include_bytes!("../../../tests/fixtures/golden_student.bin")
}

/// Deterministic input `i`, same integer-derived recipe as the golden
/// fixture's inputs (pure integer arithmetic — no libm).
fn sample(i: usize) -> Vec<f32> {
    (0..IN_DIMS * IN_LEN)
        .map(|j| {
            let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
            h as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn start_server(shards: usize) -> Server {
    let mut registry = ModelRegistry::new();
    registry.load_packed("golden", golden_packed()).unwrap();
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards,
        replicas: 0, // all shards
        ..ServeConfig::default()
    };
    Server::start(registry, cfg)
}

#[test]
fn tcp_replies_bitwise_equal_in_process_submit_for_golden_student() {
    let server = start_server(1);
    let net = server.serve_net("127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(net.addr()).unwrap();
    let handle = server.handle();

    for i in 0..12 {
        let local = handle.predict("golden", sample(i)).unwrap();
        let remote = client.predict("golden", &sample(i)).unwrap();
        assert_eq!(local.len(), CLASSES);
        let l: Vec<u32> = local.iter().map(|v| v.to_bits()).collect();
        let r: Vec<u32> = remote.iter().map(|v| v.to_bits()).collect();
        assert_eq!(l, r, "sample {i}: TCP reply drifted from in-process bits");
    }
    server.shutdown();
}

#[test]
fn shard_counts_one_and_four_answer_bitwise_identically_over_tcp() {
    let s1 = start_server(1);
    let s4 = start_server(4);
    assert_eq!(s1.shards(), 1);
    assert_eq!(s4.shards(), 4);
    let n1 = s1.serve_net("127.0.0.1:0").unwrap();
    let n4 = s4.serve_net("127.0.0.1:0").unwrap();
    let mut c1 = NetClient::connect(n1.addr()).unwrap();
    let mut c4 = NetClient::connect(n4.addr()).unwrap();

    for i in 0..16 {
        let a = c1.predict("golden", &sample(i)).unwrap();
        let b = c4.predict("golden", &sample(i)).unwrap();
        let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "sample {i}: shard count changed the answer bits");
    }
    s1.shutdown();
    s4.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_answers_identically_to_tcp() {
    let server = start_server(2);
    let net_tcp = server.serve_net("127.0.0.1:0").unwrap();
    let path =
        std::env::temp_dir().join(format!("lightts-serve-net-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let net_unix = server.serve_unix(&path).unwrap();
    let mut tcp = NetClient::connect(net_tcp.addr()).unwrap();
    let mut unix = NetClient::connect_unix(&path).unwrap();

    for i in 0..6 {
        let a = tcp.predict("golden", &sample(i)).unwrap();
        let b = unix.predict("golden", &sample(i)).unwrap();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "sample {i}: unix-socket reply drifted from TCP"
        );
    }
    drop(unix);
    net_unix.shutdown();
    assert!(!path.exists(), "unix socket file must be unlinked on shutdown");
    server.shutdown();
}

#[test]
fn typed_errors_cross_the_wire_as_their_status() {
    let server = start_server(1);
    let net = server.serve_net("127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(net.addr()).unwrap();

    match client.predict("nope", &sample(0)).unwrap_err() {
        NetError::Serve(ServeError::UnknownModel { name }) => assert_eq!(name, "nope"),
        other => panic!("unknown model crossed the wire as {other:?}"),
    }
    match client.predict("golden", &[1.0, 2.0]).unwrap_err() {
        NetError::Serve(ServeError::BadRequest { .. }) => {}
        other => panic!("bad shape crossed the wire as {other:?}"),
    }
    let mut bad = sample(0);
    bad[7] = f32::NAN;
    match client.predict("golden", &bad).unwrap_err() {
        NetError::Serve(ServeError::NonFiniteInput { index }) => assert_eq!(index, 7),
        other => panic!("NaN input crossed the wire as {other:?}"),
    }
    // The connection survives typed request errors: a good request after
    // three bad ones still answers.
    assert_eq!(client.predict("golden", &sample(1)).unwrap().len(), CLASSES);
    server.shutdown();
}

#[test]
fn expired_deadline_comes_back_as_deadline_status() {
    let mut registry = ModelRegistry::new();
    registry.load_packed("golden", golden_packed()).unwrap();
    // Batch forms only after 20 ms, so a 1 µs deadline is always expired
    // by the time the scheduler looks at the request: deterministic shed.
    let cfg = ServeConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let net = server.serve_net("127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(net.addr()).unwrap();
    let id = client.send("golden", &sample(0), Some(Duration::from_micros(1))).unwrap();
    match client.recv().unwrap() {
        Reply::Err { request_id, error: ServeError::DeadlineExceeded } => {
            assert_eq!(request_id, id)
        }
        other => panic!("expired deadline crossed the wire as {other:?}"),
    }
    server.shutdown();
}

#[test]
fn shutdown_under_load_drains_every_accepted_request() {
    let mut registry = ModelRegistry::new();
    registry.load_packed("golden", golden_packed()).unwrap();
    // Park the scheduler: an unreachable batch size and a long wait keep
    // every pipelined request queued until shutdown drains them.
    let cfg = ServeConfig {
        max_batch: 10_000,
        max_wait: Duration::from_secs(10),
        max_queue: 64,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    let net = server.serve_net("127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(net.addr()).unwrap();

    const N: usize = 8;
    let mut ids = Vec::new();
    for i in 0..N {
        ids.push(client.send("golden", &sample(i), None).unwrap());
    }
    // Let the connection reader enqueue everything before pulling the plug.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();

    // Every pipelined request gets a real OK reply — drained, not dropped
    // on a closed socket — in submission order.
    for (i, id) in ids.iter().enumerate() {
        match client.recv().unwrap() {
            Reply::Ok { request_id, probs } => {
                assert_eq!(request_id, *id, "reply {i} out of FIFO order");
                assert_eq!(probs.len(), CLASSES);
            }
            other => panic!("request {i} got {other:?} instead of a drained OK"),
        }
    }
    // …and only then does the socket close cleanly.
    match client.recv().unwrap_err() {
        NetError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected clean EOF after drain, got {other:?}"),
    }
}

#[test]
fn garbage_frame_gets_badreq_then_close() {
    let server = start_server(1);
    let net = server.serve_net("127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(net.addr()).unwrap();
    wire::write_handshake(&mut stream).unwrap();
    wire::write_frame(&mut stream, b"\xffthis is not a predict request").unwrap();
    stream.flush().unwrap();

    let payload = wire::read_frame(&mut stream).unwrap().expect("reply frame").unwrap();
    assert_eq!(payload.first(), Some(&(Status::BadReq as u8)), "garbage must answer BADREQ");
    match wire::decode_reply(&payload).unwrap() {
        Reply::Err { request_id, error: ServeError::BadRequest { .. } } => {
            assert_eq!(request_id, 0, "no id was parsed, the reply echoes 0")
        }
        other => panic!("garbage frame decoded as {other:?}"),
    }
    // The server hangs up after a protocol error — desync is not survivable.
    assert!(wire::read_frame(&mut stream).unwrap().is_none(), "expected EOF after BADREQ");
    server.shutdown();
}
