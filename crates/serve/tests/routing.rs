//! Replica routing properties: the hash route is **total** (never panics,
//! any id × any replica count), **deterministic** (a pure function of the
//! request id), in range, and actually spreads load; the liveness-masked
//! variant degrades to the unmasked route when everything is live, only
//! ever lands on live replicas, and is just as deterministic; the
//! server-level `route_of` upholds the same contract and agrees with
//! where requests really land.

use lightts_models::inception::{BlockSpec, InceptionConfig, InceptionTime};
use lightts_serve::{route_replica, route_replica_masked, ModelRegistry, ServeConfig, Server};
use lightts_tensor::rng::seeded;
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

const IN_DIMS: usize = 2;
const IN_LEN: usize = 16;

fn build_model(seed: u64, classes: usize) -> InceptionTime {
    let cfg = InceptionConfig {
        blocks: vec![
            BlockSpec { layers: 2, filter_len: 8, bits: 8 },
            BlockSpec { layers: 2, filter_len: 4, bits: 4 },
        ],
        filters: 3,
        in_dims: IN_DIMS,
        in_len: IN_LEN,
        num_classes: classes,
    };
    let mut rng = seeded(seed);
    let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
    for (i, c) in model.bn_channel_counts().iter().enumerate() {
        let mean: Vec<f32> = (0..*c).map(|j| 0.04 * j as f32 - 0.08).collect();
        let var: Vec<f32> = (0..*c).map(|j| 0.6 + 0.02 * j as f32).collect();
        model.set_bn_running_stats(i, &mean, &var).unwrap();
    }
    model
}

fn sample(i: usize) -> Vec<f32> {
    (0..IN_DIMS * IN_LEN)
        .map(|j| {
            let h = (i as u64 * 1_000_003 + j as u64).wrapping_mul(2_654_435_761) % 2000;
            h as f32 / 1000.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Total, deterministic, in range — for any id and any replica count
    /// including the degenerate 0 (treated as 1).
    #[test]
    fn route_replica_total_deterministic_in_range(id in 0u64..u64::MAX, replicas in 0usize..65) {
        let r = route_replica(id, replicas);
        // Pure in the id: calling twice must agree.
        prop_assert_eq!(r, route_replica(id, replicas));
        prop_assert!(r < replicas.max(1), "route {r} out of range for {replicas} replicas");
    }

    /// Sequential ids — the realistic client pattern — spread across all
    /// replicas: the splitmix64 finalizer decorrelates low bits, so no
    /// replica starves even under strictly increasing ids.
    #[test]
    fn sequential_ids_reach_every_replica(start in 0u64..u64::MAX, replicas in 2usize..9) {
        let hit: HashSet<usize> =
            (0..64u64).map(|k| route_replica(start.wrapping_add(k), replicas)).collect();
        // 64 sequential ids must not leave any replica idle.
        prop_assert_eq!(hit.len(), replicas);
    }

    /// The liveness-masked route is total and deterministic, answers
    /// `None` exactly when nothing is live, and otherwise only ever picks
    /// a live index — for any id and any liveness mask.
    #[test]
    fn masked_route_is_deterministic_and_lands_only_on_live_replicas(
        id in 0u64..u64::MAX,
        mask in prop::collection::vec(0u8..2, 0..12),
    ) {
        let live: Vec<bool> = mask.iter().map(|&b| b == 1).collect();
        let r = route_replica_masked(id, &live);
        // Pure in (id, mask): calling twice must agree.
        prop_assert_eq!(r, route_replica_masked(id, &live));
        match r {
            Some(k) => prop_assert!(live[k], "masked route landed on dead replica {k}"),
            None => prop_assert!(
                live.iter().all(|&a| !a),
                "masked route gave up while replicas were live"
            ),
        }
    }

    /// With every replica live, the mask changes nothing: the masked route
    /// *is* `route_replica` — so masking cannot reshuffle healthy traffic.
    #[test]
    fn fully_live_mask_is_the_identity_route(id in 0u64..u64::MAX, replicas in 1usize..12) {
        let live = vec![true; replicas];
        prop_assert_eq!(route_replica_masked(id, &live), Some(route_replica(id, replicas)));
    }

    /// The masked route keeps spreading load: sequential ids over a mask
    /// with several live replicas must reach every live replica — a dead
    /// sibling cannot starve a live one.
    #[test]
    fn sequential_ids_reach_every_live_replica_under_masking(
        start in 0u64..u64::MAX,
        mask in prop::collection::vec(0u8..2, 2..9),
    ) {
        let live: Vec<bool> = mask.iter().map(|&b| b == 1).collect();
        prop_assume!(live.iter().filter(|&&a| a).count() >= 2);
        let hit: HashSet<usize> = (0..64u64)
            .filter_map(|k| route_replica_masked(start.wrapping_add(k), &live))
            .collect();
        let want: HashSet<usize> =
            live.iter().enumerate().filter(|(_, &a)| a).map(|(i, _)| i).collect();
        prop_assert_eq!(hit, want);
    }
}

#[test]
fn route_of_agrees_with_route_replica_and_is_pure() {
    let model = build_model(31, 4);
    let mut registry = ModelRegistry::new();
    registry.load_packed("m", &model.save_bytes().unwrap()).unwrap();
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        shards: 4,
        replicas: 0, // replicate onto all four shards
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg);
    assert_eq!(server.shards(), 4);
    let handle = server.handle();

    assert_eq!(handle.route_of("nope", 1), None);
    let mut hit = HashSet::new();
    for id in 0..256u64 {
        let s1 = handle.route_of("m", id).unwrap();
        let s2 = handle.route_of("m", id).unwrap();
        assert_eq!(s1, s2, "route_of must be pure in the id");
        assert!(s1 < 4);
        // With replicas on every shard in placement order, the route is
        // exactly the public hash function.
        assert_eq!(s1, route_replica(id, 4));
        hit.insert(s1);
    }
    assert_eq!(hit.len(), 4, "256 ids left a shard idle");

    // Keyed submissions land where route_of said they would: serve them
    // and check the per-shard request counters moved only where promised.
    let mut expected = [0u64; 4];
    for id in 0..32u64 {
        expected[handle.route_of("m", id).unwrap()] += 1;
        handle.submit_keyed("m", sample(id as usize), id, None).unwrap().wait().unwrap();
    }
    let metrics = server.metrics().snapshot();
    for (si, want) in expected.iter().enumerate() {
        let got = metrics.counter(&format!("serve.shard{si}.requests")).unwrap_or(0);
        assert_eq!(got, *want, "shard {si} served {got} requests, routing promised {want}");
    }
    server.shutdown();
}
