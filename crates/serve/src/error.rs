//! Error type for the serving runtime.

use lightts_models::ModelError;
use std::fmt;

/// Errors produced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A request named a model the registry does not hold.
    UnknownModel {
        /// The requested model name.
        name: String,
    },
    /// A request's input did not match the model's expected shape.
    BadRequest {
        /// Description of the violated constraint.
        what: String,
    },
    /// A request's input contained a NaN or infinite value — rejected at
    /// admission rather than propagated into (silently garbage) logits.
    NonFiniteInput {
        /// Index of the first offending scalar in the submitted sample.
        index: usize,
    },
    /// The model's queue is full; the request was shed at admission
    /// (backpressure). Retry later or against another replica.
    Overloaded {
        /// The model whose queue is full.
        model: String,
        /// The configured per-model queue bound
        /// ([`ServeConfig::max_queue`](crate::ServeConfig)).
        max_queue: usize,
    },
    /// The request's deadline expired before a prediction was produced —
    /// either shed by the scheduler pre-inference, or reported by
    /// [`Pending::wait_timeout`](crate::Pending::wait_timeout) on the
    /// caller side.
    DeadlineExceeded,
    /// The fused forward for this request's batch failed (e.g. panicked).
    /// Only the requests of that batch are affected; the scheduler
    /// recovers and keeps serving.
    Inference {
        /// Description of the failure.
        what: String,
    },
    /// Loading or running a model failed.
    Model(ModelError),
    /// The server is shutting down and no longer accepts requests.
    Shutdown,
    /// A scheduler shard thread is gone without a clean shutdown (it died
    /// or was killed) — distinct from [`Shutdown`](Self::Shutdown) so
    /// callers can tell a drained server from a crashed one. Sibling
    /// shards keep serving their own models; only requests routed to the
    /// dead shard get this error.
    SchedulerDied {
        /// Which shard died, when known. `None` when the death was
        /// observed only as a dropped reply channel (the caller side
        /// cannot tell which shard held the request).
        shard: Option<usize>,
    },
    /// The model's circuit breaker is open: its last
    /// [`ServeConfig::circuit_threshold`](crate::ServeConfig) batches all
    /// failed, so submissions are shed at admission — fast, without
    /// queueing — until a half-open probe succeeds after the cooldown.
    CircuitOpen {
        /// The model whose breaker is open.
        model: String,
    },
}

impl ServeError {
    /// Whether a client retry of the *same* request can reasonably
    /// succeed: transient capacity/topology failures
    /// ([`Overloaded`](Self::Overloaded), [`SchedulerDied`](Self::SchedulerDied)
    /// — the wire's `OVERLOADED` and `UNAVAILABLE` statuses) qualify;
    /// everything else is either permanent for this request (bad input,
    /// unknown model), deterministic (a failed forward re-runs
    /// identically), deadline-bounded, or a clean shutdown. This is the
    /// class [`RetryPolicy`](crate::RetryPolicy) retries.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::Overloaded { .. } | Self::SchedulerDied { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel { name } => write!(f, "unknown model {name:?}"),
            Self::BadRequest { what } => write!(f, "bad request: {what}"),
            Self::NonFiniteInput { index } => {
                write!(f, "bad request: non-finite input value at index {index}")
            }
            Self::Overloaded { model, max_queue } => {
                write!(f, "model {model:?} overloaded: queue is at its bound of {max_queue}")
            }
            Self::DeadlineExceeded => write!(f, "request deadline exceeded"),
            Self::Inference { what } => write!(f, "inference failed: {what}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Shutdown => write!(f, "server is shut down"),
            Self::SchedulerDied { shard: Some(s) } => {
                write!(f, "scheduler shard {s} died without replying")
            }
            Self::SchedulerDied { shard: None } => {
                write!(f, "scheduler thread died without replying")
            }
            Self::CircuitOpen { model } => {
                write!(
                    f,
                    "model {model:?} circuit breaker is open: shedding until a probe succeeds"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}
