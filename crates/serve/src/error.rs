//! Error type for the serving runtime.

use lightts_models::ModelError;
use std::fmt;

/// Errors produced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A request named a model the registry does not hold.
    UnknownModel {
        /// The requested model name.
        name: String,
    },
    /// A request's input did not match the model's expected shape.
    BadRequest {
        /// Description of the violated constraint.
        what: String,
    },
    /// Loading or running a model failed.
    Model(ModelError),
    /// The server is shutting down (or its scheduler thread died) and can
    /// no longer answer requests.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel { name } => write!(f, "unknown model {name:?}"),
            Self::BadRequest { what } => write!(f, "bad request: {what}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Shutdown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}
