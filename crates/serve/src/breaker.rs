//! Per-model circuit breakers: stop burning scheduler time on a poisoned
//! model.
//!
//! Each registered model owns one [`Breaker`] with the classic three-state
//! machine:
//!
//! * **closed** (0) — requests flow normally. Every *failed* batch (an
//!   [`Inference`](crate::ServeError::Inference)-class outcome: a contained
//!   panic or a model error from the fused forward) bumps a
//!   consecutive-failure counter; every successful batch resets it. When
//!   the counter reaches [`ServeConfig::circuit_threshold`](crate::ServeConfig)
//!   the breaker **opens**.
//! * **open** (1) — submissions for the model are shed at admission with
//!   [`ServeError::CircuitOpen`](crate::ServeError) (wire status
//!   `CIRCUIT_OPEN`), without touching a queue, until
//!   [`ServeConfig::circuit_cooldown`](crate::ServeConfig) elapses.
//! * **half-open** (2) — after the cooldown, exactly *one* submission (the
//!   CAS winner) is admitted as a probe; everything else keeps shedding.
//!   The probe's batch outcome decides: success closes the breaker,
//!   failure reopens it and restarts the cooldown.
//!
//! Everything is atomics — the closed-state admission check is one relaxed
//! load (plus one branch for the disabled case), so the breaker adds
//! nothing measurable to the no-fault hot path. Time is measured in
//! microseconds since server start (a monotonic `Instant` anchor), so the
//! breaker never consults the wall clock.
//!
//! Deliberately *per model*, not per shard: a poisoned model fails on
//! every replica (the replicas run bitwise-identical plan clones), while a
//! dead shard is the supervisor's problem ([`crate::supervisor`]) — the
//! two failure domains stay independently observable
//! (`serve.circuit{m}.state` vs `serve.shard{i}.alive`).

use lightts_obs::{Counter, Gauge};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Breaker state: requests flow, consecutive failures are counted.
pub(crate) const CIRCUIT_CLOSED: u8 = 0;
/// Breaker state: submissions shed fast until the cooldown elapses.
pub(crate) const CIRCUIT_OPEN: u8 = 1;
/// Breaker state: one probe in flight; its outcome closes or reopens.
pub(crate) const CIRCUIT_HALF_OPEN: u8 = 2;

/// One model's circuit breaker. See the module docs for the state machine.
pub(crate) struct Breaker {
    /// Consecutive failed batches that open the circuit; 0 disables the
    /// breaker (admission is then a single branch).
    threshold: u32,
    /// How long the circuit stays open before a half-open probe.
    cooldown_us: u64,
    state: AtomicU8,
    /// Consecutive failed batches since the last success.
    consecutive: AtomicU32,
    /// When the circuit last opened, µs since server start.
    opened_at_us: AtomicU64,
    /// Mirror of `state` in the server registry
    /// (`serve.circuit{m}.state`).
    gauge: Arc<Gauge>,
    /// `serve.circuit_opens`: closed/half-open → open transitions, summed
    /// over all models.
    opens: Arc<Counter>,
}

impl Breaker {
    pub(crate) fn new(
        threshold: usize,
        cooldown: Duration,
        gauge: Arc<Gauge>,
        opens: Arc<Counter>,
    ) -> Breaker {
        gauge.set(i64::from(CIRCUIT_CLOSED));
        Breaker {
            threshold: threshold.min(u32::MAX as usize) as u32,
            cooldown_us: cooldown.as_micros().min(u128::from(u64::MAX)) as u64,
            state: AtomicU8::new(CIRCUIT_CLOSED),
            consecutive: AtomicU32::new(0),
            opened_at_us: AtomicU64::new(0),
            gauge,
            opens,
        }
    }

    /// Admission check: `true` admits the request, `false` sheds it with
    /// [`ServeError::CircuitOpen`](crate::ServeError). In the half-open
    /// window exactly one caller (the CAS winner) is admitted as the
    /// probe.
    pub(crate) fn admit(&self, now_us: u64) -> bool {
        if self.threshold == 0 {
            return true;
        }
        match self.state.load(Ordering::Relaxed) {
            CIRCUIT_CLOSED => true,
            CIRCUIT_HALF_OPEN => false, // a probe is already in flight
            _ => {
                let opened = self.opened_at_us.load(Ordering::Relaxed);
                if now_us.saturating_sub(opened) < self.cooldown_us {
                    return false;
                }
                // Cooldown over: exactly one winner becomes the probe.
                let won = self
                    .state
                    .compare_exchange(
                        CIRCUIT_OPEN,
                        CIRCUIT_HALF_OPEN,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok();
                if won {
                    self.gauge.set(i64::from(CIRCUIT_HALF_OPEN));
                }
                won
            }
        }
    }

    /// A batch for this model completed successfully: reset the failure
    /// streak and close the circuit from any state.
    pub(crate) fn record_success(&self) {
        if self.threshold == 0 {
            return;
        }
        self.consecutive.store(0, Ordering::Relaxed);
        if self.state.swap(CIRCUIT_CLOSED, Ordering::Relaxed) != CIRCUIT_CLOSED {
            self.gauge.set(i64::from(CIRCUIT_CLOSED));
        }
    }

    /// A batch for this model failed (an `Inference`-class outcome).
    /// Returns `true` when this failure *opened* the circuit (for the
    /// caller's event log).
    pub(crate) fn record_failure(&self, now_us: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if self.state.load(Ordering::Relaxed) == CIRCUIT_HALF_OPEN {
            // Failed probe: reopen and restart the cooldown.
            self.opened_at_us.store(now_us, Ordering::Relaxed);
            self.state.store(CIRCUIT_OPEN, Ordering::Relaxed);
            self.gauge.set(i64::from(CIRCUIT_OPEN));
            self.opens.inc();
            return true;
        }
        let streak = self.consecutive.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        if streak >= self.threshold {
            // Timestamp before the state flip so no admitter ever sees an
            // open circuit with a stale (already-elapsed) open instant.
            self.opened_at_us.store(now_us, Ordering::Relaxed);
            if self
                .state
                .compare_exchange(
                    CIRCUIT_CLOSED,
                    CIRCUIT_OPEN,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.gauge.set(i64::from(CIRCUIT_OPEN));
                self.opens.inc();
                return true;
            }
        }
        false
    }

    /// The half-open probe was lost before its batch could run — shed at
    /// enqueue (overload, dead replica) or pre-inference (expired deadline,
    /// shard death drain). Reverts half-open to open with a fresh cooldown
    /// so a later probe can still happen; without this the breaker would
    /// stay half-open forever (nothing left in flight to record an
    /// outcome). A no-op (one load + failed CAS at worst) in any other
    /// state, so callers may invoke it conservatively without knowing
    /// whether their request actually was the probe — the worst case is a
    /// restarted cooldown, never a wedged breaker.
    pub(crate) fn probe_aborted(&self, now_us: u64) {
        if self.threshold == 0 {
            return;
        }
        // Timestamp first, as in `record_failure`: an admitter must never
        // see an open circuit with a stale open instant.
        self.opened_at_us.store(now_us, Ordering::Relaxed);
        if self
            .state
            .compare_exchange(CIRCUIT_HALF_OPEN, CIRCUIT_OPEN, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.gauge.set(i64::from(CIRCUIT_OPEN));
        }
    }

    /// Current state byte (0 closed / 1 open / 2 half-open).
    #[cfg(test)]
    pub(crate) fn state(&self) -> u8 {
        self.state.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_obs::Registry;

    fn breaker(threshold: usize, cooldown_us: u64) -> (Breaker, Arc<Gauge>, Arc<Counter>) {
        let reg = Registry::new();
        let gauge = reg.gauge("serve.circuit0.state");
        let opens = reg.counter("serve.circuit_opens");
        let b = Breaker::new(
            threshold,
            Duration::from_micros(cooldown_us),
            Arc::clone(&gauge),
            Arc::clone(&opens),
        );
        (b, gauge, opens)
    }

    #[test]
    fn opens_after_threshold_consecutive_failures_only() {
        let (b, gauge, opens) = breaker(3, 1_000);
        // Two failures, a success, two more failures: never opens — the
        // streak must be *consecutive*.
        assert!(!b.record_failure(0));
        assert!(!b.record_failure(1));
        b.record_success();
        assert!(!b.record_failure(2));
        assert!(!b.record_failure(3));
        assert_eq!(b.state(), CIRCUIT_CLOSED);
        assert!(b.admit(10));
        // The third consecutive failure trips it.
        assert!(b.record_failure(4));
        assert_eq!(b.state(), CIRCUIT_OPEN);
        assert_eq!(gauge.get(), i64::from(CIRCUIT_OPEN));
        assert_eq!(opens.get(), 1);
        assert!(!b.admit(5));
    }

    #[test]
    fn half_open_admits_one_probe_and_its_outcome_decides() {
        let (b, gauge, opens) = breaker(1, 1_000);
        assert!(b.record_failure(0));
        // Inside the cooldown: everyone sheds.
        assert!(!b.admit(999));
        // Cooldown over: exactly one probe wins, the rest shed.
        assert!(b.admit(1_000));
        assert_eq!(b.state(), CIRCUIT_HALF_OPEN);
        assert!(!b.admit(1_001));
        // Failed probe reopens and restarts the cooldown.
        assert!(b.record_failure(1_002));
        assert_eq!(opens.get(), 2);
        assert!(!b.admit(1_500));
        // Next probe succeeds: closed, requests flow again.
        assert!(b.admit(2_002));
        b.record_success();
        assert_eq!(b.state(), CIRCUIT_CLOSED);
        assert_eq!(gauge.get(), i64::from(CIRCUIT_CLOSED));
        assert!(b.admit(2_003));
    }

    #[test]
    fn aborted_probe_reopens_instead_of_wedging() {
        let (b, gauge, _) = breaker(1, 1_000);
        assert!(b.record_failure(0));
        assert!(b.admit(1_000)); // the probe wins the half-open CAS...
                                 // ...but is lost before its batch runs (shed / drained): the
                                 // breaker must reopen, not stay half-open forever.
        b.probe_aborted(1_100);
        assert_eq!(b.state(), CIRCUIT_OPEN);
        assert_eq!(gauge.get(), i64::from(CIRCUIT_OPEN));
        // The cooldown restarts from the abort instant; a later probe
        // still gets its chance.
        assert!(!b.admit(2_000));
        assert!(b.admit(2_100));
        b.record_success();
        assert_eq!(b.state(), CIRCUIT_CLOSED);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let (b, _, opens) = breaker(0, 1_000);
        for t in 0..100 {
            assert!(!b.record_failure(t));
            assert!(b.admit(t));
        }
        assert_eq!(b.state(), CIRCUIT_CLOSED);
        assert_eq!(opens.get(), 0);
    }
}
