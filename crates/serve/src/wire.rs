//! The `LTSP` wire format: length-prefixed binary frames for remote
//! inference over TCP or Unix sockets.
//!
//! ## Framing
//!
//! A connection opens with a 5-byte handshake from the client — the magic
//! `LTSP` plus a version byte ([`VERSION`]) — then carries frames in both
//! directions. Every frame is a little-endian `u32` payload length
//! followed by that many payload bytes; payloads are capped at
//! [`MAX_FRAME`] (an oversized length is a protocol error and closes the
//! connection). All multi-byte integers are little-endian; `f32` values
//! travel as their IEEE-754 bit patterns, so probability rows cross the
//! wire **bitwise exactly** — the remote-equals-in-process equivalence
//! test depends on this.
//!
//! Request payload (`opcode` 1 = PREDICT, the only opcode in v1):
//!
//! ```text
//! u8  opcode          1 = PREDICT
//! u64 request_id      client-chosen; echoed in the reply and used to
//!                     hash-route the request to a scheduler shard
//! u32 deadline_us     relative deadline in µs; 0 = none
//! u16 model_len       model-name byte length
//! [u8; model_len]     model name (UTF-8)
//! u32 n               number of input scalars
//! [f32; n]            the sample, bit-exact
//! ```
//!
//! Reply payload:
//!
//! ```text
//! u8  status          see `Status`
//! u64 request_id      echo
//! -- status == OK --
//! u32 n               number of classes
//! [f32; n]            the probability row, bit-exact
//! -- status != OK --
//! u64 aux             status-specific detail (see the mapping table)
//! u32 msg_len         message byte length
//! [u8; msg_len]       human-readable detail (UTF-8, may be empty)
//! ```
//!
//! ## Status codes
//!
//! Every [`ServeError`] maps onto a typed status so remote callers get the
//! same backpressure/deadline/shed semantics in-process callers do:
//!
//! | status | code | `ServeError` | `aux` | `msg` |
//! |---|---|---|---|---|
//! | `OK` | 0 | — | — | — |
//! | `BADREQ` | 1 | [`BadRequest`](ServeError::BadRequest) / [`NonFiniteInput`](ServeError::NonFiniteInput) | 0 / index+1 | what / empty |
//! | `UNKNOWN_MODEL` | 2 | [`UnknownModel`](ServeError::UnknownModel) | 0 | model name |
//! | `OVERLOADED` | 3 | [`Overloaded`](ServeError::Overloaded) | max_queue | model name |
//! | `DEADLINE` | 4 | [`DeadlineExceeded`](ServeError::DeadlineExceeded) | 0 | empty |
//! | `INFER_ERR` | 5 | [`Inference`](ServeError::Inference) / [`Model`](ServeError::Model) | 0 / 1 | what / error text |
//! | `SHUTDOWN` | 6 | [`Shutdown`](ServeError::Shutdown) | 0 | empty |
//! | `UNAVAILABLE` | 7 | [`SchedulerDied`](ServeError::SchedulerDied) | shard+1, 0 = unknown | empty |
//! | `CIRCUIT_OPEN` | 8 | [`CircuitOpen`](ServeError::CircuitOpen) | 0 | model name |
//!
//! Of these, exactly `OVERLOADED` and `UNAVAILABLE` are **retryable**
//! ([`Status::is_retryable`]): the failure is transient capacity or
//! topology, so resending the *same* request (same id — it reroutes
//! around dead shards) can succeed. `CIRCUIT_OPEN` is deliberately not:
//! the breaker sheds precisely because retries against a poisoned model
//! burn scheduler time; back off until the server's own half-open probe
//! closes the circuit.
//!
//! The mapping is lossless except for [`ServeError::Model`], which decodes
//! as [`ServeError::Inference`] carrying the model error's text (`aux` 1
//! marks the provenance) — a remote caller cannot hold a `ModelError`
//! value, only its rendering. The exhaustive round-trip test below pins
//! every row of this table.

use crate::ServeError;
use std::fmt;
use std::io::{self, Read, Write};

/// Connection handshake magic, sent by the client before the first frame.
pub const MAGIC: [u8; 4] = *b"LTSP";
/// Wire-format version byte following the magic.
pub const VERSION: u8 = 1;
/// Maximum frame payload, bytes (4 MiB). A declared length beyond this is
/// a protocol error; the server answers `BADREQ` and closes.
pub const MAX_FRAME: usize = 4 << 20;
/// The PREDICT opcode (the only one in v1).
pub const OP_PREDICT: u8 = 1;

/// Typed reply status, the wire rendering of a [`ServeError`] (or
/// success). See the module-level mapping table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Prediction succeeded; the payload carries the probability row.
    Ok = 0,
    /// Malformed request (bad shape, non-finite input, bad frame).
    BadReq = 1,
    /// The named model is not registered.
    UnknownModel = 2,
    /// The routed replica's queue is full; the request was shed.
    Overloaded = 3,
    /// The request's deadline expired before inference started.
    Deadline = 4,
    /// The fused forward failed (contained panic or model error).
    InferErr = 5,
    /// The server is shutting down; the request was not accepted.
    Shutdown = 6,
    /// The routed scheduler shard is dead (`aux` = shard+1 when known).
    Unavailable = 7,
    /// The model's circuit breaker is open; the request was shed at
    /// admission without queueing.
    CircuitOpen = 8,
}

impl Status {
    /// All statuses, in code order (for exhaustive table tests).
    pub const ALL: [Status; 9] = [
        Status::Ok,
        Status::BadReq,
        Status::UnknownModel,
        Status::Overloaded,
        Status::Deadline,
        Status::InferErr,
        Status::Shutdown,
        Status::Unavailable,
        Status::CircuitOpen,
    ];

    /// Decodes a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        Status::ALL.get(b as usize).copied()
    }

    /// Stable upper-case name, as used in logs and docs.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadReq => "BADREQ",
            Status::UnknownModel => "UNKNOWN_MODEL",
            Status::Overloaded => "OVERLOADED",
            Status::Deadline => "DEADLINE",
            Status::InferErr => "INFER_ERR",
            Status::Shutdown => "SHUTDOWN",
            Status::Unavailable => "UNAVAILABLE",
            Status::CircuitOpen => "CIRCUIT_OPEN",
        }
    }

    /// Whether a client retry of the same request can reasonably succeed
    /// (see the module-level table): `OVERLOADED` (transient queue
    /// pressure) and `UNAVAILABLE` (a dead shard that reroutes or
    /// respawns). The wire-level counterpart of
    /// [`ServeError::is_retryable`].
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::Overloaded | Status::Unavailable)
    }
}

/// The status a [`ServeError`] encodes as — one row of the mapping table.
pub fn status_of(e: &ServeError) -> Status {
    match e {
        ServeError::UnknownModel { .. } => Status::UnknownModel,
        ServeError::BadRequest { .. } | ServeError::NonFiniteInput { .. } => Status::BadReq,
        ServeError::Overloaded { .. } => Status::Overloaded,
        ServeError::DeadlineExceeded => Status::Deadline,
        ServeError::Inference { .. } | ServeError::Model(_) => Status::InferErr,
        ServeError::Shutdown => Status::Shutdown,
        ServeError::SchedulerDied { .. } => Status::Unavailable,
        ServeError::CircuitOpen { .. } => Status::CircuitOpen,
    }
}

/// Why a frame failed to decode. Any of these on a live connection is a
/// protocol desync: the peer cannot be trusted to be frame-aligned any
/// more, so the connection closes after (for servers) a best-effort
/// `BADREQ` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the declared structure did.
    Truncated,
    /// The connection handshake's magic bytes were wrong.
    BadMagic,
    /// The handshake named an unsupported version.
    BadVersion(u8),
    /// A request carried an unknown opcode.
    BadOpcode(u8),
    /// A reply carried an unknown status byte.
    BadStatus(u8),
    /// A declared length exceeded [`MAX_FRAME`] or the payload bounds.
    TooLarge(usize),
    /// A model name was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad handshake magic (expected \"LTSP\")"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            WireError::BadStatus(s) => write!(f, "unknown status byte {s}"),
            WireError::TooLarge(n) => write!(f, "declared length {n} exceeds frame bounds"),
            WireError::BadUtf8 => write!(f, "model name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded PREDICT request.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Client-chosen id: echoed in the reply, hash-routes the request.
    pub request_id: u64,
    /// Relative deadline in µs; 0 = none.
    pub deadline_us: u32,
    /// Target model name.
    pub model: String,
    /// The input sample, `in_dims · in_len` scalars.
    pub input: Vec<f32>,
}

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success: the probability row, bit-exact.
    Ok {
        /// Echo of the request id.
        request_id: u64,
        /// The class-probability row.
        probs: Vec<f32>,
    },
    /// Failure: the decoded [`ServeError`].
    Err {
        /// Echo of the request id (0 when the request never parsed far
        /// enough to yield one).
        request_id: u64,
        /// The decoded error (see the mapping table for lossiness).
        error: ServeError,
    },
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::TooLarge(n))?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        let bytes = self.take(n.checked_mul(4).ok_or(WireError::TooLarge(n))?)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    fn done(&self) -> Result<(), WireError> {
        // Trailing bytes mean the peer framed something we don't
        // understand — treat as desync rather than silently ignoring.
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TooLarge(self.buf.len()))
        }
    }
}

/// Encodes a PREDICT request payload (no length prefix; see
/// [`write_frame`]).
pub fn encode_request(req: &PredictRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + 4 + 2 + req.model.len() + 4 + 4 * req.input.len());
    out.push(OP_PREDICT);
    out.extend_from_slice(&req.request_id.to_le_bytes());
    out.extend_from_slice(&req.deadline_us.to_le_bytes());
    out.extend_from_slice(&(req.model.len() as u16).to_le_bytes());
    out.extend_from_slice(req.model.as_bytes());
    out.extend_from_slice(&(req.input.len() as u32).to_le_bytes());
    for v in &req.input {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a PREDICT request payload. Total over arbitrary bytes: never
/// panics, rejects with a typed [`WireError`].
pub fn decode_request(payload: &[u8]) -> Result<PredictRequest, WireError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    if op != OP_PREDICT {
        return Err(WireError::BadOpcode(op));
    }
    let request_id = c.u64()?;
    let deadline_us = c.u32()?;
    let model_len = c.u16()? as usize;
    let model =
        std::str::from_utf8(c.take(model_len)?).map_err(|_| WireError::BadUtf8)?.to_string();
    let n = c.u32()? as usize;
    let input = c.f32s(n)?;
    c.done()?;
    Ok(PredictRequest { request_id, deadline_us, model, input })
}

/// Encodes a success reply payload carrying the probability row bit-exact.
pub fn encode_reply_ok(request_id: u64, probs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + 4 + 4 * probs.len());
    out.push(Status::Ok as u8);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(probs.len() as u32).to_le_bytes());
    for v in probs {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encodes an error reply payload per the status mapping table.
pub fn encode_reply_err(request_id: u64, e: &ServeError) -> Vec<u8> {
    let status = status_of(e);
    let (aux, msg): (u64, String) = match e {
        ServeError::UnknownModel { name } => (0, name.clone()),
        ServeError::BadRequest { what } => (0, what.clone()),
        ServeError::NonFiniteInput { index } => (*index as u64 + 1, String::new()),
        ServeError::Overloaded { model, max_queue } => (*max_queue as u64, model.clone()),
        ServeError::DeadlineExceeded => (0, String::new()),
        ServeError::Inference { what } => (0, what.clone()),
        ServeError::Model(me) => (1, me.to_string()),
        ServeError::Shutdown => (0, String::new()),
        ServeError::SchedulerDied { shard } => (shard.map_or(0, |s| s as u64 + 1), String::new()),
        ServeError::CircuitOpen { model } => (0, model.clone()),
    };
    let mut out = Vec::with_capacity(1 + 8 + 8 + 4 + msg.len());
    out.push(status as u8);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&aux.to_le_bytes());
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Decodes a reply payload (the inverse of the encode pair; see the
/// mapping table for the one lossy row).
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let mut c = Cursor::new(payload);
    let status_byte = c.u8()?;
    let status = Status::from_u8(status_byte).ok_or(WireError::BadStatus(status_byte))?;
    let request_id = c.u64()?;
    if status == Status::Ok {
        let n = c.u32()? as usize;
        let probs = c.f32s(n)?;
        c.done()?;
        return Ok(Reply::Ok { request_id, probs });
    }
    let aux = c.u64()?;
    let msg_len = c.u32()? as usize;
    let msg = std::str::from_utf8(c.take(msg_len)?).map_err(|_| WireError::BadUtf8)?.to_string();
    c.done()?;
    let error = match status {
        Status::Ok => unreachable!(),
        Status::BadReq => {
            if aux > 0 {
                ServeError::NonFiniteInput { index: (aux - 1) as usize }
            } else {
                ServeError::BadRequest { what: msg }
            }
        }
        Status::UnknownModel => ServeError::UnknownModel { name: msg },
        Status::Overloaded => ServeError::Overloaded { model: msg, max_queue: aux as usize },
        Status::Deadline => ServeError::DeadlineExceeded,
        // `aux` 1 marks a server-side `ServeError::Model`; it decodes as
        // `Inference` carrying the rendered text (documented lossy row).
        Status::InferErr => ServeError::Inference { what: msg },
        Status::Shutdown => ServeError::Shutdown,
        Status::Unavailable => {
            ServeError::SchedulerDied { shard: (aux > 0).then(|| (aux - 1) as usize) }
        }
        Status::CircuitOpen => ServeError::CircuitOpen { model: msg },
    };
    Ok(Reply::Err { request_id, error })
}

/// Writes the client handshake (magic + version).
pub fn write_handshake(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[VERSION])
}

/// Reads and checks the client handshake.
pub fn read_handshake(r: &mut impl Read) -> io::Result<Result<(), WireError>> {
    let mut buf = [0u8; 5];
    r.read_exact(&mut buf)?;
    if buf[..4] != MAGIC {
        return Ok(Err(WireError::BadMagic));
    }
    if buf[4] != VERSION {
        return Ok(Err(WireError::BadVersion(buf[4])));
    }
    Ok(Ok(()))
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame.
///
/// `Ok(None)` on clean EOF at a frame boundary; an I/O error mid-frame
/// surfaces as `Err`; a declared length beyond [`MAX_FRAME`] surfaces as
/// `Ok(Some(Err(TooLarge)))` so the server can answer `BADREQ` before
/// closing.
#[allow(clippy::type_complexity)]
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Result<Vec<u8>, WireError>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "mid-prefix EOF")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Ok(Some(Err(WireError::TooLarge(len))));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Ok(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = PredictRequest {
            request_id: 0xDEAD_BEEF_0123,
            deadline_us: 2_500,
            model: "golden-student".into(),
            input: vec![0.0, -1.5, f32::MIN_POSITIVE, 1e30],
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        // NaN payloads survive the wire bit-exactly too (admission rejects
        // them server-side, but the codec must not corrupt them).
        let req = PredictRequest {
            request_id: 1,
            deadline_us: 0,
            model: "m".into(),
            input: vec![f32::NAN],
        };
        let got = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(got.input[0].to_bits(), f32::NAN.to_bits());
    }

    #[test]
    fn request_decode_is_total_over_garbage() {
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
        assert_eq!(decode_request(&[9]), Err(WireError::BadOpcode(9)));
        // Truncated mid-id.
        assert_eq!(decode_request(&[OP_PREDICT, 1, 2]), Err(WireError::Truncated));
        // Declared float count beyond the payload.
        let mut bytes = encode_request(&PredictRequest {
            request_id: 7,
            deadline_us: 0,
            model: "m".into(),
            input: vec![1.0],
        });
        let at = bytes.len() - 8; // n field sits before the single f32
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&bytes),
            Err(WireError::Truncated | WireError::TooLarge(_))
        ));
        // Non-UTF-8 model name.
        let mut bytes = encode_request(&PredictRequest {
            request_id: 7,
            deadline_us: 0,
            model: "mm".into(),
            input: vec![],
        });
        bytes[15] = 0xFF; // first model byte
        assert_eq!(decode_request(&bytes), Err(WireError::BadUtf8));
        // Trailing bytes are a desync.
        let mut bytes = encode_request(&PredictRequest {
            request_id: 7,
            deadline_us: 0,
            model: "m".into(),
            input: vec![],
        });
        bytes.push(0);
        assert!(matches!(decode_request(&bytes), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn ok_reply_round_trips_bit_exact() {
        let probs = vec![0.25f32, 0.5, 0.125, 0.125];
        match decode_reply(&encode_reply_ok(42, &probs)).unwrap() {
            Reply::Ok { request_id, probs: got } => {
                assert_eq!(request_id, 42);
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    probs.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
            other => panic!("expected Ok reply, got {other:?}"),
        }
    }

    /// The exhaustive mapping-table round trip: every `ServeError` variant
    /// encodes to its documented status and decodes back to itself —
    /// except the one documented lossy row (`Model` → `Inference` with the
    /// rendered text).
    #[test]
    fn every_serve_error_round_trips_through_its_status() {
        use lightts_models::ModelError;
        let cases: Vec<(ServeError, Status)> = vec![
            (ServeError::UnknownModel { name: "ghost".into() }, Status::UnknownModel),
            (ServeError::BadRequest { what: "wrong shape".into() }, Status::BadReq),
            (ServeError::NonFiniteInput { index: 0 }, Status::BadReq),
            (ServeError::NonFiniteInput { index: 31 }, Status::BadReq),
            (ServeError::Overloaded { model: "hot".into(), max_queue: 1024 }, Status::Overloaded),
            (ServeError::DeadlineExceeded, Status::Deadline),
            (ServeError::Inference { what: "batch forward panicked".into() }, Status::InferErr),
            (ServeError::Shutdown, Status::Shutdown),
            (ServeError::SchedulerDied { shard: None }, Status::Unavailable),
            (ServeError::SchedulerDied { shard: Some(0) }, Status::Unavailable),
            (ServeError::SchedulerDied { shard: Some(3) }, Status::Unavailable),
            (ServeError::CircuitOpen { model: "poisoned".into() }, Status::CircuitOpen),
        ];
        for (err, want_status) in &cases {
            assert_eq!(status_of(err), *want_status, "{err:?}");
            match decode_reply(&encode_reply_err(9, err)).unwrap() {
                Reply::Err { request_id, error } => {
                    assert_eq!(request_id, 9);
                    assert_eq!(&error, err, "lossy round trip for {err:?}");
                }
                other => panic!("expected Err reply, got {other:?}"),
            }
        }
        // The documented lossy row: Model decodes as Inference with the
        // rendered text.
        let model_err =
            ServeError::Model(ModelError::BadConfig { what: "truncated header".into() });
        assert_eq!(status_of(&model_err), Status::InferErr);
        match decode_reply(&encode_reply_err(9, &model_err)).unwrap() {
            Reply::Err { error: ServeError::Inference { what }, .. } => {
                assert!(what.contains("truncated header"), "{what}");
            }
            other => panic!("Model must decode as Inference, got {other:?}"),
        }
        // This match is the exhaustiveness guard: adding a ServeError
        // variant without extending the table above fails to compile here.
        let covered = |e: &ServeError| match e {
            ServeError::UnknownModel { .. }
            | ServeError::BadRequest { .. }
            | ServeError::NonFiniteInput { .. }
            | ServeError::Overloaded { .. }
            | ServeError::DeadlineExceeded
            | ServeError::Inference { .. }
            | ServeError::Model(_)
            | ServeError::Shutdown
            | ServeError::SchedulerDied { .. }
            | ServeError::CircuitOpen { .. } => true,
        };
        assert!(cases.iter().all(|(e, _)| covered(e)));
        // And every status byte decodes back to itself or rejects cleanly.
        for b in 0u8..=255 {
            match Status::from_u8(b) {
                Some(s) => assert_eq!(s as u8, b),
                None => assert!(b >= Status::ALL.len() as u8),
            }
        }
    }

    /// The retryable class is exactly {OVERLOADED, UNAVAILABLE}, and the
    /// wire- and error-level predicates agree on every table row.
    #[test]
    fn retryable_statuses_are_exactly_overloaded_and_unavailable() {
        for s in Status::ALL {
            assert_eq!(
                s.is_retryable(),
                matches!(s, Status::Overloaded | Status::Unavailable),
                "{s:?}"
            );
        }
        let errs = [
            ServeError::UnknownModel { name: "g".into() },
            ServeError::BadRequest { what: "w".into() },
            ServeError::NonFiniteInput { index: 0 },
            ServeError::Overloaded { model: "m".into(), max_queue: 8 },
            ServeError::DeadlineExceeded,
            ServeError::Inference { what: "boom".into() },
            ServeError::Shutdown,
            ServeError::SchedulerDied { shard: Some(1) },
            ServeError::CircuitOpen { model: "m".into() },
        ];
        for e in &errs {
            assert_eq!(e.is_retryable(), status_of(e).is_retryable(), "{e:?}");
        }
    }

    #[test]
    fn frames_and_handshake_round_trip() {
        let mut buf = Vec::new();
        write_handshake(&mut buf).unwrap();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        read_handshake(&mut r).unwrap().unwrap();
        assert_eq!(read_frame(&mut r).unwrap().unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(read_handshake(&mut &bad[..]).unwrap(), Err(WireError::BadMagic));
        let mut bad = buf;
        bad[4] = 99;
        assert_eq!(read_handshake(&mut &bad[..]).unwrap(), Err(WireError::BadVersion(99)));

        // Oversized declared length is typed, not fatal to the reader.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        match read_frame(&mut &huge[..]).unwrap().unwrap() {
            Err(WireError::TooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("{other:?}"),
        }
    }
}
