//! The serving network front door: `LTSP` frames over TCP or Unix
//! sockets, in front of the sharded scheduler.
//!
//! The shape mirrors `lightts_obs::http`: a small blocking accept loop
//! (`std::net` only, no async runtime) that hands each connection to a
//! pair of threads —
//!
//! * the **reader** decodes request frames and submits them through the
//!   normal [`ServerHandle`] admission path (same validation, same
//!   backpressure, same deadline semantics as in-process callers), routing
//!   each by its client-supplied request id;
//! * the **writer** redeems the resulting [`Pending`]s in submission order
//!   and writes reply frames.
//!
//! Splitting the halves is what makes the protocol *pipelined*: a client
//! can stream many requests before reading any reply, which is exactly
//! what lets the scheduler form large fused batches from one remote
//! caller — the same trick in-process callers play by submitting many
//! `Pending`s before waiting.
//!
//! Replies come back in submission order per connection (head-of-line: a
//! slow request delays later replies on the same connection); every reply
//! echoes its request id, so clients match responses regardless.
//!
//! Typed failures travel as status frames (see [`crate::wire`]): shed
//! requests get `OVERLOADED`/`DEADLINE`, admission failures `BADREQ` /
//! `UNKNOWN_MODEL`, contained forward failures `INFER_ERR`, a dead shard
//! `UNAVAILABLE`, and a draining server `SHUTDOWN` — never a silently
//! closed socket. [`Server::shutdown`] keeps that promise by draining the
//! scheduler shards *before* closing the front door's sockets.

use crate::wire::{self, Reply, WireError};
use crate::{Pending, Result, ServeError, Server, ServerHandle};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum simultaneously served connections per front door; further
/// accepts are dropped (the client sees a closed connection and retries).
pub const MAX_CONNS: usize = 256;
/// Per-connection socket write timeout: a stuck client stalls only its
/// own writer thread, and only this long per frame.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// One bidirectional connection stream the front door can serve: cloneable
/// into independently owned read/write halves, with half-close support.
/// (`Sync` because the retained close handle is shared with the accept
/// loop; `TcpStream`/`UnixStream` are both `Sync`.)
trait Conn: Read + Write + Send + Sync + Sized + 'static {
    fn split(&self) -> io::Result<Self>;
    fn close_read(&self);
    fn close_write(&self);
}

impl Conn for TcpStream {
    fn split(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
    fn close_read(&self) {
        let _ = self.shutdown(std::net::Shutdown::Read);
    }
    fn close_write(&self) {
        let _ = self.shutdown(std::net::Shutdown::Write);
    }
}

#[cfg(unix)]
impl Conn for std::os::unix::net::UnixStream {
    fn split(&self) -> io::Result<std::os::unix::net::UnixStream> {
        self.try_clone()
    }
    fn close_read(&self) {
        let _ = self.shutdown(std::net::Shutdown::Read);
    }
    fn close_write(&self) {
        let _ = self.shutdown(std::net::Shutdown::Write);
    }
}

/// One served connection's bookkeeping: how to force its reader off the
/// socket, and both thread handles to join.
struct ConnEntry {
    closer: Box<dyn Fn() + Send + Sync>,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl ConnEntry {
    fn finished(&self) -> bool {
        self.reader.as_ref().is_none_or(JoinHandle::is_finished)
            && self.writer.as_ref().is_none_or(JoinHandle::is_finished)
    }

    fn close_and_join(mut self) {
        (self.closer)();
        if let Some(t) = self.reader.take() {
            let _ = t.join();
        }
        if let Some(t) = self.writer.take() {
            let _ = t.join();
        }
    }
}

/// The shared state behind one front door. [`Server`] holds a clone so
/// shutdown can retire doors *after* the scheduler drain; [`NetServer`] is
/// the user-facing handle over the same state. `shutdown` is idempotent,
/// so whichever side runs first wins and the other is a no-op.
pub(crate) struct DoorInner {
    stop: AtomicBool,
    done: AtomicBool,
    /// Unblocks the accept loop (a throwaway self-connection).
    wake: Box<dyn Fn() + Send + Sync>,
    /// Runs after all threads are joined (e.g. unlinking a Unix socket).
    cleanup: Option<Box<dyn Fn() + Send + Sync>>,
    accept: Mutex<Option<JoinHandle<()>>>,
    conns: Mutex<Vec<ConnEntry>>,
}

impl DoorInner {
    /// Stops accepting, half-closes every connection's read side (writers
    /// flush whatever replies are still in flight), and joins everything.
    pub(crate) fn shutdown(&self) {
        if self.done.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        (self.wake)();
        if let Some(t) = self.accept.lock().unwrap_or_else(PoisonError::into_inner).take() {
            let _ = t.join();
        }
        let conns: Vec<ConnEntry> = {
            let mut guard = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for c in conns {
            c.close_and_join();
        }
        if let Some(cleanup) = &self.cleanup {
            cleanup();
        }
    }
}

/// A running network front door; obtained from [`Server::serve_net`] /
/// [`Server::serve_unix`]. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) closes the listener and every
/// connection — but the owning [`Server`]'s shutdown also retires the
/// door at the right point in its drain sequence, so usually you just
/// keep this handle alive alongside the server.
pub struct NetServer {
    door: Arc<DoorInner>,
    tcp_addr: Option<SocketAddr>,
}

impl NetServer {
    /// The bound TCP address (resolves port 0 to the real ephemeral
    /// port). Panics for a Unix-socket door.
    pub fn addr(&self) -> SocketAddr {
        self.tcp_addr.expect("not a TCP front door")
    }

    /// Stops accepting, closes every connection, joins every thread.
    pub fn shutdown(self) {
        self.door.shutdown();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.door.shutdown();
    }
}

/// What the writer thread processes, in submission order.
enum Item {
    /// Admission already failed; reply immediately.
    Ready(u64, ServeError),
    /// Submitted; redeem the [`Pending`] for the reply.
    Wait(u64, Pending),
}

fn conn_reader<S: Conn>(stream: S, handle: ServerHandle, tx: mpsc::Sender<Item>) {
    let mut r = BufReader::new(stream);
    match wire::read_handshake(&mut r) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            let _ = tx.send(Item::Ready(0, ServeError::BadRequest { what: e.to_string() }));
            return;
        }
        Err(_) => return,
    }
    loop {
        let payload = match wire::read_frame(&mut r) {
            Ok(None) | Err(_) => return, // clean EOF / socket gone
            Ok(Some(Err(e))) => {
                // Oversized declared length: typed reply, then close (the
                // stream is not frame-aligned any more).
                let _ = tx.send(Item::Ready(0, ServeError::BadRequest { what: e.to_string() }));
                return;
            }
            Ok(Some(Ok(p))) => p,
        };
        let req = match wire::decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                let _ = tx.send(Item::Ready(0, ServeError::BadRequest { what: e.to_string() }));
                return;
            }
        };
        let deadline =
            (req.deadline_us > 0).then(|| Duration::from_micros(u64::from(req.deadline_us)));
        let item = match handle.submit_keyed(&req.model, req.input, req.request_id, deadline) {
            Ok(p) => Item::Wait(req.request_id, p),
            Err(e) => Item::Ready(req.request_id, e),
        };
        if tx.send(item).is_err() {
            return; // writer gone (socket dead): stop reading
        }
    }
}

fn conn_writer<S: Conn>(stream: S, rx: mpsc::Receiver<Item>) {
    let mut w = BufWriter::new(stream);
    let mut broken = false;
    for item in rx {
        // Redeem even when the socket is broken: the Pending must be
        // consumed so scheduler-side accounting stays truthful.
        let frame = match item {
            Item::Ready(id, e) => wire::encode_reply_err(id, &e),
            Item::Wait(id, p) => match p.wait() {
                Ok(probs) => wire::encode_reply_ok(id, &probs),
                Err(e) => wire::encode_reply_err(id, &e),
            },
        };
        if broken {
            continue;
        }
        if wire::write_frame(&mut w, &frame).and_then(|()| w.flush()).is_err() {
            broken = true;
        }
    }
    // All replies written: half-close so the client's reader sees EOF
    // only after the last frame.
    if let Ok(s) = w.into_inner() {
        s.close_write();
    }
}

fn spawn_conn<S: Conn>(stream: S, handle: ServerHandle, tag: usize) -> io::Result<ConnEntry> {
    let read_half = stream.split()?;
    let write_half = stream.split()?;
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::Builder::new()
        .name(format!("lightts-net-r{tag}"))
        .spawn(move || conn_reader(read_half, handle, tx))?;
    let writer = std::thread::Builder::new()
        .name(format!("lightts-net-w{tag}"))
        .spawn(move || conn_writer(write_half, rx))?;
    Ok(ConnEntry {
        closer: Box::new(move || stream.close_read()),
        reader: Some(reader),
        writer: Some(writer),
    })
}

fn accept_loop<S: Conn>(
    accept: impl Fn() -> io::Result<S>,
    door: &DoorInner,
    handle: ServerHandle,
) {
    let mut tag = 0usize;
    loop {
        let stream = accept();
        if door.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let mut conns = door.conns.lock().unwrap_or_else(PoisonError::into_inner);
        // Reap finished connections so the bookkeeping (and the
        // connection cap) tracks live ones.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].finished() {
                conns.swap_remove(i).close_and_join();
            } else {
                i += 1;
            }
        }
        if conns.len() >= MAX_CONNS {
            drop(stream); // refuse: the client sees a closed connection
            continue;
        }
        tag += 1;
        if let Ok(entry) = spawn_conn(stream, handle.clone(), tag) {
            conns.push(entry);
        }
    }
}

impl Server {
    /// Binds a TCP front door on `addr` and starts serving `LTSP` frames
    /// over it (see [`crate::wire`] for the protocol and
    /// [`crate::net`](self) for the threading shape).
    ///
    /// Multiple doors can front one server. Keep the returned handle (or
    /// just the [`Server`]) alive; [`Server::shutdown`] retires the door
    /// after the scheduler drain so in-flight remote requests get their
    /// replies.
    pub fn serve_net(&self, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let door = Arc::new(DoorInner {
            stop: AtomicBool::new(false),
            done: AtomicBool::new(false),
            wake: Box::new(move || {
                let _ = TcpStream::connect_timeout(&local, Duration::from_millis(250));
            }),
            cleanup: None,
            accept: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
        });
        let handle = self.handle();
        let accept_thread = {
            let door = Arc::clone(&door);
            std::thread::Builder::new().name("lightts-net-accept".into()).spawn(move || {
                accept_loop(
                    || {
                        let (stream, _) = listener.accept()?;
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                        Ok(stream)
                    },
                    &door,
                    handle,
                )
            })?
        };
        *door.accept.lock().unwrap_or_else(PoisonError::into_inner) = Some(accept_thread);
        self.doors.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&door));
        Ok(NetServer { door, tcp_addr: Some(local) })
    }

    /// Binds a Unix-domain-socket front door at `path` — same protocol and
    /// semantics as [`serve_net`](Self::serve_net), minus the TCP stack.
    /// The socket file is unlinked on shutdown.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: impl AsRef<std::path::Path>) -> io::Result<NetServer> {
        use std::os::unix::net::{UnixListener, UnixStream};
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        let wake_path = path.clone();
        let cleanup_path = path.clone();
        let door = Arc::new(DoorInner {
            stop: AtomicBool::new(false),
            done: AtomicBool::new(false),
            wake: Box::new(move || {
                let _ = UnixStream::connect(&wake_path);
            }),
            cleanup: Some(Box::new(move || {
                let _ = std::fs::remove_file(&cleanup_path);
            })),
            accept: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
        });
        let handle = self.handle();
        let accept_thread = {
            let door = Arc::clone(&door);
            std::thread::Builder::new().name("lightts-net-accept".into()).spawn(move || {
                accept_loop(
                    || {
                        let (stream, _) = listener.accept()?;
                        Ok(stream)
                    },
                    &door,
                    handle,
                )
            })?
        };
        *door.accept.lock().unwrap_or_else(PoisonError::into_inner) = Some(accept_thread);
        self.doors.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&door));
        Ok(NetServer { door, tcp_addr: None })
    }
}

/// A client-side error: transport, protocol, or a typed serving error
/// decoded from a status frame.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed or closed mid-frame.
    Io(io::Error),
    /// The peer sent bytes that do not decode as `LTSP`.
    Wire(WireError),
    /// The server answered with a typed error status.
    Serve(ServeError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Wire(e) => write!(f, "protocol error: {e}"),
            NetError::Serve(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Wire(e)
    }
}

/// A blocking `LTSP` client over any byte stream (TCP, Unix socket, or an
/// in-memory pipe in tests).
///
/// Supports both one-shot request/response ([`predict`](Self::predict))
/// and pipelined use: [`send`](Self::send) many requests, then
/// [`recv`](Self::recv) the replies in order — the pattern that lets the
/// remote scheduler fuse your requests into large batches.
pub struct NetClient<S: Read + Write> {
    stream: S,
    next_id: u64,
}

impl NetClient<TcpStream> {
    /// Connects to a TCP front door and performs the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        NetClient::from_stream(stream)
    }
}

#[cfg(unix)]
impl NetClient<std::os::unix::net::UnixStream> {
    /// Connects to a Unix-socket front door and performs the handshake.
    pub fn connect_unix(
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<NetClient<std::os::unix::net::UnixStream>> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        NetClient::from_stream(stream)
    }
}

impl<S: Read + Write> NetClient<S> {
    /// Wraps an already-connected stream, writing the handshake.
    pub fn from_stream(mut stream: S) -> io::Result<NetClient<S>> {
        wire::write_handshake(&mut stream)?;
        stream.flush()?;
        Ok(NetClient { stream, next_id: 1 })
    }

    /// Sends one PREDICT request with an auto-assigned request id
    /// (returned) and an optional relative deadline.
    pub fn send(
        &mut self,
        model: &str,
        input: &[f32],
        deadline: Option<Duration>,
    ) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_with_id(id, model, input, deadline)?;
        Ok(id)
    }

    /// Sends one PREDICT request under an explicit request id (the id
    /// hash-routes the request server-side, so replaying an id replays
    /// its shard placement).
    pub fn send_with_id(
        &mut self,
        id: u64,
        model: &str,
        input: &[f32],
        deadline: Option<Duration>,
    ) -> io::Result<()> {
        let deadline_us = deadline.map_or(0, |d| d.as_micros().min(u128::from(u32::MAX)) as u32);
        let payload = wire::encode_request(&wire::PredictRequest {
            request_id: id,
            deadline_us,
            model: model.to_string(),
            input: input.to_vec(),
        });
        wire::write_frame(&mut self.stream, &payload)?;
        self.stream.flush()
    }

    /// Receives the next reply frame (blocking).
    pub fn recv(&mut self) -> std::result::Result<Reply, NetError> {
        match wire::read_frame(&mut self.stream)? {
            None => Err(NetError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed by server",
            ))),
            Some(payload) => Ok(wire::decode_reply(&payload?)?),
        }
    }

    /// One request, one reply: sends and blocks for the matching answer.
    /// A typed server-side failure comes back as [`NetError::Serve`] — the
    /// same [`ServeError`] an in-process caller would get (up to the one
    /// documented lossy mapping row).
    pub fn predict(
        &mut self,
        model: &str,
        input: &[f32],
    ) -> std::result::Result<Vec<f32>, NetError> {
        let id = self.send(model, input, None)?;
        match self.recv()? {
            Reply::Ok { request_id, probs } if request_id == id => Ok(probs),
            Reply::Ok { request_id, .. } => Err(NetError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply id {request_id} does not match request id {id}"),
            ))),
            Reply::Err { error, .. } => Err(NetError::Serve(error)),
        }
    }

    /// Like [`predict`](Self::predict), retrying retryable typed statuses
    /// (`OVERLOADED`, `UNAVAILABLE` — see [`Status::is_retryable`]) under
    /// `policy`, within an optional overall deadline.
    ///
    /// One request id is assigned up front and **re-sent verbatim** on
    /// every attempt, so all attempts hash-route identically server-side
    /// (to the same replica, or — while that replica's shard is down — to
    /// the same deterministic surviving sibling). Each attempt's wire
    /// deadline is the *remaining* budget, and a backoff sleep that would
    /// cross the deadline is never taken, so retries can never make the
    /// caller wait longer than `deadline`.
    ///
    /// Transport and protocol errors ([`NetError::Io`] /
    /// [`NetError::Wire`]) are **not** retried: after one the stream may
    /// no longer be frame-aligned, so resending on it is unsafe — callers
    /// reconnect instead.
    ///
    /// [`Status::is_retryable`]: crate::wire::Status::is_retryable
    pub fn predict_with_retry(
        &mut self,
        model: &str,
        input: &[f32],
        policy: crate::RetryPolicy,
        deadline: Option<Duration>,
    ) -> std::result::Result<Vec<f32>, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let overall = deadline.map(|d| std::time::Instant::now() + d);
        let mut last: Option<NetError> = None;
        for attempt in 1..=policy.attempts() {
            let left = match overall {
                Some(dl) => {
                    let left = dl.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        return Err(last.unwrap_or(NetError::Serve(ServeError::DeadlineExceeded)));
                    }
                    Some(left)
                }
                None => None,
            };
            self.send_with_id(id, model, input, left)?;
            match self.recv()? {
                Reply::Ok { request_id, probs } if request_id == id => return Ok(probs),
                Reply::Ok { request_id, .. } => {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("reply id {request_id} does not match request id {id}"),
                    )))
                }
                Reply::Err { error, .. } => {
                    if error.is_retryable() && attempt < policy.attempts() {
                        let sleep = policy.backoff(attempt, id);
                        if let Some(dl) = overall {
                            if std::time::Instant::now() + sleep >= dl {
                                return Err(NetError::Serve(error));
                            }
                        }
                        if !sleep.is_zero() {
                            std::thread::sleep(sleep);
                        }
                        last = Some(NetError::Serve(error));
                    } else {
                        return Err(NetError::Serve(error));
                    }
                }
            }
        }
        Err(last.unwrap_or(NetError::Serve(ServeError::DeadlineExceeded)))
    }
}

/// Convenience conversion for tests comparing remote vs in-process
/// results: unwraps [`NetError::Serve`] into the inner [`ServeError`].
impl NetError {
    /// The typed [`ServeError`] if this is a server-side failure.
    pub fn serve_error(self) -> Option<ServeError> {
        match self {
            NetError::Serve(e) => Some(e),
            _ => None,
        }
    }

    /// As a `crate::Result`-shaped error for direct comparison with
    /// in-process submission results (transport/protocol failures map to
    /// [`ServeError::Inference`] with the rendering).
    pub fn into_serve_error(self) -> ServeError {
        match self {
            NetError::Serve(e) => e,
            other => ServeError::Inference { what: other.to_string() },
        }
    }
}

/// Maps a remote predict result into the same shape as
/// [`ServerHandle::predict`] for equivalence assertions.
pub fn as_serve_result(r: std::result::Result<Vec<f32>, NetError>) -> Result<Vec<f32>> {
    r.map_err(NetError::into_serve_error)
}
