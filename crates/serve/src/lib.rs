//! # lightts-serve
//!
//! Batched inference serving for LightTS students.
//!
//! The whole point of LightTS is producing *lightweight* students that can
//! serve predictions on constrained hardware; this crate is the runtime
//! that actually serves them:
//!
//! * [`ModelRegistry`] — loads packed
//!   [`save_bytes`](lightts_models::inception::InceptionTime::save_bytes)
//!   exports (or live models) and compiles each into a tape-free plan of
//!   the chosen [`PlanKind`]: the f32
//!   [`InferencePlan`](lightts_models::inference::InferencePlan) (default)
//!   or the true-int8
//!   [`QuantizedPlan`](lightts_models::qinference::QuantizedPlan) via the
//!   `plan = f32 | i8` knob ([`ServeConfig::plan`] +
//!   [`ModelRegistry::for_config`], or per-model
//!   [`register_as`](ModelRegistry::register_as)). Both kinds can be
//!   resident at once; a model that cannot support the requested kind
//!   (e.g. 16/32-bit quantization metadata asked to serve i8) is refused
//!   at registration with a typed error, never a panic.
//! * [`Server`] — request queues with **dynamic micro-batching**: requests
//!   accumulate until either `max_batch` are waiting or the oldest has
//!   waited `max_wait`, then one fused forward runs over the whole batch
//!   and the rows are scattered back to their callers. The scheduler is
//!   **sharded** ([`ServeConfig::shards`]): each shard thread owns its own
//!   queues, condvar, and plan clones, models are replicated across
//!   [`ServeConfig::replicas`] shards, and requests are hash-routed by
//!   request id ([`route_replica`]) — one hot model replicated across N
//!   shards scales across cores with no shared lock on the hot path.
//! * [`wire`] / [`net`] — the `LTSP` length-prefixed binary protocol and
//!   its TCP / Unix-socket front door ([`Server::serve_net`],
//!   [`Server::serve_unix`] + [`NetClient`]): remote callers get the same
//!   admission, batching, deadline, and shed semantics as in-process ones,
//!   rendered as typed status codes, with probability rows crossing the
//!   wire bit-exactly.
//! * [`ServeStats`] — per-request latency and per-batch throughput
//!   counters, exposed as a consistent snapshot (plus per-shard
//!   `serve.shard{i}.*` series in [`Server::metrics`]).
//!
//! ## Robustness
//!
//! The runtime is hardened for unattended operation:
//!
//! * **Admission control** — each model's queue is bounded by
//!   [`ServeConfig::max_queue`]; further submissions are shed with
//!   [`ServeError::Overloaded`] rather than growing memory and latency
//!   without bound.
//! * **Input validation** — wrong shapes and NaN/Inf values are rejected
//!   at [`submit`](ServerHandle::submit) with typed errors
//!   ([`ServeError::BadRequest`], [`ServeError::NonFiniteInput`]) before
//!   they can poison a fused batch.
//! * **Deadlines** —
//!   [`submit_with_deadline`](ServerHandle::submit_with_deadline) attaches
//!   a deadline; the scheduler sheds already-expired requests *before*
//!   spending a forward pass on them, and
//!   [`Pending::wait_timeout`] bounds the caller's wait.
//! * **Panic isolation** — a panic inside a fused forward (kernel bug,
//!   `serve.batch` failpoint) fails only that batch's requests with
//!   [`ServeError::Inference`]; the scheduler recovers — including from
//!   poisoned mutexes — and keeps serving, with bitwise-identical results
//!   for subsequent requests. A panic escaping a shard's *loop* (the
//!   `serve.shard` failpoint) kills only that shard: its queued requests
//!   are answered with a shard-tagged [`ServeError::SchedulerDied`], and
//!   sibling shards keep serving bitwise-identically.
//! * **Self-healing** — a supervisor thread detects shard death and
//!   **respawns** the shard from pristine plan masters, after proving the
//!   reborn shard answers a probe input bitwise identically to its
//!   pre-death self — at most [`ServeConfig::restart_budget`] times per
//!   rolling [`ServeConfig::restart_window`], after which the shard is
//!   permanently failed and `/healthz` reports `degraded`. While a shard
//!   is down, submissions **reroute deterministically** to surviving
//!   replicas ([`route_replica_masked`]; counted in `serve.reroutes`).
//! * **Retry with backoff** — [`RetryPolicy`] drives
//!   [`ServerHandle::predict_with_retry`] and
//!   [`NetClient::predict_with_retry`]: only the retryable status class
//!   (`OVERLOADED`, `UNAVAILABLE`) is retried, with capped exponential
//!   backoff, deterministic per-request jitter, and a hard overall
//!   deadline budget that retries can never exceed.
//! * **Circuit breakers** — per-model breakers ([`ServeConfig::circuit_threshold`],
//!   [`ServeConfig::circuit_cooldown`]) open after K consecutive failed
//!   batches and shed fast with [`ServeError::CircuitOpen`] (wire status
//!   `CIRCUIT_OPEN`) until a half-open probe succeeds — a poisoned model
//!   cannot keep burning scheduler time.
//! * **Observability** — sheds, contained panics, reroutes, restarts, and
//!   breaker state are counted (`serve.shed_overload`,
//!   `serve.shed_deadline`, `serve.shed_circuit`, `serve.batch_panics`,
//!   `serve.reroutes`, `serve.restarts`, `serve.shard{i}.restarts`,
//!   `serve.shards_failed`, `serve.circuit{m}.state`,
//!   `serve.circuit_opens`) in [`Server::metrics`], alongside per-shard
//!   queue-depth/batch/latency series and `serve.shard.batch` trace
//!   spans; `/healthz` reports `ok`/`recovering`/`degraded` with restart
//!   counts and the last restart timestamp.
//!
//! ## Threading model
//!
//! N scheduler shard threads each own *clones* of the compiled plans
//! placed on them (and their scratch buffers) — requests are handed over
//! through the owning shard's mutex-protected queues, so plans need no
//! internal locking and shards never contend on one lock. The shard count
//! defaults to available parallelism clamped to the model count
//! (overridable via [`ServeConfig::shards`] or `LIGHTTS_SERVE_SHARDS`).
//! The fused forward itself fans out over the `lightts_tensor::par`
//! thread pool exactly like the training kernels do: the batched
//! matrix-multiply and convolution kernels partition output rows across
//! the pool's workers. Callers block on a one-shot channel (or poll a
//! [`Pending`] handle for pipelined submission); remote callers go
//! through the [`net`] front door's per-connection reader/writer pair.
//!
//! ## Determinism contract
//!
//! Responses are **bitwise identical** to calling
//! [`predict_proba`](lightts_models::Classifier::predict_proba) on each
//! sample alone, no matter which micro-batches the scheduler happens to
//! form: every kernel in the inference path computes each output row with a
//! batch-size-independent accumulation order (see
//! [`lightts_models::inference`]). Sharding preserves this whole-server:
//! the route is a pure function of the request id, and every replica is a
//! clone of the same compiled plan, so shard counts 1 and N answer
//! bitwise identically — and so does the wire path, which moves `f32`
//! bit patterns, never text. Batching is therefore purely a
//! throughput optimization — it can never change a prediction. The i8 plan
//! upholds the same batch-size invariance (activation quantizers are
//! fitted per sample, and integer accumulation is exact), and is
//! additionally bitwise identical across SIMD backends; its predictions
//! are *approximate with respect to the f32 plan*, within the parity gate
//! of `tests/quantized_parity.rs` (see `docs/NUMERICS.md`, "Quantized
//! inference").
//!
//! ```no_run
//! use lightts_serve::{ModelRegistry, ServeConfig, Server};
//!
//! # fn demo(packed: &[u8], series: Vec<f32>) -> Result<(), lightts_serve::ServeError> {
//! let mut registry = ModelRegistry::new();
//! registry.load_packed("student", packed)?;
//! let server = Server::start(registry, ServeConfig::default());
//! let probs = server.handle().predict("student", series)?;
//! println!("class probabilities: {probs:?}");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod breaker;
mod error;
pub mod net;
mod registry;
mod retry;
mod server;
mod stats;
mod supervisor;
pub mod wire;

pub use error::ServeError;
pub use net::{NetClient, NetError, NetServer};
pub use registry::{ModelRegistry, PlanKind};
pub use retry::{RetryPolicy, MAX_BACKOFF};
pub use server::{
    route_replica, route_replica_masked, Pending, ServeConfig, Server, ServerHandle,
    DEFAULT_RESTART_BUDGET, MAX_SHARDS,
};
pub use stats::ServeStats;
pub use wire::Status;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
