//! # lightts-serve
//!
//! Batched inference serving for LightTS students.
//!
//! The whole point of LightTS is producing *lightweight* students that can
//! serve predictions on constrained hardware; this crate is the runtime
//! that actually serves them:
//!
//! * [`ModelRegistry`] — loads packed
//!   [`save_bytes`](lightts_models::inception::InceptionTime::save_bytes)
//!   exports (or live models) and compiles each into a tape-free plan of
//!   the chosen [`PlanKind`]: the f32
//!   [`InferencePlan`](lightts_models::inference::InferencePlan) (default)
//!   or the true-int8
//!   [`QuantizedPlan`](lightts_models::qinference::QuantizedPlan) via the
//!   `plan = f32 | i8` knob ([`ServeConfig::plan`] +
//!   [`ModelRegistry::for_config`], or per-model
//!   [`register_as`](ModelRegistry::register_as)). Both kinds can be
//!   resident at once; a model that cannot support the requested kind
//!   (e.g. 16/32-bit quantization metadata asked to serve i8) is refused
//!   at registration with a typed error, never a panic.
//! * [`Server`] — a request queue with **dynamic micro-batching**: requests
//!   accumulate until either `max_batch` are waiting or the oldest has
//!   waited `max_wait`, then one fused forward runs over the whole batch
//!   and the rows are scattered back to their callers.
//! * [`ServeStats`] — per-request latency and per-batch throughput
//!   counters, exposed as a consistent snapshot.
//!
//! ## Robustness
//!
//! The runtime is hardened for unattended operation:
//!
//! * **Admission control** — each model's queue is bounded by
//!   [`ServeConfig::max_queue`]; further submissions are shed with
//!   [`ServeError::Overloaded`] rather than growing memory and latency
//!   without bound.
//! * **Input validation** — wrong shapes and NaN/Inf values are rejected
//!   at [`submit`](ServerHandle::submit) with typed errors
//!   ([`ServeError::BadRequest`], [`ServeError::NonFiniteInput`]) before
//!   they can poison a fused batch.
//! * **Deadlines** —
//!   [`submit_with_deadline`](ServerHandle::submit_with_deadline) attaches
//!   a deadline; the scheduler sheds already-expired requests *before*
//!   spending a forward pass on them, and
//!   [`Pending::wait_timeout`] bounds the caller's wait.
//! * **Panic isolation** — a panic inside a fused forward (kernel bug,
//!   `serve.batch` failpoint) fails only that batch's requests with
//!   [`ServeError::Inference`]; the scheduler recovers — including from
//!   poisoned mutexes — and keeps serving, with bitwise-identical results
//!   for subsequent requests.
//! * **Observability** — sheds and contained panics are counted
//!   (`serve.shed_overload`, `serve.shed_deadline`, `serve.batch_panics`)
//!   in [`Server::metrics`].
//!
//! ## Threading model
//!
//! One dedicated scheduler thread owns every compiled plan (and its scratch
//! buffers) — requests are handed over through a mutex-protected queue, so
//! plans need no internal locking. The fused forward itself fans out over
//! the `lightts_tensor::par` thread pool exactly like the training kernels
//! do: the batched matrix-multiply and convolution kernels partition output
//! rows across the pool's workers. Callers block on a one-shot channel (or
//! poll a [`Pending`] handle for pipelined submission).
//!
//! ## Determinism contract
//!
//! Responses are **bitwise identical** to calling
//! [`predict_proba`](lightts_models::Classifier::predict_proba) on each
//! sample alone, no matter which micro-batches the scheduler happens to
//! form: every kernel in the inference path computes each output row with a
//! batch-size-independent accumulation order (see
//! [`lightts_models::inference`]). Batching is therefore purely a
//! throughput optimization — it can never change a prediction. The i8 plan
//! upholds the same batch-size invariance (activation quantizers are
//! fitted per sample, and integer accumulation is exact), and is
//! additionally bitwise identical across SIMD backends; its predictions
//! are *approximate with respect to the f32 plan*, within the parity gate
//! of `tests/quantized_parity.rs` (see `docs/NUMERICS.md`, "Quantized
//! inference").
//!
//! ```no_run
//! use lightts_serve::{ModelRegistry, ServeConfig, Server};
//!
//! # fn demo(packed: &[u8], series: Vec<f32>) -> Result<(), lightts_serve::ServeError> {
//! let mut registry = ModelRegistry::new();
//! registry.load_packed("student", packed)?;
//! let server = Server::start(registry, ServeConfig::default());
//! let probs = server.handle().predict("student", series)?;
//! println!("class probabilities: {probs:?}");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod registry;
mod server;
mod stats;

pub use error::ServeError;
pub use registry::{ModelRegistry, PlanKind};
pub use server::{Pending, ServeConfig, Server, ServerHandle};
pub use stats::ServeStats;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
