//! The shard supervisor: detects shard death and respawns the shard from
//! pristine plan masters — after proving the reborn shard would answer
//! **bitwise identically** to its pre-death self.
//!
//! ## Protocol
//!
//! A shard thread that exits uncleanly runs its `AliveGuard`
//! ([`crate::server`]): the guard drains the shard's queues with
//! shard-tagged [`SchedulerDied`](crate::ServeError::SchedulerDied)
//! errors, flips the shard's routing phase to `RESTARTING` (so the
//! liveness-masked router sends new submissions to surviving replicas),
//! and sends the shard's index down the supervisor channel. The
//! supervisor — one thread per server, asleep on that channel — then:
//!
//! 1. **joins** the dead thread, so the OS thread and its guard are fully
//!    retired before any rebirth;
//! 2. checks the **restart budget**: at most
//!    [`restart_budget`](crate::ServeConfig::restart_budget) respawns per
//!    shard per rolling [`restart_window`](crate::ServeConfig::restart_window).
//!    Over budget → the shard is marked permanently **failed**: routing
//!    masks it forever, `serve.shards_failed` rises, and `/healthz`
//!    reports `degraded`;
//! 3. clones fresh plans from the **masters** (the pristine copies
//!    [`Server::start`](crate::Server::start) retained) and **verifies**
//!    each clone answers the deterministic probe input bitwise identically
//!    to the golden rows recorded at server start — the same identity
//!    contract the equivalence suite pins for replicas. A mismatch fails
//!    the shard instead of reviving it with corrupt weights;
//! 4. clears the shard's `dead` flag, flips its liveness gauge back,
//!    counts `serve.shard{i}.restarts`, records the restart timestamp for
//!    `/healthz`, spawns the new scheduler thread, and only then reopens
//!    routing (`phase → LIVE`).
//!
//! Shutdown simply drops the supervisor channel's sender, ending the
//! `recv` loop; [`Server`](crate::Server) joins the supervisor *before*
//! flagging shards down, so a respawn never races the drain.

use crate::registry::AnyPlan;
use crate::server::{
    self, elapsed_us, epoch_us, lock_state, splitmix64, Shared, PHASE_FAILED, PHASE_LIVE,
};
use lightts_obs as obs;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;

/// The deterministic probe sample for model `model_index`: `sample_len`
/// values in `[-1, 1)`, a pure function of `(model_index, position)` — so
/// the golden rows recorded at server start and the verification rows
/// computed at respawn are probes of *identical* inputs.
pub(crate) fn probe_input(sample_len: usize, model_index: usize) -> Vec<f32> {
    (0..sample_len)
        .map(|i| {
            let bits = splitmix64(((model_index as u64) << 32) ^ i as u64);
            // Top 24 bits → an exactly-representable fraction in [0, 1).
            let frac = (bits >> 40) as f32 / (1u64 << 24) as f32;
            frac * 2.0 - 1.0
        })
        .collect()
}

/// Runs the probe input through a plan and returns the probability row as
/// IEEE-754 bit patterns (`None` if the forward fails). Bit patterns, not
/// floats: the respawn identity check is **bitwise**, the same currency as
/// the crate's determinism contract.
pub(crate) fn probe_bits(plan: &mut AnyPlan, model_index: usize) -> Option<Vec<u32>> {
    let input = probe_input(plan.sample_len(), model_index);
    let mut probs = Vec::new();
    plan.predict_proba_into(&input, 1, &mut probs).ok()?;
    Some(probs.iter().map(|p| p.to_bits()).collect())
}

/// Spawns the supervisor thread for a server. It sleeps on `rx` and
/// respawns whichever shard index arrives; it exits when every sender is
/// gone (shutdown drops the one in [`Shared::supervisor_tx`]).
pub(crate) fn spawn(shared: Arc<Shared>, rx: mpsc::Receiver<usize>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("lightts-supervise".into())
        .spawn(move || {
            // Per-shard restart instants (µs since server start) inside the
            // rolling window — supervisor-local, no sharing needed.
            let mut history: Vec<Vec<u64>> = vec![Vec::new(); shared.shards.len()];
            while let Ok(si) = rx.recv() {
                respawn(&shared, si, &mut history[si]);
            }
        })
        .expect("spawn supervisor thread")
}

/// One respawn attempt for shard `si`. See the module docs for the
/// protocol; every early return leaves the shard masked out of routing
/// (restarting or failed), never half-revived.
fn respawn(shared: &Arc<Shared>, si: usize, history: &mut Vec<u64>) {
    let shard = &shared.shards[si];
    // 1. Retire the corpse: after this join the old thread (and its drop
    // guard) is completely gone.
    let handle = {
        let mut threads = shared.threads.lock().unwrap_or_else(PoisonError::into_inner);
        threads[si].take()
    };
    if let Some(h) = handle {
        let _ = h.join();
    }
    if lock_state(shard).shutdown {
        return; // shutting down: the server owns the rest
    }
    // 2. Budget: N respawns per rolling window, then permanently failed.
    let now_us = elapsed_us(shared);
    let window_us = shared.cfg.restart_window.as_micros().min(u128::from(u64::MAX)) as u64;
    history.retain(|&t| now_us.saturating_sub(t) < window_us);
    if history.len() >= shared.restart_budget {
        shard.phase.store(PHASE_FAILED, Ordering::Relaxed);
        shared.stats.shard_failed();
        obs::event!("serve.shard.failed", {
            shard: si,
            restarts_in_window: history.len(),
            budget: shared.restart_budget,
        });
        return;
    }
    // 3. Fresh clones from the pristine masters, each verified bitwise
    // against the golden probe rows before it may serve.
    let mut plans: Vec<AnyPlan> = {
        let masters = shared.masters.lock().unwrap_or_else(PoisonError::into_inner);
        shard.slot_models.iter().map(|&m| masters[m].clone()).collect()
    };
    for (slot, plan) in plans.iter_mut().enumerate() {
        let mi = shard.slot_models[slot];
        let golden = &shared.probe_golden[mi];
        if golden.is_empty() {
            continue; // no golden row was recordable at start
        }
        if probe_bits(plan, mi).as_deref() != Some(golden.as_slice()) {
            shard.phase.store(PHASE_FAILED, Ordering::Relaxed);
            shared.stats.shard_failed();
            obs::event!("serve.shard.failed", {
                shard: si,
                model: shared.models[mi].name.as_str(),
                reason: "respawn probe answered non-identically",
            });
            return;
        }
    }
    // 4. Rebirth: counters first, then state, routing last — an observer
    // that sees the shard alive again must already see the restart
    // counted (and its timestamp stamped), and a submit that sees
    // `phase == LIVE` must find `dead == false` and a spawned (or about to
    // be spawned) scheduler behind the queues it enqueues into.
    shared.stats.shard_reborn(si);
    history.push(now_us);
    shared.last_restart_us.store(epoch_us(), Ordering::Relaxed);
    {
        let mut st = lock_state(shard);
        if st.shutdown {
            return;
        }
        st.dead = false;
    }
    shard.alive.store(true, Ordering::Relaxed);
    {
        let mut threads = shared.threads.lock().unwrap_or_else(PoisonError::into_inner);
        threads[si] = Some(server::spawn_shard(shared, si, plans));
    }
    shard.phase.store(PHASE_LIVE, Ordering::Relaxed);
    obs::event!("serve.shard.reborn", { shard: si, restarts_in_window: history.len() });
}
