//! The serving scheduler: request queues with dynamic micro-batching,
//! admission control, deadlines, panic isolation — sharded N ways.
//!
//! ## Sharding
//!
//! The server runs [`ServeConfig::shards`] scheduler threads. Each shard
//! owns its own bounded queues, condvar, and *clones* of the compiled
//! plans placed on it, so shards share no mutable state and never contend
//! on one lock. Models are placed on [`ServeConfig::replicas`] consecutive
//! shards (round-robin from the model's index); a request is routed to one
//! replica by hashing its request id ([`route_replica`]) — a pure function
//! of the id, so the same request id always lands on the same shard and
//! the per-shard determinism contract composes into a whole-server one:
//! the route is deterministic, and every replica answers bitwise
//! identically (clones of one plan), so *any* route answers bitwise
//! identically.
//!
//! Fault isolation is shard-local: a panic escaping one shard's loop kills
//! only that shard — its queued requests are drained with
//! [`ServeError::SchedulerDied`] naming the shard, later submissions
//! routed to it reroute to live replicas ([`route_replica_masked`]) while
//! the supervisor ([`crate::supervisor`]) respawns it, and sibling shards
//! keep serving. Per-model circuit breakers ([`crate::breaker`]) shed
//! requests for a model whose forwards keep failing, independent of shard
//! liveness.

use crate::breaker::Breaker;
use crate::registry::{AnyPlan, ModelRegistry, PlanKind};
use crate::retry::RetryPolicy;
use crate::stats::{ServeStats, StatsInner};
use crate::supervisor;
use crate::{Result, ServeError};
use lightts_obs as obs;
use obs::TraceCtx;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Hard cap on the number of scheduler shards (a runaway-config backstop;
/// each shard is an OS thread plus a plan-clone set).
pub const MAX_SHARDS: usize = 64;

/// Default shard restart budget (respawns per rolling window) when
/// neither [`ServeConfig::restart_budget`] nor `LIGHTTS_SERVE_RESTARTS`
/// picks one.
pub const DEFAULT_RESTART_BUDGET: usize = 3;

/// Micro-batching and admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Fuse at most this many requests into one forward pass.
    pub max_batch: usize,
    /// Run a partial batch once its oldest request has waited this long.
    pub max_wait: Duration,
    /// Admission control: at most this many requests may be queued per
    /// model replica; further submissions are shed with
    /// [`ServeError::Overloaded`] until the queue drains (a 0 is treated
    /// as 1). Bounding the queue keeps worst-case memory and queueing
    /// latency finite under overload — shedding early is cheaper than
    /// answering late.
    pub max_queue: usize,
    /// Which compiled plan kind [`ModelRegistry::for_config`] builds for
    /// models registered through it: the classic f32 plan (default) or the
    /// true-int8 plan (~4× smaller weights, integer conv/GEMM, parity-gated
    /// against f32). Per-batch execution is recorded in the
    /// `serve.plan_f32_requests` / `serve.plan_i8_requests` counters
    /// regardless of how the registry was built, so mixed registries stay
    /// observable.
    pub plan: PlanKind,
    /// Number of scheduler shards (capped at [`MAX_SHARDS`]).
    ///
    /// `0` (the default) resolves at [`Server::start`]: the
    /// `LIGHTTS_SERVE_SHARDS` environment variable if set, else the host's
    /// available parallelism clamped to the registry's model count (one
    /// model cannot use more shards than its replicas by default — see
    /// [`replicas`](Self::replicas)). Explicit values (config or env) are
    /// *not* clamped to the model count: replicating one hot model across
    /// many shards is exactly the multi-core throughput play.
    pub shards: usize,
    /// Replicas per model: each model's compiled plan is cloned onto this
    /// many consecutive shards and its requests hash-routed among them.
    /// `0` (the default) replicates on every shard. Values are clamped to
    /// the shard count.
    pub replicas: usize,
    /// How many times the supervisor may respawn one shard within
    /// [`restart_window`](Self::restart_window) before marking it
    /// **permanently failed** (no further respawns; submissions reroute to
    /// surviving replicas and `/healthz` reports `degraded`).
    ///
    /// `None` (the default) resolves at [`Server::start`]: the
    /// `LIGHTTS_SERVE_RESTARTS` environment variable if set, else
    /// [`DEFAULT_RESTART_BUDGET`]. `Some(0)` disables respawn entirely —
    /// a dead shard stays dead, as in the pre-supervisor behaviour.
    pub restart_budget: Option<usize>,
    /// The rolling window the restart budget is counted over.
    pub restart_window: Duration,
    /// Circuit breaker: consecutive *failed batches* (contained panics or
    /// model errors from the fused forward) that open a model's circuit,
    /// shedding its submissions with [`ServeError::CircuitOpen`] until a
    /// half-open probe succeeds. `0` disables the breakers.
    pub circuit_threshold: usize,
    /// How long an open circuit sheds before admitting one half-open
    /// probe.
    pub circuit_cooldown: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            max_queue: 1024,
            plan: PlanKind::F32,
            shards: 0,
            replicas: 0,
            restart_budget: None,
            restart_window: Duration::from_secs(60),
            circuit_threshold: 8,
            circuit_cooldown: Duration::from_millis(250),
        }
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks which of a model's `replicas` a request id routes to.
///
/// A pure, total function: any `request_id` maps to a replica index
/// `< replicas.max(1)`, the same one every time, on every server with the
/// same replica count — the property the routing proptest pins. The id is
/// mixed through splitmix64 first so sequential ids (a counter-assigning
/// client) still spread across replicas instead of all landing on
/// `id % replicas`'s bias pattern.
pub fn route_replica(request_id: u64, replicas: usize) -> usize {
    (splitmix64(request_id) % replicas.max(1) as u64) as usize
}

/// Liveness-masked routing: picks which of a model's replicas a request
/// id routes to, considering only replicas whose `live` flag is set.
/// `None` when no replica is live.
///
/// Deterministic in `(request_id, live)`: the same id under the same mask
/// always picks the same replica — so a *retry* of a request whose
/// primary shard died lands on one deterministic sibling, not a random
/// one. When every replica is live this agrees exactly with
/// [`route_replica`] (the routing proptest pins both properties), so
/// masked routing changes nothing — neither placement nor bits — on a
/// healthy server.
pub fn route_replica_masked(request_id: u64, live: &[bool]) -> Option<usize> {
    let n = live.iter().filter(|&&l| l).count();
    if n == 0 {
        return None;
    }
    let k = (splitmix64(request_id) % n as u64) as usize;
    live.iter().enumerate().filter(|&(_, &l)| l).nth(k).map(|(i, _)| i)
}

/// Reads the `LIGHTTS_SERVE_SHARDS` override (ignored unless a positive
/// integer).
fn env_shards() -> Option<usize> {
    std::env::var("LIGHTTS_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Resolves the shard restart budget: explicit config wins, then the
/// `LIGHTTS_SERVE_RESTARTS` environment knob, then
/// [`DEFAULT_RESTART_BUDGET`]. A budget of 0 disables respawn.
fn resolve_restart_budget(cfg_budget: Option<usize>) -> usize {
    cfg_budget
        .or_else(|| {
            std::env::var("LIGHTTS_SERVE_RESTARTS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or(DEFAULT_RESTART_BUDGET)
}

/// Resolves the shard count: explicit config wins, then the environment
/// knob, then available parallelism clamped to the model count.
fn resolve_shards(cfg_shards: usize, nmodels: usize) -> usize {
    let n = if cfg_shards > 0 {
        cfg_shards
    } else if let Some(n) = env_shards() {
        n
    } else {
        let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        par.min(nmodels.max(1))
    };
    n.clamp(1, MAX_SHARDS)
}

/// Computes replica placement: model `m` goes on shards
/// `(m + k) % nshards` for `k in 0..replicas`.
///
/// Returns `(slots, routes)`: `slots[s]` lists the model index behind each
/// of shard `s`'s local queue slots, and `routes[m]` lists model `m`'s
/// `(shard, slot)` replicas in route order.
#[allow(clippy::type_complexity)]
fn placement(
    nmodels: usize,
    nshards: usize,
    replicas: usize,
) -> (Vec<Vec<usize>>, Vec<Vec<(usize, usize)>>) {
    let mut slots: Vec<Vec<usize>> = vec![Vec::new(); nshards];
    let mut routes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nmodels];
    for (m, route) in routes.iter_mut().enumerate() {
        for k in 0..replicas {
            let s = (m + k) % nshards;
            route.push((s, slots[s].len()));
            slots[s].push(m);
        }
    }
    (slots, routes)
}

/// One queued prediction request.
pub(crate) struct Request {
    input: Vec<f32>,
    /// Trace context minted at submission: the request's process-unique
    /// `trace_id` plus its submit timestamp in both clock domains. The
    /// monotonic anchor doubles as the enqueue instant for batching
    /// (`max_wait`) and latency accounting.
    trace: TraceCtx,
    /// Absolute deadline; the scheduler sheds the request (with
    /// [`ServeError::DeadlineExceeded`]) instead of running inference for
    /// it once this has passed.
    deadline: Option<Instant>,
    tx: mpsc::Sender<Result<Vec<f32>>>,
}

/// Submit-side metadata for one registered model.
#[derive(Debug)]
pub(crate) struct ModelInfo {
    pub(crate) name: String,
    pub(crate) sample_len: usize,
    /// The model's replicas, in route order: `(shard, slot)` pairs.
    pub(crate) routes: Vec<(usize, usize)>,
}

/// Queue state guarded by one shard's mutex.
pub(crate) struct ShardState {
    /// One FIFO per local slot, indexed like `Shard::slot_models`.
    pub(crate) queues: Vec<VecDeque<Request>>,
    pub(crate) shutdown: bool,
    /// Set by the shard's drop guard when its thread exits *without* a
    /// clean shutdown: submissions reroute (or fail fast with
    /// [`ServeError::SchedulerDied`]) instead of queueing forever.
    /// Cleared by the supervisor when it respawns the shard.
    pub(crate) dead: bool,
}

/// Routing phase of a shard, stored in [`Shard::phase`]. Distinct from
/// the `alive` bit: `alive` answers "is the thread running its loop right
/// now" (the `/healthz` signal), `phase` answers "should the router send
/// requests here".
pub(crate) const PHASE_LIVE: u8 = 0;
/// The shard died uncleanly; the supervisor has been notified and a
/// respawn is pending. Routing masks the shard out.
pub(crate) const PHASE_RESTARTING: u8 = 1;
/// The shard exhausted its restart budget (or a respawn failed
/// verification) and is permanently failed. Routing masks it out forever;
/// `/healthz` reports `degraded`.
pub(crate) const PHASE_FAILED: u8 = 2;

/// One scheduler shard: its queues, wakeup, and placement.
pub(crate) struct Shard {
    pub(crate) state: Mutex<ShardState>,
    pub(crate) cv: Condvar,
    /// The model index behind each local queue slot.
    pub(crate) slot_models: Vec<usize>,
    /// `true` while the shard thread runs its loop; flipped by a drop
    /// guard on any exit path, set back by the supervisor on respawn.
    pub(crate) alive: AtomicBool,
    /// Routing phase: one of [`PHASE_LIVE`] / [`PHASE_RESTARTING`] /
    /// [`PHASE_FAILED`].
    pub(crate) phase: AtomicU8,
}

impl Shard {
    /// Whether the router may send requests to this shard.
    pub(crate) fn routable(&self) -> bool {
        self.phase.load(Ordering::Relaxed) == PHASE_LIVE
    }
}

/// State shared between caller handles, the scheduler shards, and the
/// supervisor.
pub(crate) struct Shared {
    pub(crate) shards: Vec<Shard>,
    pub(crate) models: Vec<ModelInfo>,
    pub(crate) stats: StatsInner,
    pub(crate) cfg: ServeConfig,
    /// Per-model circuit breakers, indexed like `models`.
    pub(crate) breakers: Vec<Breaker>,
    /// Pristine master copies of every model's compiled plan, the
    /// clone-source for shard respawn (indexed by model). Behind a mutex
    /// only because the supervisor clones from it; the serving hot path
    /// never touches it.
    pub(crate) masters: Mutex<Vec<AnyPlan>>,
    /// Per-model golden probe rows (`f32::to_bits` of the probability
    /// row for [`supervisor::probe_input`]), computed once at start. A
    /// respawned shard's plan clones must reproduce these **bitwise** or
    /// the shard is failed instead of revived.
    pub(crate) probe_golden: Vec<Vec<u32>>,
    /// Shard thread handles, shared with the supervisor so it can join a
    /// dead shard before respawning it. `None` while a slot has no
    /// (living or joinable) thread.
    pub(crate) threads: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// The supervisor's death-notice channel. `AliveGuard` sends the dying
    /// shard's index here; dropped (→ `None`) at shutdown, which is what
    /// stops the supervisor thread.
    pub(crate) supervisor_tx: Mutex<Option<mpsc::Sender<usize>>>,
    /// Resolved restart budget (see [`ServeConfig::restart_budget`]).
    pub(crate) restart_budget: usize,
    /// Monotonic anchor for breaker cooldowns and restart-window
    /// arithmetic.
    pub(crate) started: Instant,
    /// Unix-epoch µs of the most recent successful shard respawn (0 =
    /// never); surfaced in `/healthz` as `last_restart_us`.
    pub(crate) last_restart_us: AtomicU64,
}

/// Microseconds since the server started (the monotonic clock every
/// breaker/restart decision uses).
pub(crate) fn elapsed_us(shared: &Shared) -> u64 {
    shared.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Unix-epoch µs now (for the human-facing restart timestamp only; no
/// scheduling decision reads the wall clock).
pub(crate) fn epoch_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64)
}

/// Locks one shard's state, recovering from mutex poisoning.
///
/// The queue invariants are simple enough (a `VecDeque` push/drain is
/// never observable half-done) that a panic elsewhere while the lock was
/// held cannot leave the state torn — so a poisoned mutex is recovered
/// with [`PoisonError::into_inner`] rather than cascading the panic into
/// every submitting thread and the shard.
pub(crate) fn lock_state(shard: &Shard) -> MutexGuard<'_, ShardState> {
    shard.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running serving instance.
///
/// Owns the scheduler shard threads; dropping (or calling
/// [`shutdown`](Self::shutdown)) drains the queues — every
/// already-accepted request is still answered — then stops the threads,
/// and only then retires any attached network front doors
/// ([`serve_net`](Self::serve_net)), so in-flight remote requests see
/// their replies (or a typed `SHUTDOWN` status), never a closed socket.
pub struct Server {
    shared: Arc<Shared>,
    /// The supervisor thread ([`crate::supervisor`]): respawns dead shards
    /// until their restart budget runs out. Joined first on shutdown so no
    /// respawn races the drain.
    supervisor: Option<JoinHandle<()>>,
    /// Network front doors attached via [`serve_net`](Self::serve_net) /
    /// `serve_unix`; retired *after* the shard drain on shutdown.
    pub(crate) doors: Mutex<Vec<Arc<crate::net::DoorInner>>>,
}

/// A cloneable, `Send` handle for submitting requests to a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

/// An in-flight prediction: redeem with [`wait`](Self::wait) or
/// [`wait_timeout`](Self::wait_timeout).
///
/// Submitting many [`Pending`]s before waiting on any is how a
/// single-threaded client lets the scheduler form large fused batches.
pub struct Pending {
    rx: mpsc::Receiver<Result<Vec<f32>>>,
    /// The shard the request was enqueued on, so a disconnected reply
    /// channel can still name the shard that died holding it.
    shard: usize,
}

impl Pending {
    /// The shard this request was enqueued on (after any liveness-masked
    /// rerouting).
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Blocks until the prediction is available.
    ///
    /// Returns the class-probability row for the submitted sample. If the
    /// reply channel disconnects without an answer — the owning shard's
    /// scheduler thread died — this is [`ServeError::SchedulerDied`]
    /// naming that shard, *not* a clean [`ServeError::Shutdown`] (shutdown
    /// drains and answers every accepted request).
    pub fn wait(self) -> Result<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::SchedulerDied { shard: Some(self.shard) }))
    }

    /// Blocks for at most `timeout` for the prediction.
    ///
    /// [`ServeError::DeadlineExceeded`] if no reply arrived in time (the
    /// request may still be answered later; the reply is discarded),
    /// [`ServeError::SchedulerDied`] naming the owning shard if the reply
    /// channel disconnected.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<f32>> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(RecvTimeoutError::Disconnected) => {
                Err(ServeError::SchedulerDied { shard: Some(self.shard) })
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn disconnected(shard: usize) -> Pending {
        let (_, rx) = mpsc::channel();
        Pending { rx, shard }
    }
}

impl Server {
    /// Starts a server over the given registry with the given batching
    /// policy (a `max_batch` or `max_queue` of 0 is treated as 1; see
    /// [`ServeConfig::shards`] for how a 0 shard count resolves).
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Server {
        let nmodels = registry.entries.len();
        let nshards = resolve_shards(cfg.shards, nmodels);
        let restart_budget = resolve_restart_budget(cfg.restart_budget);
        let cfg = ServeConfig {
            max_batch: cfg.max_batch.max(1),
            max_queue: cfg.max_queue.max(1),
            shards: nshards,
            replicas: if cfg.replicas == 0 { nshards } else { cfg.replicas.min(nshards) },
            restart_budget: Some(restart_budget),
            ..cfg
        };
        let (slots, routes) = placement(nmodels, nshards, cfg.replicas);
        let mut models = Vec::with_capacity(nmodels);
        let mut plans: Vec<AnyPlan> = Vec::with_capacity(nmodels);
        for (e, routes) in registry.entries.into_iter().zip(routes) {
            models.push(ModelInfo { name: e.name, sample_len: e.plan.sample_len(), routes });
            plans.push(e.plan);
        }
        // Golden probe rows, computed on the master plans before any clone
        // exists: the bitwise identity a respawned shard's clones must
        // reproduce before the supervisor lets them serve.
        let probe_golden: Vec<Vec<u32>> = plans
            .iter_mut()
            .enumerate()
            .map(|(m, plan)| supervisor::probe_bits(plan, m).unwrap_or_default())
            .collect();
        let shards: Vec<Shard> = slots
            .iter()
            .map(|slot_models| Shard {
                state: Mutex::new(ShardState {
                    queues: slot_models.iter().map(|_| VecDeque::new()).collect(),
                    shutdown: false,
                    dead: false,
                }),
                cv: Condvar::new(),
                slot_models: slot_models.clone(),
                alive: AtomicBool::new(true),
                phase: AtomicU8::new(PHASE_LIVE),
            })
            .collect();
        // Each shard owns *clones* of the plans placed on it — weights and
        // scratch both — so shards never share mutable plan state; the
        // pristine masters go into `Shared` as the respawn clone-source.
        let shard_plans: Vec<Vec<AnyPlan>> = slots
            .iter()
            .map(|slot_models| slot_models.iter().map(|&m| plans[m].clone()).collect())
            .collect();
        let stats = StatsInner::new(nshards, nmodels);
        let breakers = (0..nmodels)
            .map(|m| {
                Breaker::new(
                    cfg.circuit_threshold,
                    cfg.circuit_cooldown,
                    stats.circuit_gauge(m),
                    stats.circuit_opens(),
                )
            })
            .collect();
        let (sup_tx, sup_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            shards,
            models,
            stats,
            cfg,
            breakers,
            masters: Mutex::new(plans),
            probe_golden,
            threads: Mutex::new((0..nshards).map(|_| None).collect()),
            supervisor_tx: Mutex::new(Some(sup_tx)),
            restart_budget,
            started: Instant::now(),
            last_restart_us: AtomicU64::new(0),
        });
        {
            let mut threads = shared.threads.lock().unwrap_or_else(PoisonError::into_inner);
            for (si, plans) in shard_plans.into_iter().enumerate() {
                threads[si] = Some(spawn_shard(&shared, si, plans));
            }
        }
        let supervisor = Some(supervisor::spawn(Arc::clone(&shared), sup_rx));
        Server { shared, supervisor, doors: Mutex::new(Vec::new()) }
    }

    /// A handle for submitting requests (cloneable, usable from any
    /// thread).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// The per-server metrics registry backing [`stats`](Self::stats).
    ///
    /// Besides the aggregate request/batch/latency series, the registry
    /// carries the per-shard topology (`serve.shard{i}.queue_depth`,
    /// `.requests`, `.batches`, `.latency_ns`, `.alive`), the tensor
    /// buffer-pool gauges (`serve.pool_high_water_bytes`,
    /// `serve.pool_hits`, `serve.pool_misses`), refreshed after every fused
    /// batch — a deployment watches `pool_misses` stay flat to confirm the
    /// hot path is allocation-free and `pool_high_water_bytes` for its
    /// steady-state scratch footprint — and the robustness counters
    /// (`serve.shed_overload`, `serve.shed_deadline`,
    /// `serve.batch_panics`), which a deployment alerts on: sheds mean
    /// sustained overload, panics mean a model or kernel bug being
    /// contained.
    ///
    /// Snapshot it for Prometheus/JSON exposition of the raw
    /// `serve.*` counters, gauges, and histograms:
    ///
    /// ```ignore
    /// println!("{}", server.metrics().snapshot().render_prometheus());
    /// ```
    pub fn metrics(&self) -> Arc<obs::Registry> {
        self.shared.stats.registry()
    }

    /// Number of scheduler shards this server runs.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Number of shards whose scheduler thread is still running its loop.
    pub fn shards_alive(&self) -> usize {
        self.shared.shards.iter().filter(|s| s.alive.load(Ordering::Relaxed)).count()
    }

    /// Whether any scheduler shard is still running (the `/healthz`
    /// liveness signal — the server is down only when *all* shards are).
    pub fn scheduler_alive(&self) -> bool {
        self.shards_alive() > 0
    }

    /// Spawns the telemetry HTTP server ([`lightts_obs::http`]) over this
    /// server's metrics registry, bound to `addr`.
    ///
    /// `GET /metrics` scrapes the per-server `serve.*` series (including
    /// the per-shard `serve.shard{i}.*` topology and the per-stage
    /// histograms with trace-id exemplars), `GET /healthz` reports process
    /// liveness *and* recovery state — the body carries
    /// `shards_alive`/`shards_total`/`restarts`/`shards_failed`/
    /// `last_restart_us`, the `status` string refines to `"recovering"`
    /// while a shard respawn is pending and `"degraded"` once any shard is
    /// permanently failed, and the HTTP status degrades to `503` only once
    /// **all** shards are dead — `GET /tracez` serves the recent-span
    /// ring, and `GET /profilez` the collapsed `LIGHTTS_PROF` call tree.
    /// The returned server stops when dropped — keep the handle alive
    /// alongside the [`Server`]:
    ///
    /// ```ignore
    /// let server = Server::start(registry, ServeConfig::default());
    /// let _telemetry = server.serve_telemetry("127.0.0.1:9464")?;
    /// ```
    pub fn serve_telemetry(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<obs::http::TelemetryServer> {
        let shared = Arc::clone(&self.shared);
        let detail = Arc::clone(&self.shared);
        let status = Arc::clone(&self.shared);
        obs::http::TelemetryBuilder::new(self.shared.stats.registry())
            .health(move || shared.shards.iter().any(|s| s.alive.load(Ordering::Relaxed)))
            .health_status(move || {
                let phase =
                    |p: u8| status.shards.iter().any(|s| s.phase.load(Ordering::Relaxed) == p);
                if phase(PHASE_FAILED) {
                    "degraded".to_string()
                } else if phase(PHASE_RESTARTING) {
                    "recovering".to_string()
                } else {
                    "ok".to_string()
                }
            })
            .health_detail(move || {
                let alive =
                    detail.shards.iter().filter(|s| s.alive.load(Ordering::Relaxed)).count();
                let stats = detail.stats.snapshot();
                vec![
                    ("shards_alive".to_string(), alive as i64),
                    ("shards_total".to_string(), detail.shards.len() as i64),
                    ("restarts".to_string(), stats.restarts.min(i64::MAX as u64) as i64),
                    ("shards_failed".to_string(), stats.shards_failed as i64),
                    (
                        "last_restart_us".to_string(),
                        detail.last_restart_us.load(Ordering::Relaxed).min(i64::MAX as u64) as i64,
                    ),
                ]
            })
            .spawn(addr)
    }

    /// Drains every accepted request, stops the shard threads, then
    /// retires any attached network front doors.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // 1. Retire the supervisor first so no respawn races the drain:
        //    dropping the death-notice sender ends its recv loop (any
        //    respawn already in flight finishes and its thread handle
        //    lands in `Shared::threads`, which step 3 joins).
        drop(self.shared.supervisor_tx.lock().unwrap_or_else(PoisonError::into_inner).take());
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
        // 2. Flag every shard for shutdown. New submissions fail with
        //    `ServeError::Shutdown` from here on (remote clients see a
        //    typed SHUTDOWN status frame, not a closed socket — the front
        //    doors are still up).
        for shard in &self.shared.shards {
            let mut st = lock_state(shard);
            st.shutdown = true;
            drop(st);
            shard.cv.notify_all();
        }
        // 3. Join the shard threads: the drain answers every request that
        //    was accepted before the flag flipped.
        let handles: Vec<JoinHandle<()>> = {
            let mut threads = self.shared.threads.lock().unwrap_or_else(PoisonError::into_inner);
            threads.iter_mut().filter_map(Option::take).collect()
        };
        for t in handles {
            let _ = t.join();
        }
        // 4. Only now retire the front doors: connection writers flush
        //    whatever replies the drain produced before the sockets close.
        let doors: Vec<_> = {
            let mut guard = self.doors.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for d in doors {
            d.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ServerHandle {
    /// Enqueues one sample (length `in_dims · in_len` of the named model)
    /// and returns a [`Pending`] redeemable for its probability row. The
    /// request is routed by its freshly minted trace id; to control the
    /// route (e.g. to replay a remote request id) use
    /// [`submit_keyed`](Self::submit_keyed).
    ///
    /// Admission control happens here: unknown models, wrong shapes, and
    /// non-finite values are rejected with typed errors before touching
    /// the queue, and a replica queue already holding
    /// [`max_queue`](ServeConfig::max_queue) requests sheds the submission
    /// with [`ServeError::Overloaded`].
    pub fn submit(&self, model: &str, input: Vec<f32>) -> Result<Pending> {
        self.submit_inner(model, input, None, None)
    }

    /// Like [`submit`](Self::submit), with a relative deadline: if the
    /// prediction has not *started* computing within `deadline`, the
    /// scheduler sheds the request and replies
    /// [`ServeError::DeadlineExceeded`] instead of spending a forward pass
    /// on an answer nobody is waiting for.
    pub fn submit_with_deadline(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Duration,
    ) -> Result<Pending> {
        let dl = Instant::now() + deadline;
        self.submit_inner(model, input, Some(dl), None)
    }

    /// Enqueues one sample routed by an explicit request id (the network
    /// front door's path: the client-supplied wire id picks the replica,
    /// so a retried id deterministically lands on the same shard), with an
    /// optional relative deadline.
    pub fn submit_keyed(
        &self,
        model: &str,
        input: Vec<f32>,
        request_id: u64,
        deadline: Option<Duration>,
    ) -> Result<Pending> {
        let dl = deadline.map(|d| Instant::now() + d);
        self.submit_inner(model, input, dl, Some(request_id))
    }

    /// Which shard a request id routes to for `model` (`None` for an
    /// unknown model). Pure in the id: the same id always reports — and
    /// gets — the same shard.
    pub fn route_of(&self, model: &str, request_id: u64) -> Option<usize> {
        let mi = self.shared.models.iter().position(|m| m.name == model)?;
        let routes = &self.shared.models[mi].routes;
        Some(routes[route_replica(request_id, routes.len())].0)
    }

    fn submit_inner(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Option<Instant>,
        route_key: Option<u64>,
    ) -> Result<Pending> {
        let mi = self
            .shared
            .models
            .iter()
            .position(|m| m.name == model)
            .ok_or_else(|| ServeError::UnknownModel { name: model.to_string() })?;
        let expect = self.shared.models[mi].sample_len;
        if input.len() != expect {
            return Err(ServeError::BadRequest {
                what: format!(
                    "model {model:?} expects {expect} scalars per sample, got {}",
                    input.len()
                ),
            });
        }
        if let Some(index) = input.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::NonFiniteInput { index });
        }
        // Circuit breaker: a model whose forwards keep failing sheds at
        // admission, before any routing or queueing.
        if !self.shared.breakers[mi].admit(elapsed_us(&self.shared)) {
            self.shared.stats.shed_circuit();
            return Err(ServeError::CircuitOpen { model: model.to_string() });
        }
        let trace = TraceCtx::mint();
        let key = route_key.unwrap_or(trace.trace_id);
        let routes = &self.shared.models[mi].routes;
        let primary = routes[route_replica(key, routes.len())].0;
        // Replicas additionally masked out after the shard lock showed them
        // dead (the phase flag can lag the death by a beat).
        let mut seen_dead = vec![false; routes.len()];
        let (tx, rx) = mpsc::channel();
        loop {
            // Liveness-masked route: on a fully-live server this picks
            // exactly what `route_replica` picks; with dead/restarting/
            // failed replicas masked out, the same id still deterministically
            // picks the same surviving sibling.
            let live: Vec<bool> = routes
                .iter()
                .enumerate()
                .map(|(k, &(s, _))| !seen_dead[k] && self.shared.shards[s].routable())
                .collect();
            let Some(k) = route_replica_masked(key, &live) else {
                // Every replica of this model is down: fail fast, naming
                // the primary route the caller would have used.
                self.shared.breakers[mi].probe_aborted(elapsed_us(&self.shared));
                return Err(ServeError::SchedulerDied { shard: Some(primary) });
            };
            let (si, slot) = routes[k];
            let shard = &self.shared.shards[si];
            {
                let mut st = lock_state(shard);
                if st.shutdown {
                    return Err(ServeError::Shutdown);
                }
                if st.dead {
                    // Died since the mask was built: mask it and re-route.
                    drop(st);
                    seen_dead[k] = true;
                    continue;
                }
                if st.queues[slot].len() >= self.shared.cfg.max_queue {
                    drop(st);
                    self.shared.stats.shed_overload();
                    // No overload spill to siblings: admission stays
                    // replica-local (the admission proptest pins this).
                    self.shared.breakers[mi].probe_aborted(elapsed_us(&self.shared));
                    return Err(ServeError::Overloaded {
                        model: model.to_string(),
                        max_queue: self.shared.cfg.max_queue,
                    });
                }
                st.queues[slot].push_back(Request { input, trace, deadline, tx });
            }
            if si != primary {
                self.shared.stats.reroute();
            }
            self.shared.stats.enqueued(si);
            shard.cv.notify_all();
            return Ok(Pending { rx, shard: si });
        }
    }

    /// Submits one sample and blocks for its probability row.
    pub fn predict(&self, model: &str, input: Vec<f32>) -> Result<Vec<f32>> {
        self.submit(model, input)?.wait()
    }

    /// Like [`predict`](Self::predict), retrying retryable failures
    /// ([`ServeError::is_retryable`]: overload and dead-shard errors)
    /// under `policy`, within an optional overall deadline.
    ///
    /// One request id is minted up front and reused across every attempt,
    /// so all attempts route identically: while the primary shard is down
    /// the liveness mask sends the retry to the same deterministic
    /// surviving sibling, and once the supervisor respawns the primary the
    /// retry lands back on it. Backoffs come from
    /// [`RetryPolicy::backoff`] — exponential, capped, deterministically
    /// jittered by the id.
    ///
    /// The deadline is a hard budget over *all* attempts: each submission
    /// and wait inherits only the remaining slice, and a backoff sleep
    /// that would cross the deadline is never taken — the last error
    /// returns instead. [`ServeError::DeadlineExceeded`] itself is not
    /// retryable.
    pub fn predict_with_retry(
        &self,
        model: &str,
        input: &[f32],
        policy: RetryPolicy,
        deadline: Option<Duration>,
    ) -> Result<Vec<f32>> {
        let key = TraceCtx::mint().trace_id;
        let overall = deadline.map(|d| Instant::now() + d);
        let mut last: Option<ServeError> = None;
        for attempt in 1..=policy.attempts() {
            let left = match overall {
                Some(dl) => {
                    let left = dl.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(last.unwrap_or(ServeError::DeadlineExceeded));
                    }
                    Some(left)
                }
                None => None,
            };
            let outcome =
                self.submit_keyed(model, input.to_vec(), key, left).and_then(|p| match left {
                    Some(l) => p.wait_timeout(l),
                    None => p.wait(),
                });
            match outcome {
                Ok(row) => return Ok(row),
                Err(e) if e.is_retryable() && attempt < policy.attempts() => {
                    let sleep = policy.backoff(attempt, key);
                    if let Some(dl) = overall {
                        if Instant::now() + sleep >= dl {
                            return Err(e);
                        }
                    }
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ServeError::DeadlineExceeded))
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }
}

/// Picks shard `si`'s next batch to run, blocking until one is ready.
///
/// A slot is *ready* when its queue holds `max_batch` requests, when its
/// oldest request has waited `max_wait`, or when the server is shutting
/// down (drain). Returns `None` once shut down with all queues empty.
fn next_batch(shared: &Shared, si: usize) -> Option<(usize, Vec<Request>)> {
    let cfg = shared.cfg;
    let shard = &shared.shards[si];
    let mut st = lock_state(shard);
    loop {
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        let mut pick = None;
        for (i, q) in st.queues.iter().enumerate() {
            if let Some(front) = q.front() {
                let deadline = front.trace.anchor() + cfg.max_wait;
                if st.shutdown || q.len() >= cfg.max_batch || now >= deadline {
                    pick = Some(i);
                    break;
                }
                earliest = Some(earliest.map_or(deadline, |e| e.min(deadline)));
            }
        }
        if let Some(i) = pick {
            let q = &mut st.queues[i];
            let n = q.len().min(cfg.max_batch);
            shared.stats.dequeued(si, n);
            return Some((i, q.drain(..n).collect()));
        }
        if st.shutdown {
            return None;
        }
        st = match earliest {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                shard.cv.wait_timeout(st, wait).unwrap_or_else(PoisonError::into_inner).0
            }
            None => shard.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
        };
    }
}

/// Spawns shard `si`'s scheduler thread over its plan clones — used both
/// at [`Server::start`] and by the supervisor when it respawns a dead
/// shard.
pub(crate) fn spawn_shard(shared: &Arc<Shared>, si: usize, plans: Vec<AnyPlan>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("lightts-serve-{si}"))
        .spawn(move || shard_scheduler(&shared, si, plans))
        .expect("spawn scheduler shard thread")
}

/// One shard's scheduler loop: owns clones of the plans placed on it plus
/// their scratch buffers.
///
/// Failure containment happens here, shard-locally. Requests whose
/// deadline has already passed are shed *before* the forward pass (their
/// compute would be wasted). The fused forward runs under `catch_unwind`:
/// a panic — from a kernel bug, a poisoned model, or the `serve.batch`
/// failpoint — fails only that batch's requests with
/// [`ServeError::Inference`], and the loop continues (the model's circuit
/// breaker counts the failure). A panic escaping the loop *itself* (the
/// `serve.shard` failpoint simulates one) kills only this shard: the drop
/// guard drains its queues with [`ServeError::SchedulerDied`] naming the
/// shard, flips its routing phase to restarting, and notifies the
/// supervisor — sibling shards keep serving untouched while the respawn
/// happens.
fn shard_scheduler(shared: &Shared, si: usize, mut plans: Vec<AnyPlan>) {
    /// Marks the shard dead when the loop exits — including via a panic
    /// escaping the loop itself (plan forwards are caught below, but the
    /// guard makes `/healthz` truthful against any exit path). On an
    /// *unclean* exit it also drains the shard's queues, answering each
    /// stranded request with a shard-tagged `SchedulerDied` instead of
    /// leaving its caller blocked forever, and sends the shard's index to
    /// the supervisor for respawn.
    struct AliveGuard<'a> {
        shared: &'a Shared,
        si: usize,
    }
    impl Drop for AliveGuard<'_> {
        fn drop(&mut self) {
            let shard = &self.shared.shards[self.si];
            let mut st = lock_state(shard);
            let clean = st.shutdown;
            st.dead = !clean;
            if !clean {
                // Mask the shard out of routing while `st` is still held:
                // a submit observing `dead == false` under this lock must
                // also have seen a live phase.
                shard.phase.store(PHASE_RESTARTING, Ordering::Relaxed);
            }
            let mut drained = 0usize;
            if !clean {
                let now_us = elapsed_us(self.shared);
                for (slot, q) in st.queues.iter_mut().enumerate() {
                    let mi = shard.slot_models[slot];
                    while let Some(r) = q.pop_front() {
                        // A drained request may have been a breaker's
                        // half-open probe; make sure the breaker reopens
                        // rather than wedging half-open.
                        self.shared.breakers[mi].probe_aborted(now_us);
                        let _ = r.tx.send(Err(ServeError::SchedulerDied { shard: Some(self.si) }));
                        drained += 1;
                    }
                }
            }
            drop(st);
            if drained > 0 {
                self.shared.stats.dequeued(self.si, drained);
                for _ in 0..drained {
                    self.shared.stats.record_error();
                }
            }
            if !clean {
                obs::event!("serve.shard.dead", { shard: self.si, drained: drained });
            }
            self.shared.stats.shard_dead(self.si);
            shard.alive.store(false, Ordering::Relaxed);
            if !clean {
                // Last: hand the corpse to the supervisor. At shutdown the
                // sender is already gone (or the send fails) — both mean
                // "no respawn", which is what shutdown wants.
                let tx = self
                    .shared
                    .supervisor_tx
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                if let Some(tx) = tx {
                    let _ = tx.send(self.si);
                }
            }
        }
    }
    let _alive = AliveGuard { shared, si };
    let mut inputs: Vec<f32> = Vec::new();
    let mut probs: Vec<f32> = Vec::new();
    while let Some((slot, batch)) = next_batch(shared, si) {
        // The shard-death failpoint sits OUTSIDE the catch_unwind below:
        // arming `serve.shard` kills this shard thread outright (either
        // action), exercising the sibling-isolation contract the chaos
        // test checks.
        if let Err(what) = obs::failpoint::hit("serve.shard") {
            panic!("failpoint serve.shard: {what}");
        }
        // Shed expired requests pre-inference.
        let now = Instant::now();
        let mi = shared.shards[si].slot_models[slot];
        let mut live = Vec::with_capacity(batch.len());
        for r in batch {
            if r.deadline.is_some_and(|d| now >= d) {
                // Counter before send: a caller whose `wait` just returned
                // must never read a stale counter. A shed request may have
                // been the model's half-open probe — reopen rather than
                // wedge the breaker.
                shared.breakers[mi].probe_aborted(elapsed_us(shared));
                shared.stats.shed_deadline();
                let _ = r.tx.send(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(r);
            }
        }
        if live.is_empty() {
            continue;
        }
        let batch = live;
        let plan = &mut plans[slot];
        let kind = plan.kind();
        let nc = plan.num_classes();
        // Stage 1: queue wait ends (and fusion starts) here.
        let fuse_start = Instant::now();
        for r in &batch {
            shared.stats.record_queue_wait(r.trace.since_submit(fuse_start), r.trace.trace_id);
        }
        inputs.clear();
        for r in &batch {
            inputs.extend_from_slice(&r.input);
        }
        // Stage 2: fusion ends, the forward pass starts.
        let t0 = Instant::now();
        let fuse = t0.duration_since(fuse_start);
        shared.stats.record_fuse(fuse, batch[0].trace.trace_id);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _prof = obs::prof::scope("serve.forward");
            obs::failpoint::hit("serve.batch").map_err(|what| ServeError::Inference { what })?;
            plan.predict_proba_into(&inputs, batch.len(), &mut probs).map_err(ServeError::Model)
        }));
        let service = t0.elapsed();
        let result = result.unwrap_or_else(|payload| {
            shared.stats.batch_panic();
            let what = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("batch forward panicked");
            Err(ServeError::Inference { what: format!("batch forward panicked: {what}") })
        });
        match result {
            Ok(()) => {
                // Counters before sends: a caller whose `wait` just returned
                // must never read stale stats.
                shared.breakers[mi].record_success();
                let done = Instant::now();
                shared.stats.record_batch(si, batch.len(), service);
                shared.stats.record_plan_requests(kind, batch.len());
                shared.stats.record_forward(service, batch[0].trace.trace_id);
                emit_shard_batch_span(shared, si, mi, &batch[0], batch.len(), fuse_start, done);
                for (bi, r) in batch.iter().enumerate() {
                    let row = probs[bi * nc..(bi + 1) * nc].to_vec();
                    shared.stats.record_latency(si, done.duration_since(r.trace.anchor()));
                    let reply_start = Instant::now();
                    let _ = r.tx.send(Ok(row));
                    let reply_end = Instant::now();
                    shared
                        .stats
                        .record_reply(reply_end.duration_since(reply_start), r.trace.trace_id);
                    emit_request_spans(
                        shared,
                        si,
                        mi,
                        r,
                        batch.len(),
                        Stages {
                            fuse_start,
                            forward_start: t0,
                            forward_end: done,
                            reply_start,
                            reply_end,
                        },
                        "ok",
                    );
                }
                obs::event!("serve.batch", {
                    model: shared.models[mi].name.as_str(),
                    plan: kind.name(),
                    shard: si,
                    batch: batch.len(),
                    service_us: service.as_secs_f64() * 1e6,
                });
            }
            Err(e) => {
                // An `Inference`-class outcome (contained panic or model
                // error): one failed batch = one breaker failure,
                // regardless of how many requests rode in it.
                if shared.breakers[mi].record_failure(elapsed_us(shared)) {
                    obs::event!("serve.circuit_open", {
                        model: shared.models[mi].name.as_str(),
                        shard: si,
                    });
                }
                let done = Instant::now();
                emit_shard_batch_span(shared, si, mi, &batch[0], batch.len(), fuse_start, done);
                for r in &batch {
                    shared.stats.record_error();
                    let reply_start = Instant::now();
                    let _ = r.tx.send(Err(e.clone()));
                    let reply_end = Instant::now();
                    emit_request_spans(
                        shared,
                        si,
                        mi,
                        r,
                        batch.len(),
                        Stages {
                            fuse_start,
                            forward_start: t0,
                            forward_end: done,
                            reply_start,
                            reply_end,
                        },
                        "error",
                    );
                }
                obs::event!("serve.batch_failed", {
                    model: shared.models[mi].name.as_str(),
                    shard: si,
                    batch: batch.len(),
                    error: e.to_string(),
                });
            }
        }
    }
}

/// The batch's stage boundary instants, shared by every member request.
#[derive(Clone, Copy)]
struct Stages {
    fuse_start: Instant,
    forward_start: Instant,
    forward_end: Instant,
    reply_start: Instant,
    reply_end: Instant,
}

/// Emits the per-batch `serve.shard.batch` span: which shard fused and
/// ran this batch, carrying the first member request's trace id so the
/// span links into that request's trace (its `[fuse, forward_end]` window
/// nests inside the member's root window, satisfying
/// `validate_trace_linkage`).
fn emit_shard_batch_span(
    shared: &Shared,
    si: usize,
    mi: usize,
    first: &Request,
    batch_len: usize,
    fuse_start: Instant,
    forward_end: Instant,
) {
    if !obs::enabled() {
        return;
    }
    obs::emit_span_at(
        "serve.shard.batch",
        vec![
            ("trace_id", first.trace.trace_id.into()),
            ("shard", si.into()),
            ("model", shared.models[mi].name.as_str().into()),
            ("batch", batch_len.into()),
        ],
        first.trace.ts_us_at(forward_end),
        forward_end.duration_since(fuse_start).as_secs_f64() * 1e6,
    );
}

/// Emits one request's stage spans plus its `serve.request` root span.
///
/// Every timestamp is derived from the request's own [`TraceCtx`] anchor
/// ([`TraceCtx::ts_us_at`]), so the stages nest *exactly* inside the root's
/// `[submit, reply_end]` window — the invariant
/// `lightts_obs::jsonl::validate_trace_linkage` checks. No-op (one relaxed
/// atomic load) unless span capture is on (`LIGHTTS_OBS` sink or the
/// telemetry `/tracez` ring).
fn emit_request_spans(
    shared: &Shared,
    si: usize,
    mi: usize,
    r: &Request,
    batch_len: usize,
    st: Stages,
    outcome: &str,
) {
    if !obs::enabled() {
        return;
    }
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let stage = |path: &str, end: Instant, dur: Duration| {
        obs::emit_span_at(
            path,
            vec![("trace_id", r.trace.trace_id.into())],
            r.trace.ts_us_at(end),
            us(dur),
        );
    };
    stage("serve.queue_wait", st.fuse_start, r.trace.since_submit(st.fuse_start));
    stage("serve.fuse", st.forward_start, st.forward_start.duration_since(st.fuse_start));
    stage("serve.forward", st.forward_end, st.forward_end.duration_since(st.forward_start));
    stage("serve.reply", st.reply_end, st.reply_end.duration_since(st.reply_start));
    obs::emit_span_at(
        "serve.request",
        vec![
            ("trace_id", r.trace.trace_id.into()),
            ("model", shared.models[mi].name.as_str().into()),
            ("shard", si.into()),
            ("batch", batch_len.into()),
            ("outcome", outcome.into()),
        ],
        r.trace.ts_us_at(st.reply_end),
        us(r.trace.since_submit(st.reply_end)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_reply_channel_is_scheduler_death_naming_the_shard() {
        assert_eq!(
            Pending::disconnected(2).wait(),
            Err(ServeError::SchedulerDied { shard: Some(2) })
        );
        assert_eq!(
            Pending::disconnected(5).wait_timeout(Duration::from_millis(1)),
            Err(ServeError::SchedulerDied { shard: Some(5) })
        );
    }

    #[test]
    fn wait_timeout_times_out_when_no_reply_arrives() {
        let (tx, rx) = mpsc::channel();
        let p = Pending { rx, shard: 0 };
        assert_eq!(p.wait_timeout(Duration::from_millis(5)), Err(ServeError::DeadlineExceeded));
        drop(tx);
    }

    #[test]
    fn masked_routing_matches_unmasked_when_fully_live_and_is_total() {
        for n in [1usize, 2, 3, 4, 7] {
            let live = vec![true; n];
            for id in [0u64, 1, 42, u64::MAX, 0x9E37_79B9] {
                // All-live masked routing IS route_replica: masking changes
                // nothing on a healthy server.
                assert_eq!(route_replica_masked(id, &live), Some(route_replica(id, n)));
            }
        }
        // No live replica: no route.
        assert_eq!(route_replica_masked(7, &[false, false]), None);
        assert_eq!(route_replica_masked(7, &[]), None);
    }

    #[test]
    fn masked_routing_is_deterministic_and_lands_only_on_live_replicas() {
        let masks: [&[bool]; 4] = [
            &[true, false, true],
            &[false, true, false],
            &[true, true, false],
            &[false, false, true],
        ];
        for mask in masks {
            for id in 0u64..64 {
                let got = route_replica_masked(id, mask).expect("some replica is live");
                assert!(mask[got], "routed to a masked-out replica");
                assert_eq!(route_replica_masked(id, mask), Some(got), "non-deterministic");
            }
        }
        // Single survivor: every id routes to it.
        for id in 0u64..64 {
            assert_eq!(route_replica_masked(id, &[false, true, false]), Some(1));
        }
    }

    #[test]
    fn restart_budget_resolution_prefers_config() {
        assert_eq!(resolve_restart_budget(Some(7)), 7);
        assert_eq!(resolve_restart_budget(Some(0)), 0);
        // No config, no env (tests don't set it): the default.
        if std::env::var("LIGHTTS_SERVE_RESTARTS").is_err() {
            assert_eq!(resolve_restart_budget(None), DEFAULT_RESTART_BUDGET);
        }
    }

    #[test]
    fn route_replica_is_total_and_deterministic() {
        for replicas in [1usize, 2, 3, 4, 7] {
            for id in [0u64, 1, 42, u64::MAX, 0x9E37_79B9] {
                let r = route_replica(id, replicas);
                assert!(r < replicas);
                assert_eq!(r, route_replica(id, replicas));
            }
        }
        // Degenerate replica counts stay total.
        assert_eq!(route_replica(123, 0), 0);
    }

    #[test]
    fn placement_round_robins_replicas() {
        let (slots, routes) = placement(3, 4, 2);
        // Model m sits on shards (m + 0) % 4 and (m + 1) % 4.
        assert_eq!(routes[0].iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(routes[1].iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(routes[2].iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![2, 3]);
        // Slots are consistent with routes.
        for (m, route) in routes.iter().enumerate() {
            for &(s, slot) in route {
                assert_eq!(slots[s][slot], m);
            }
        }
        // Replicate-everywhere covers every shard exactly once per model.
        let (slots, routes) = placement(2, 3, 3);
        for route in &routes {
            let mut shards: Vec<usize> = route.iter().map(|&(s, _)| s).collect();
            shards.sort_unstable();
            assert_eq!(shards, vec![0, 1, 2]);
        }
        assert!(slots.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn shard_resolution_clamps() {
        // Explicit config wins and is not clamped to the model count.
        assert_eq!(resolve_shards(4, 1), 4);
        assert_eq!(resolve_shards(1, 100), 1);
        assert_eq!(resolve_shards(MAX_SHARDS + 7, 1), MAX_SHARDS);
    }
}
