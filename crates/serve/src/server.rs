//! The serving scheduler: request queues with dynamic micro-batching.

use crate::registry::ModelRegistry;
use crate::stats::{ServeStats, StatsInner};
use crate::{Result, ServeError};
use lightts_models::inference::InferencePlan;
use lightts_obs as obs;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Fuse at most this many requests into one forward pass.
    pub max_batch: usize,
    /// Run a partial batch once its oldest request has waited this long.
    pub max_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 16, max_wait: Duration::from_millis(1) }
    }
}

/// One queued prediction request.
struct Request {
    input: Vec<f32>,
    enqueued: Instant,
    tx: mpsc::Sender<Result<Vec<f32>>>,
}

/// Submit-side metadata for one registered model.
#[derive(Debug)]
struct ModelInfo {
    name: String,
    sample_len: usize,
}

/// Queue state guarded by the scheduler mutex.
struct State {
    /// One FIFO per registered model, indexed like `Shared::models`.
    queues: Vec<VecDeque<Request>>,
    shutdown: bool,
}

/// State shared between caller handles and the scheduler thread.
struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    models: Vec<ModelInfo>,
    stats: StatsInner,
    cfg: ServeConfig,
}

/// A running serving instance.
///
/// Owns the scheduler thread; dropping (or calling
/// [`shutdown`](Self::shutdown)) drains the queues — every already-accepted
/// request is still answered — then stops the thread.
pub struct Server {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

/// A cloneable, `Send` handle for submitting requests to a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

/// An in-flight prediction: redeem with [`wait`](Self::wait).
///
/// Submitting many [`Pending`]s before waiting on any is how a
/// single-threaded client lets the scheduler form large fused batches.
pub struct Pending {
    rx: mpsc::Receiver<Result<Vec<f32>>>,
}

impl Pending {
    /// Blocks until the prediction is available.
    ///
    /// Returns the class-probability row for the submitted sample.
    pub fn wait(self) -> Result<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

impl Server {
    /// Starts a server over the given registry with the given batching
    /// policy (a `max_batch` of 0 is treated as 1).
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Server {
        let cfg = ServeConfig { max_batch: cfg.max_batch.max(1), ..cfg };
        let mut models = Vec::with_capacity(registry.entries.len());
        let mut plans: Vec<InferencePlan> = Vec::with_capacity(registry.entries.len());
        for e in registry.entries {
            models.push(ModelInfo { name: e.name, sample_len: e.plan.sample_len() });
            plans.push(e.plan);
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..models.len()).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            models,
            stats: StatsInner::new(),
            cfg,
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lightts-serve".into())
                .spawn(move || scheduler(&shared, plans))
                .expect("spawn scheduler thread")
        };
        Server { shared, thread: Some(thread) }
    }

    /// A handle for submitting requests (cloneable, usable from any
    /// thread).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// The per-server metrics registry backing [`stats`](Self::stats).
    ///
    /// Besides the request/batch/latency series, the registry carries the
    /// tensor buffer-pool gauges (`serve.pool_high_water_bytes`,
    /// `serve.pool_hits`, `serve.pool_misses`), refreshed after every fused
    /// batch — a deployment watches `pool_misses` stay flat to confirm the
    /// hot path is allocation-free and `pool_high_water_bytes` for its
    /// steady-state scratch footprint.
    ///
    /// Snapshot it for Prometheus/JSON exposition of the raw
    /// `serve.*` counters, gauges, and histograms:
    ///
    /// ```ignore
    /// println!("{}", server.metrics().snapshot().render_prometheus());
    /// ```
    pub fn metrics(&self) -> Arc<obs::Registry> {
        self.shared.stats.registry()
    }

    /// Drains every accepted request, then stops the scheduler thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ServerHandle {
    /// Enqueues one sample (length `in_dims · in_len` of the named model)
    /// and returns a [`Pending`] redeemable for its probability row.
    pub fn submit(&self, model: &str, input: Vec<f32>) -> Result<Pending> {
        let mi = self
            .shared
            .models
            .iter()
            .position(|m| m.name == model)
            .ok_or_else(|| ServeError::UnknownModel { name: model.to_string() })?;
        let expect = self.shared.models[mi].sample_len;
        if input.len() != expect {
            return Err(ServeError::BadRequest {
                what: format!(
                    "model {model:?} expects {expect} scalars per sample, got {}",
                    input.len()
                ),
            });
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return Err(ServeError::Shutdown);
            }
            st.queues[mi].push_back(Request { input, enqueued: Instant::now(), tx });
        }
        self.shared.stats.enqueued();
        self.shared.cv.notify_all();
        Ok(Pending { rx })
    }

    /// Submits one sample and blocks for its probability row.
    pub fn predict(&self, model: &str, input: Vec<f32>) -> Result<Vec<f32>> {
        self.submit(model, input)?.wait()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }
}

/// Picks the next batch to run, blocking until one is ready.
///
/// A model is *ready* when its queue holds `max_batch` requests, when its
/// oldest request has waited `max_wait`, or when the server is shutting
/// down (drain). Returns `None` once shut down with all queues empty.
fn next_batch(shared: &Shared) -> Option<(usize, Vec<Request>)> {
    let cfg = shared.cfg;
    let mut st = shared.state.lock().unwrap();
    loop {
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        let mut pick = None;
        for (i, q) in st.queues.iter().enumerate() {
            if let Some(front) = q.front() {
                let deadline = front.enqueued + cfg.max_wait;
                if st.shutdown || q.len() >= cfg.max_batch || now >= deadline {
                    pick = Some(i);
                    break;
                }
                earliest = Some(earliest.map_or(deadline, |e| e.min(deadline)));
            }
        }
        if let Some(i) = pick {
            let q = &mut st.queues[i];
            let n = q.len().min(cfg.max_batch);
            shared.stats.dequeued(n);
            return Some((i, q.drain(..n).collect()));
        }
        if st.shutdown {
            return None;
        }
        st = match earliest {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                shared.cv.wait_timeout(st, wait).unwrap().0
            }
            None => shared.cv.wait(st).unwrap(),
        };
    }
}

/// The scheduler loop: owns every compiled plan and its scratch buffers.
fn scheduler(shared: &Shared, mut plans: Vec<InferencePlan>) {
    let mut inputs: Vec<f32> = Vec::new();
    let mut probs: Vec<f32> = Vec::new();
    while let Some((mi, batch)) = next_batch(shared) {
        let plan = &mut plans[mi];
        let nc = plan.num_classes();
        inputs.clear();
        for r in &batch {
            inputs.extend_from_slice(&r.input);
        }
        let t0 = Instant::now();
        let result = plan.predict_proba_into(&inputs, batch.len(), &mut probs);
        let service = t0.elapsed();
        match result {
            Ok(()) => {
                let done = Instant::now();
                for (bi, r) in batch.iter().enumerate() {
                    let row = probs[bi * nc..(bi + 1) * nc].to_vec();
                    let _ = r.tx.send(Ok(row));
                    shared.stats.record_latency(done.duration_since(r.enqueued));
                }
                shared.stats.record_batch(batch.len(), service);
                obs::event!("serve.batch", {
                    model: shared.models[mi].name.as_str(),
                    batch: batch.len(),
                    service_us: service.as_secs_f64() * 1e6,
                });
            }
            Err(e) => {
                for r in &batch {
                    let _ = r.tx.send(Err(ServeError::Model(e.clone())));
                    shared.stats.record_error();
                }
            }
        }
    }
}
