//! The serving scheduler: request queues with dynamic micro-batching,
//! admission control, deadlines, and panic isolation.

use crate::registry::{AnyPlan, ModelRegistry, PlanKind};
use crate::stats::{ServeStats, StatsInner};
use crate::{Result, ServeError};
use lightts_obs as obs;
use obs::TraceCtx;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching and admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Fuse at most this many requests into one forward pass.
    pub max_batch: usize,
    /// Run a partial batch once its oldest request has waited this long.
    pub max_wait: Duration,
    /// Admission control: at most this many requests may be queued per
    /// model; further submissions are shed with
    /// [`ServeError::Overloaded`] until the queue drains (a 0 is treated
    /// as 1). Bounding the queue keeps worst-case memory and queueing
    /// latency finite under overload — shedding early is cheaper than
    /// answering late.
    pub max_queue: usize,
    /// Which compiled plan kind [`ModelRegistry::for_config`] builds for
    /// models registered through it: the classic f32 plan (default) or the
    /// true-int8 plan (~4× smaller weights, integer conv/GEMM, parity-gated
    /// against f32). Per-batch execution is recorded in the
    /// `serve.plan_f32_requests` / `serve.plan_i8_requests` counters
    /// regardless of how the registry was built, so mixed registries stay
    /// observable.
    pub plan: PlanKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            max_queue: 1024,
            plan: PlanKind::F32,
        }
    }
}

/// One queued prediction request.
struct Request {
    input: Vec<f32>,
    /// Trace context minted at submission: the request's process-unique
    /// `trace_id` plus its submit timestamp in both clock domains. The
    /// monotonic anchor doubles as the enqueue instant for batching
    /// (`max_wait`) and latency accounting.
    trace: TraceCtx,
    /// Absolute deadline; the scheduler sheds the request (with
    /// [`ServeError::DeadlineExceeded`]) instead of running inference for
    /// it once this has passed.
    deadline: Option<Instant>,
    tx: mpsc::Sender<Result<Vec<f32>>>,
}

/// Submit-side metadata for one registered model.
#[derive(Debug)]
struct ModelInfo {
    name: String,
    sample_len: usize,
}

/// Queue state guarded by the scheduler mutex.
struct State {
    /// One FIFO per registered model, indexed like `Shared::models`.
    queues: Vec<VecDeque<Request>>,
    shutdown: bool,
}

/// State shared between caller handles and the scheduler thread.
struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    models: Vec<ModelInfo>,
    stats: StatsInner,
    cfg: ServeConfig,
    /// `true` while the scheduler thread is running its loop; flipped to
    /// `false` by a drop guard when the thread exits — cleanly (shutdown
    /// drain) or by a panic escaping the loop. `/healthz` reports this as
    /// `scheduler_alive`, so a scrape distinguishes "process up, scheduler
    /// dead" from healthy.
    scheduler_alive: AtomicBool,
}

/// Locks the scheduler state, recovering from mutex poisoning.
///
/// The queue invariants are simple enough (a `VecDeque` push/drain is
/// never observable half-done) that a panic elsewhere while the lock was
/// held cannot leave the state torn — so a poisoned mutex is recovered
/// with [`PoisonError::into_inner`] rather than cascading the panic into
/// every submitting thread and the scheduler.
fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running serving instance.
///
/// Owns the scheduler thread; dropping (or calling
/// [`shutdown`](Self::shutdown)) drains the queues — every already-accepted
/// request is still answered — then stops the thread.
pub struct Server {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

/// A cloneable, `Send` handle for submitting requests to a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

/// An in-flight prediction: redeem with [`wait`](Self::wait) or
/// [`wait_timeout`](Self::wait_timeout).
///
/// Submitting many [`Pending`]s before waiting on any is how a
/// single-threaded client lets the scheduler form large fused batches.
pub struct Pending {
    rx: mpsc::Receiver<Result<Vec<f32>>>,
}

impl Pending {
    /// Blocks until the prediction is available.
    ///
    /// Returns the class-probability row for the submitted sample. If the
    /// reply channel disconnects without an answer — the scheduler thread
    /// died — this is [`ServeError::SchedulerDied`], *not* a clean
    /// [`ServeError::Shutdown`] (shutdown drains and answers every
    /// accepted request).
    pub fn wait(self) -> Result<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::SchedulerDied))
    }

    /// Blocks for at most `timeout` for the prediction.
    ///
    /// [`ServeError::DeadlineExceeded`] if no reply arrived in time (the
    /// request may still be answered later; the reply is discarded),
    /// [`ServeError::SchedulerDied`] if the reply channel disconnected.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<f32>> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::SchedulerDied),
        }
    }

    #[cfg(test)]
    pub(crate) fn disconnected() -> Pending {
        let (_, rx) = mpsc::channel();
        Pending { rx }
    }
}

impl Server {
    /// Starts a server over the given registry with the given batching
    /// policy (a `max_batch` or `max_queue` of 0 is treated as 1).
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Server {
        let cfg =
            ServeConfig { max_batch: cfg.max_batch.max(1), max_queue: cfg.max_queue.max(1), ..cfg };
        let mut models = Vec::with_capacity(registry.entries.len());
        let mut plans: Vec<AnyPlan> = Vec::with_capacity(registry.entries.len());
        for e in registry.entries {
            models.push(ModelInfo { name: e.name, sample_len: e.plan.sample_len() });
            plans.push(e.plan);
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..models.len()).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            models,
            stats: StatsInner::new(),
            cfg,
            scheduler_alive: AtomicBool::new(true),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lightts-serve".into())
                .spawn(move || scheduler(&shared, plans))
                .expect("spawn scheduler thread")
        };
        Server { shared, thread: Some(thread) }
    }

    /// A handle for submitting requests (cloneable, usable from any
    /// thread).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// The per-server metrics registry backing [`stats`](Self::stats).
    ///
    /// Besides the request/batch/latency series, the registry carries the
    /// tensor buffer-pool gauges (`serve.pool_high_water_bytes`,
    /// `serve.pool_hits`, `serve.pool_misses`), refreshed after every fused
    /// batch — a deployment watches `pool_misses` stay flat to confirm the
    /// hot path is allocation-free and `pool_high_water_bytes` for its
    /// steady-state scratch footprint — and the robustness counters
    /// (`serve.shed_overload`, `serve.shed_deadline`,
    /// `serve.batch_panics`), which a deployment alerts on: sheds mean
    /// sustained overload, panics mean a model or kernel bug being
    /// contained.
    ///
    /// Snapshot it for Prometheus/JSON exposition of the raw
    /// `serve.*` counters, gauges, and histograms:
    ///
    /// ```ignore
    /// println!("{}", server.metrics().snapshot().render_prometheus());
    /// ```
    pub fn metrics(&self) -> Arc<obs::Registry> {
        self.shared.stats.registry()
    }

    /// Whether the scheduler thread is still running its loop (the
    /// `/healthz` liveness signal).
    pub fn scheduler_alive(&self) -> bool {
        self.shared.scheduler_alive.load(Ordering::Relaxed)
    }

    /// Spawns the telemetry HTTP server ([`lightts_obs::http`]) over this
    /// server's metrics registry, bound to `addr`.
    ///
    /// `GET /metrics` scrapes the per-server `serve.*` series (including
    /// the per-stage histograms with trace-id exemplars), `GET /healthz`
    /// reports process liveness *and* [`scheduler_alive`](Self::scheduler_alive)
    /// (answering `503` once the scheduler thread has exited), `GET /tracez`
    /// serves the recent-span ring, and `GET /profilez` the collapsed
    /// `LIGHTTS_PROF` call tree. The returned server stops when dropped —
    /// keep the handle alive alongside the [`Server`]:
    ///
    /// ```ignore
    /// let server = Server::start(registry, ServeConfig::default());
    /// let _telemetry = server.serve_telemetry("127.0.0.1:9464")?;
    /// ```
    pub fn serve_telemetry(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<obs::http::TelemetryServer> {
        let shared = Arc::clone(&self.shared);
        obs::http::TelemetryBuilder::new(self.shared.stats.registry())
            .health(move || shared.scheduler_alive.load(Ordering::Relaxed))
            .spawn(addr)
    }

    /// Drains every accepted request, then stops the scheduler thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ServerHandle {
    /// Enqueues one sample (length `in_dims · in_len` of the named model)
    /// and returns a [`Pending`] redeemable for its probability row.
    ///
    /// Admission control happens here: unknown models, wrong shapes, and
    /// non-finite values are rejected with typed errors before touching
    /// the queue, and a queue already holding
    /// [`max_queue`](ServeConfig::max_queue) requests sheds the submission
    /// with [`ServeError::Overloaded`].
    pub fn submit(&self, model: &str, input: Vec<f32>) -> Result<Pending> {
        self.submit_inner(model, input, None)
    }

    /// Like [`submit`](Self::submit), with a relative deadline: if the
    /// prediction has not *started* computing within `deadline`, the
    /// scheduler sheds the request and replies
    /// [`ServeError::DeadlineExceeded`] instead of spending a forward pass
    /// on an answer nobody is waiting for.
    pub fn submit_with_deadline(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Duration,
    ) -> Result<Pending> {
        let dl = Instant::now() + deadline;
        self.submit_inner(model, input, Some(dl))
    }

    fn submit_inner(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Option<Instant>,
    ) -> Result<Pending> {
        let mi = self
            .shared
            .models
            .iter()
            .position(|m| m.name == model)
            .ok_or_else(|| ServeError::UnknownModel { name: model.to_string() })?;
        let expect = self.shared.models[mi].sample_len;
        if input.len() != expect {
            return Err(ServeError::BadRequest {
                what: format!(
                    "model {model:?} expects {expect} scalars per sample, got {}",
                    input.len()
                ),
            });
        }
        if let Some(index) = input.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::NonFiniteInput { index });
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut st = lock_state(&self.shared);
            if st.shutdown {
                return Err(ServeError::Shutdown);
            }
            if st.queues[mi].len() >= self.shared.cfg.max_queue {
                drop(st);
                self.shared.stats.shed_overload();
                return Err(ServeError::Overloaded {
                    model: model.to_string(),
                    max_queue: self.shared.cfg.max_queue,
                });
            }
            st.queues[mi].push_back(Request { input, trace: TraceCtx::mint(), deadline, tx });
        }
        self.shared.stats.enqueued();
        self.shared.cv.notify_all();
        Ok(Pending { rx })
    }

    /// Submits one sample and blocks for its probability row.
    pub fn predict(&self, model: &str, input: Vec<f32>) -> Result<Vec<f32>> {
        self.submit(model, input)?.wait()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }
}

/// Picks the next batch to run, blocking until one is ready.
///
/// A model is *ready* when its queue holds `max_batch` requests, when its
/// oldest request has waited `max_wait`, or when the server is shutting
/// down (drain). Returns `None` once shut down with all queues empty.
fn next_batch(shared: &Shared) -> Option<(usize, Vec<Request>)> {
    let cfg = shared.cfg;
    let mut st = lock_state(shared);
    loop {
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        let mut pick = None;
        for (i, q) in st.queues.iter().enumerate() {
            if let Some(front) = q.front() {
                let deadline = front.trace.anchor() + cfg.max_wait;
                if st.shutdown || q.len() >= cfg.max_batch || now >= deadline {
                    pick = Some(i);
                    break;
                }
                earliest = Some(earliest.map_or(deadline, |e| e.min(deadline)));
            }
        }
        if let Some(i) = pick {
            let q = &mut st.queues[i];
            let n = q.len().min(cfg.max_batch);
            shared.stats.dequeued(n);
            return Some((i, q.drain(..n).collect()));
        }
        if st.shutdown {
            return None;
        }
        st = match earliest {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                shared.cv.wait_timeout(st, wait).unwrap_or_else(PoisonError::into_inner).0
            }
            None => shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
        };
    }
}

/// The scheduler loop: owns every compiled plan and its scratch buffers.
///
/// Failure containment happens here. Requests whose deadline has already
/// passed are shed *before* the forward pass (their compute would be
/// wasted). The fused forward runs under `catch_unwind`: a panic — from a
/// kernel bug, a poisoned model, or the `serve.batch` failpoint — fails
/// only that batch's requests with [`ServeError::Inference`], and the loop
/// continues, so one bad batch can never strand every other caller's
/// `Pending` forever.
fn scheduler(shared: &Shared, mut plans: Vec<AnyPlan>) {
    /// Flips `scheduler_alive` off when the loop exits — including via a
    /// panic escaping the loop itself (plan forwards are caught below, but
    /// the guard makes `/healthz` truthful against any exit path).
    struct AliveGuard<'a>(&'a Shared);
    impl Drop for AliveGuard<'_> {
        fn drop(&mut self) {
            self.0.scheduler_alive.store(false, Ordering::Relaxed);
        }
    }
    let _alive = AliveGuard(shared);
    let mut inputs: Vec<f32> = Vec::new();
    let mut probs: Vec<f32> = Vec::new();
    while let Some((mi, batch)) = next_batch(shared) {
        // Shed expired requests pre-inference.
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for r in batch {
            if r.deadline.is_some_and(|d| now >= d) {
                // Counter before send: a caller whose `wait` just returned
                // must never read a stale counter.
                shared.stats.shed_deadline();
                let _ = r.tx.send(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(r);
            }
        }
        if live.is_empty() {
            continue;
        }
        let batch = live;
        let plan = &mut plans[mi];
        let kind = plan.kind();
        let nc = plan.num_classes();
        // Stage 1: queue wait ends (and fusion starts) here.
        let fuse_start = Instant::now();
        for r in &batch {
            shared.stats.record_queue_wait(r.trace.since_submit(fuse_start), r.trace.trace_id);
        }
        inputs.clear();
        for r in &batch {
            inputs.extend_from_slice(&r.input);
        }
        // Stage 2: fusion ends, the forward pass starts.
        let t0 = Instant::now();
        let fuse = t0.duration_since(fuse_start);
        shared.stats.record_fuse(fuse, batch[0].trace.trace_id);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _prof = obs::prof::scope("serve.forward");
            obs::failpoint::hit("serve.batch").map_err(|what| ServeError::Inference { what })?;
            plan.predict_proba_into(&inputs, batch.len(), &mut probs).map_err(ServeError::Model)
        }));
        let service = t0.elapsed();
        let result = result.unwrap_or_else(|payload| {
            shared.stats.batch_panic();
            let what = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("batch forward panicked");
            Err(ServeError::Inference { what: format!("batch forward panicked: {what}") })
        });
        match result {
            Ok(()) => {
                // Counters before sends: a caller whose `wait` just returned
                // must never read stale stats.
                let done = Instant::now();
                shared.stats.record_batch(batch.len(), service);
                shared.stats.record_plan_requests(kind, batch.len());
                shared.stats.record_forward(service, batch[0].trace.trace_id);
                for (bi, r) in batch.iter().enumerate() {
                    let row = probs[bi * nc..(bi + 1) * nc].to_vec();
                    shared.stats.record_latency(done.duration_since(r.trace.anchor()));
                    let reply_start = Instant::now();
                    let _ = r.tx.send(Ok(row));
                    let reply_end = Instant::now();
                    shared
                        .stats
                        .record_reply(reply_end.duration_since(reply_start), r.trace.trace_id);
                    emit_request_spans(
                        shared,
                        mi,
                        r,
                        batch.len(),
                        Stages {
                            fuse_start,
                            forward_start: t0,
                            forward_end: done,
                            reply_start,
                            reply_end,
                        },
                        "ok",
                    );
                }
                obs::event!("serve.batch", {
                    model: shared.models[mi].name.as_str(),
                    plan: kind.name(),
                    batch: batch.len(),
                    service_us: service.as_secs_f64() * 1e6,
                });
            }
            Err(e) => {
                let done = Instant::now();
                for r in &batch {
                    shared.stats.record_error();
                    let reply_start = Instant::now();
                    let _ = r.tx.send(Err(e.clone()));
                    let reply_end = Instant::now();
                    emit_request_spans(
                        shared,
                        mi,
                        r,
                        batch.len(),
                        Stages {
                            fuse_start,
                            forward_start: t0,
                            forward_end: done,
                            reply_start,
                            reply_end,
                        },
                        "error",
                    );
                }
                obs::event!("serve.batch_failed", {
                    model: shared.models[mi].name.as_str(),
                    batch: batch.len(),
                    error: e.to_string(),
                });
            }
        }
    }
}

/// The batch's stage boundary instants, shared by every member request.
#[derive(Clone, Copy)]
struct Stages {
    fuse_start: Instant,
    forward_start: Instant,
    forward_end: Instant,
    reply_start: Instant,
    reply_end: Instant,
}

/// Emits one request's stage spans plus its `serve.request` root span.
///
/// Every timestamp is derived from the request's own [`TraceCtx`] anchor
/// ([`TraceCtx::ts_us_at`]), so the stages nest *exactly* inside the root's
/// `[submit, reply_end]` window — the invariant
/// `lightts_obs::jsonl::validate_trace_linkage` checks. No-op (one relaxed
/// atomic load) unless span capture is on (`LIGHTTS_OBS` sink or the
/// telemetry `/tracez` ring).
fn emit_request_spans(
    shared: &Shared,
    mi: usize,
    r: &Request,
    batch_len: usize,
    st: Stages,
    outcome: &str,
) {
    if !obs::enabled() {
        return;
    }
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let stage = |path: &str, end: Instant, dur: Duration| {
        obs::emit_span_at(
            path,
            vec![("trace_id", r.trace.trace_id.into())],
            r.trace.ts_us_at(end),
            us(dur),
        );
    };
    stage("serve.queue_wait", st.fuse_start, r.trace.since_submit(st.fuse_start));
    stage("serve.fuse", st.forward_start, st.forward_start.duration_since(st.fuse_start));
    stage("serve.forward", st.forward_end, st.forward_end.duration_since(st.forward_start));
    stage("serve.reply", st.reply_end, st.reply_end.duration_since(st.reply_start));
    obs::emit_span_at(
        "serve.request",
        vec![
            ("trace_id", r.trace.trace_id.into()),
            ("model", shared.models[mi].name.as_str().into()),
            ("batch", batch_len.into()),
            ("outcome", outcome.into()),
        ],
        r.trace.ts_us_at(st.reply_end),
        us(r.trace.since_submit(st.reply_end)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_reply_channel_is_scheduler_death_not_shutdown() {
        assert_eq!(Pending::disconnected().wait(), Err(ServeError::SchedulerDied));
        assert_eq!(
            Pending::disconnected().wait_timeout(Duration::from_millis(1)),
            Err(ServeError::SchedulerDied)
        );
    }

    #[test]
    fn wait_timeout_times_out_when_no_reply_arrives() {
        let (tx, rx) = mpsc::channel();
        let p = Pending { rx };
        assert_eq!(p.wait_timeout(Duration::from_millis(5)), Err(ServeError::DeadlineExceeded));
        drop(tx);
    }
}
