//! The serving scheduler: request queues with dynamic micro-batching,
//! admission control, deadlines, and panic isolation.

use crate::registry::{AnyPlan, ModelRegistry, PlanKind};
use crate::stats::{ServeStats, StatsInner};
use crate::{Result, ServeError};
use lightts_obs as obs;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching and admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Fuse at most this many requests into one forward pass.
    pub max_batch: usize,
    /// Run a partial batch once its oldest request has waited this long.
    pub max_wait: Duration,
    /// Admission control: at most this many requests may be queued per
    /// model; further submissions are shed with
    /// [`ServeError::Overloaded`] until the queue drains (a 0 is treated
    /// as 1). Bounding the queue keeps worst-case memory and queueing
    /// latency finite under overload — shedding early is cheaper than
    /// answering late.
    pub max_queue: usize,
    /// Which compiled plan kind [`ModelRegistry::for_config`] builds for
    /// models registered through it: the classic f32 plan (default) or the
    /// true-int8 plan (~4× smaller weights, integer conv/GEMM, parity-gated
    /// against f32). Per-batch execution is recorded in the
    /// `serve.plan_f32_requests` / `serve.plan_i8_requests` counters
    /// regardless of how the registry was built, so mixed registries stay
    /// observable.
    pub plan: PlanKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            max_queue: 1024,
            plan: PlanKind::F32,
        }
    }
}

/// One queued prediction request.
struct Request {
    input: Vec<f32>,
    enqueued: Instant,
    /// Absolute deadline; the scheduler sheds the request (with
    /// [`ServeError::DeadlineExceeded`]) instead of running inference for
    /// it once this has passed.
    deadline: Option<Instant>,
    tx: mpsc::Sender<Result<Vec<f32>>>,
}

/// Submit-side metadata for one registered model.
#[derive(Debug)]
struct ModelInfo {
    name: String,
    sample_len: usize,
}

/// Queue state guarded by the scheduler mutex.
struct State {
    /// One FIFO per registered model, indexed like `Shared::models`.
    queues: Vec<VecDeque<Request>>,
    shutdown: bool,
}

/// State shared between caller handles and the scheduler thread.
struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    models: Vec<ModelInfo>,
    stats: StatsInner,
    cfg: ServeConfig,
}

/// Locks the scheduler state, recovering from mutex poisoning.
///
/// The queue invariants are simple enough (a `VecDeque` push/drain is
/// never observable half-done) that a panic elsewhere while the lock was
/// held cannot leave the state torn — so a poisoned mutex is recovered
/// with [`PoisonError::into_inner`] rather than cascading the panic into
/// every submitting thread and the scheduler.
fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running serving instance.
///
/// Owns the scheduler thread; dropping (or calling
/// [`shutdown`](Self::shutdown)) drains the queues — every already-accepted
/// request is still answered — then stops the thread.
pub struct Server {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

/// A cloneable, `Send` handle for submitting requests to a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

/// An in-flight prediction: redeem with [`wait`](Self::wait) or
/// [`wait_timeout`](Self::wait_timeout).
///
/// Submitting many [`Pending`]s before waiting on any is how a
/// single-threaded client lets the scheduler form large fused batches.
pub struct Pending {
    rx: mpsc::Receiver<Result<Vec<f32>>>,
}

impl Pending {
    /// Blocks until the prediction is available.
    ///
    /// Returns the class-probability row for the submitted sample. If the
    /// reply channel disconnects without an answer — the scheduler thread
    /// died — this is [`ServeError::SchedulerDied`], *not* a clean
    /// [`ServeError::Shutdown`] (shutdown drains and answers every
    /// accepted request).
    pub fn wait(self) -> Result<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::SchedulerDied))
    }

    /// Blocks for at most `timeout` for the prediction.
    ///
    /// [`ServeError::DeadlineExceeded`] if no reply arrived in time (the
    /// request may still be answered later; the reply is discarded),
    /// [`ServeError::SchedulerDied`] if the reply channel disconnected.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<f32>> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::SchedulerDied),
        }
    }

    #[cfg(test)]
    pub(crate) fn disconnected() -> Pending {
        let (_, rx) = mpsc::channel();
        Pending { rx }
    }
}

impl Server {
    /// Starts a server over the given registry with the given batching
    /// policy (a `max_batch` or `max_queue` of 0 is treated as 1).
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Server {
        let cfg =
            ServeConfig { max_batch: cfg.max_batch.max(1), max_queue: cfg.max_queue.max(1), ..cfg };
        let mut models = Vec::with_capacity(registry.entries.len());
        let mut plans: Vec<AnyPlan> = Vec::with_capacity(registry.entries.len());
        for e in registry.entries {
            models.push(ModelInfo { name: e.name, sample_len: e.plan.sample_len() });
            plans.push(e.plan);
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..models.len()).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            models,
            stats: StatsInner::new(),
            cfg,
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lightts-serve".into())
                .spawn(move || scheduler(&shared, plans))
                .expect("spawn scheduler thread")
        };
        Server { shared, thread: Some(thread) }
    }

    /// A handle for submitting requests (cloneable, usable from any
    /// thread).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// The per-server metrics registry backing [`stats`](Self::stats).
    ///
    /// Besides the request/batch/latency series, the registry carries the
    /// tensor buffer-pool gauges (`serve.pool_high_water_bytes`,
    /// `serve.pool_hits`, `serve.pool_misses`), refreshed after every fused
    /// batch — a deployment watches `pool_misses` stay flat to confirm the
    /// hot path is allocation-free and `pool_high_water_bytes` for its
    /// steady-state scratch footprint — and the robustness counters
    /// (`serve.shed_overload`, `serve.shed_deadline`,
    /// `serve.batch_panics`), which a deployment alerts on: sheds mean
    /// sustained overload, panics mean a model or kernel bug being
    /// contained.
    ///
    /// Snapshot it for Prometheus/JSON exposition of the raw
    /// `serve.*` counters, gauges, and histograms:
    ///
    /// ```ignore
    /// println!("{}", server.metrics().snapshot().render_prometheus());
    /// ```
    pub fn metrics(&self) -> Arc<obs::Registry> {
        self.shared.stats.registry()
    }

    /// Drains every accepted request, then stops the scheduler thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ServerHandle {
    /// Enqueues one sample (length `in_dims · in_len` of the named model)
    /// and returns a [`Pending`] redeemable for its probability row.
    ///
    /// Admission control happens here: unknown models, wrong shapes, and
    /// non-finite values are rejected with typed errors before touching
    /// the queue, and a queue already holding
    /// [`max_queue`](ServeConfig::max_queue) requests sheds the submission
    /// with [`ServeError::Overloaded`].
    pub fn submit(&self, model: &str, input: Vec<f32>) -> Result<Pending> {
        self.submit_inner(model, input, None)
    }

    /// Like [`submit`](Self::submit), with a relative deadline: if the
    /// prediction has not *started* computing within `deadline`, the
    /// scheduler sheds the request and replies
    /// [`ServeError::DeadlineExceeded`] instead of spending a forward pass
    /// on an answer nobody is waiting for.
    pub fn submit_with_deadline(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Duration,
    ) -> Result<Pending> {
        let dl = Instant::now() + deadline;
        self.submit_inner(model, input, Some(dl))
    }

    fn submit_inner(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Option<Instant>,
    ) -> Result<Pending> {
        let mi = self
            .shared
            .models
            .iter()
            .position(|m| m.name == model)
            .ok_or_else(|| ServeError::UnknownModel { name: model.to_string() })?;
        let expect = self.shared.models[mi].sample_len;
        if input.len() != expect {
            return Err(ServeError::BadRequest {
                what: format!(
                    "model {model:?} expects {expect} scalars per sample, got {}",
                    input.len()
                ),
            });
        }
        if let Some(index) = input.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::NonFiniteInput { index });
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut st = lock_state(&self.shared);
            if st.shutdown {
                return Err(ServeError::Shutdown);
            }
            if st.queues[mi].len() >= self.shared.cfg.max_queue {
                drop(st);
                self.shared.stats.shed_overload();
                return Err(ServeError::Overloaded {
                    model: model.to_string(),
                    max_queue: self.shared.cfg.max_queue,
                });
            }
            st.queues[mi].push_back(Request { input, enqueued: Instant::now(), deadline, tx });
        }
        self.shared.stats.enqueued();
        self.shared.cv.notify_all();
        Ok(Pending { rx })
    }

    /// Submits one sample and blocks for its probability row.
    pub fn predict(&self, model: &str, input: Vec<f32>) -> Result<Vec<f32>> {
        self.submit(model, input)?.wait()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }
}

/// Picks the next batch to run, blocking until one is ready.
///
/// A model is *ready* when its queue holds `max_batch` requests, when its
/// oldest request has waited `max_wait`, or when the server is shutting
/// down (drain). Returns `None` once shut down with all queues empty.
fn next_batch(shared: &Shared) -> Option<(usize, Vec<Request>)> {
    let cfg = shared.cfg;
    let mut st = lock_state(shared);
    loop {
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        let mut pick = None;
        for (i, q) in st.queues.iter().enumerate() {
            if let Some(front) = q.front() {
                let deadline = front.enqueued + cfg.max_wait;
                if st.shutdown || q.len() >= cfg.max_batch || now >= deadline {
                    pick = Some(i);
                    break;
                }
                earliest = Some(earliest.map_or(deadline, |e| e.min(deadline)));
            }
        }
        if let Some(i) = pick {
            let q = &mut st.queues[i];
            let n = q.len().min(cfg.max_batch);
            shared.stats.dequeued(n);
            return Some((i, q.drain(..n).collect()));
        }
        if st.shutdown {
            return None;
        }
        st = match earliest {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                shared.cv.wait_timeout(st, wait).unwrap_or_else(PoisonError::into_inner).0
            }
            None => shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
        };
    }
}

/// The scheduler loop: owns every compiled plan and its scratch buffers.
///
/// Failure containment happens here. Requests whose deadline has already
/// passed are shed *before* the forward pass (their compute would be
/// wasted). The fused forward runs under `catch_unwind`: a panic — from a
/// kernel bug, a poisoned model, or the `serve.batch` failpoint — fails
/// only that batch's requests with [`ServeError::Inference`], and the loop
/// continues, so one bad batch can never strand every other caller's
/// `Pending` forever.
fn scheduler(shared: &Shared, mut plans: Vec<AnyPlan>) {
    let mut inputs: Vec<f32> = Vec::new();
    let mut probs: Vec<f32> = Vec::new();
    while let Some((mi, batch)) = next_batch(shared) {
        // Shed expired requests pre-inference.
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for r in batch {
            if r.deadline.is_some_and(|d| now >= d) {
                // Counter before send: a caller whose `wait` just returned
                // must never read a stale counter.
                shared.stats.shed_deadline();
                let _ = r.tx.send(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(r);
            }
        }
        if live.is_empty() {
            continue;
        }
        let batch = live;
        let plan = &mut plans[mi];
        let kind = plan.kind();
        let nc = plan.num_classes();
        inputs.clear();
        for r in &batch {
            inputs.extend_from_slice(&r.input);
        }
        let t0 = Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            obs::failpoint::hit("serve.batch").map_err(|what| ServeError::Inference { what })?;
            plan.predict_proba_into(&inputs, batch.len(), &mut probs).map_err(ServeError::Model)
        }));
        let service = t0.elapsed();
        let result = result.unwrap_or_else(|payload| {
            shared.stats.batch_panic();
            let what = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("batch forward panicked");
            Err(ServeError::Inference { what: format!("batch forward panicked: {what}") })
        });
        match result {
            Ok(()) => {
                // Counters before sends: a caller whose `wait` just returned
                // must never read stale stats.
                let done = Instant::now();
                shared.stats.record_batch(batch.len(), service);
                shared.stats.record_plan_requests(kind, batch.len());
                for (bi, r) in batch.iter().enumerate() {
                    let row = probs[bi * nc..(bi + 1) * nc].to_vec();
                    shared.stats.record_latency(done.duration_since(r.enqueued));
                    let _ = r.tx.send(Ok(row));
                }
                obs::event!("serve.batch", {
                    model: shared.models[mi].name.as_str(),
                    plan: kind.name(),
                    batch: batch.len(),
                    service_us: service.as_secs_f64() * 1e6,
                });
            }
            Err(e) => {
                for r in &batch {
                    shared.stats.record_error();
                    let _ = r.tx.send(Err(e.clone()));
                }
                obs::event!("serve.batch_failed", {
                    model: shared.models[mi].name.as_str(),
                    batch: batch.len(),
                    error: e.to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_reply_channel_is_scheduler_death_not_shutdown() {
        assert_eq!(Pending::disconnected().wait(), Err(ServeError::SchedulerDied));
        assert_eq!(
            Pending::disconnected().wait_timeout(Duration::from_millis(1)),
            Err(ServeError::SchedulerDied)
        );
    }

    #[test]
    fn wait_timeout_times_out_when_no_reply_arrives() {
        let (tx, rx) = mpsc::channel();
        let p = Pending { rx };
        assert_eq!(p.wait_timeout(Duration::from_millis(5)), Err(ServeError::DeadlineExceeded));
        drop(tx);
    }
}
