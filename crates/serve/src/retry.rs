//! Client-side retry policy: bounded attempts, exponential backoff with
//! deterministic jitter, deadline-budget awareness.
//!
//! A [`RetryPolicy`] governs [`ServerHandle::predict_with_retry`] (in
//! process) and [`NetClient::predict_with_retry`] (remote). Both retry
//! only the **retryable** failure class marked in [`crate::wire`] —
//! `OVERLOADED` (transient queue pressure) and `UNAVAILABLE` (a dead
//! shard; the retry reroutes around it or lands on its respawn) — and
//! both reuse *one* request id across every attempt, so retries route
//! deterministically: the liveness-masked router sends the same id to the
//! same choice among whatever shards are live.
//!
//! The backoff before retry `k` is `base_backoff · 2^(k-1)`, capped at
//! [`MAX_BACKOFF`], minus up to [`jitter`](RetryPolicy::jitter) percent —
//! where the subtracted fraction is a *pure function* of the request id
//! and attempt number (splitmix64), not a random draw. Fleet-wide, ids
//! differ, so synchronized clients still de-correlate their retry storms;
//! test-wide, the schedule replays exactly.
//!
//! Deadline budget: when the caller passes a deadline, every attempt's
//! submission inherits only the *remaining* budget, and a backoff sleep
//! that would cross the deadline is never taken — the last error returns
//! instead. Retries can therefore never make a caller wait longer than
//! its deadline (the chaos suite asserts this).
//!
//! [`ServerHandle::predict_with_retry`]: crate::ServerHandle::predict_with_retry
//! [`NetClient::predict_with_retry`]: crate::NetClient::predict_with_retry

use crate::server::splitmix64;
use std::time::Duration;

/// Hard cap on a single backoff sleep, whatever the exponent says.
pub const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// When and how often to retry a retryable serving failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first try; clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry (capped at
    /// [`MAX_BACKOFF`]).
    pub base_backoff: Duration,
    /// Percentage (0–100) of each backoff subtracted as deterministic
    /// jitter — derived from the request id and attempt number, so two
    /// clients retrying different ids de-correlate while a fixed id
    /// replays its exact schedule.
    pub jitter: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff: Duration::from_millis(5), jitter: 50 }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, no backoff. `predict_with_retry` under
    /// this policy behaves exactly like plain `predict`.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_backoff: Duration::ZERO, jitter: 0 }
    }

    /// Reads the policy from the environment: `LIGHTTS_SERVE_RETRIES`
    /// (total attempts), `LIGHTTS_SERVE_RETRY_BACKOFF_US` (base backoff,
    /// µs), `LIGHTTS_SERVE_RETRY_JITTER` (percent). Unset or unparsable
    /// variables fall back to the defaults (3 attempts, 5 ms, 50%).
    pub fn from_env() -> RetryPolicy {
        let var = |name: &str| std::env::var(name).ok().and_then(|v| v.trim().parse::<u64>().ok());
        let d = RetryPolicy::default();
        RetryPolicy {
            max_attempts: var("LIGHTTS_SERVE_RETRIES")
                .filter(|&n| n > 0)
                .map_or(d.max_attempts, |n| n.min(u64::from(u32::MAX)) as u32),
            base_backoff: var("LIGHTTS_SERVE_RETRY_BACKOFF_US")
                .map_or(d.base_backoff, Duration::from_micros),
            jitter: var("LIGHTTS_SERVE_RETRY_JITTER").map_or(d.jitter, |n| n.min(100) as u32),
        }
    }

    /// Total attempts, never less than one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The backoff slept after attempt `attempt` (1-based) fails, for the
    /// request routed by `key`. Pure in `(self, attempt, key)`.
    pub fn backoff(&self, attempt: u32, key: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let full =
            self.base_backoff.checked_mul(1u32 << exp).unwrap_or(MAX_BACKOFF).min(MAX_BACKOFF);
        let jitter = u64::from(self.jitter.min(100));
        if jitter == 0 || full.is_zero() {
            return full;
        }
        // Top 53 bits of a splitmix64 draw → a uniform fraction in [0, 1),
        // deterministic per (key, attempt).
        let frac = (splitmix64(key ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        full.mul_f64(1.0 - frac * jitter as f64 / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let p = RetryPolicy { max_attempts: 5, base_backoff: Duration::from_millis(4), jitter: 0 };
        assert_eq!(p.backoff(1, 9), Duration::from_millis(4));
        assert_eq!(p.backoff(2, 9), Duration::from_millis(8));
        assert_eq!(p.backoff(3, 9), Duration::from_millis(16));
        // The cap holds even for absurd exponents.
        assert_eq!(p.backoff(30, 9), MAX_BACKOFF);

        let j = RetryPolicy { jitter: 50, ..p };
        let b = j.backoff(2, 9);
        // Jitter subtracts at most 50%: the result sits in [4ms, 8ms].
        assert!(b <= Duration::from_millis(8) && b >= Duration::from_millis(4), "{b:?}");
        // Pure: same (attempt, key) → same backoff; different keys differ.
        assert_eq!(b, j.backoff(2, 9));
        assert_ne!(j.backoff(2, 9), j.backoff(2, 10));
    }

    #[test]
    fn attempts_clamp_and_none_is_one_shot() {
        assert_eq!(RetryPolicy { max_attempts: 0, ..RetryPolicy::default() }.attempts(), 1);
        assert_eq!(RetryPolicy::none().attempts(), 1);
        assert_eq!(RetryPolicy::none().backoff(1, 7), Duration::ZERO);
    }
}
