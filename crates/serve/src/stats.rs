//! Serving statistics: per-request latency and per-batch throughput.
//!
//! Since PR 3 the counters live in a per-server
//! [`lightts_obs::Registry`]: [`StatsInner`] is a thin bundle of shared
//! metric handles resolved once at server start, and [`ServeStats`] is a
//! point-in-time *view* computed from a registry snapshot. The scheduler
//! hot path therefore only touches lock-free atomics, while the same
//! numbers are exportable through
//! [`Server::metrics`](crate::Server::metrics) in Prometheus or JSON
//! form.

use crate::registry::PlanKind;
use lightts_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Per-shard metric handles: the sharded topology rendered into
/// `/metrics` as `serve.shard{i}.*` series alongside the aggregate
/// `serve.*` ones, so a scrape shows queue skew, batch formation, and
/// liveness per shard.
#[derive(Debug)]
pub(crate) struct ShardStats {
    /// Requests currently queued on this shard (all its slots).
    queue_depth: Arc<Gauge>,
    /// Requests answered successfully by this shard.
    requests: Arc<Counter>,
    /// Fused batches this shard has executed.
    batches: Arc<Counter>,
    /// Per-request enqueue→reply latency on this shard, nanoseconds.
    latency_ns: Arc<Histogram>,
    /// 1 while the shard's scheduler thread runs its loop, 0 once it has
    /// exited (cleanly or by a panic escaping the loop). Set back to 1 by
    /// the supervisor when it respawns the shard.
    alive: Arc<Gauge>,
    /// Times the supervisor has respawned this shard.
    restarts: Arc<Counter>,
}

/// Shared metric handles, updated by the scheduler shard threads.
///
/// Each server owns its own [`Registry`] (not the process-global one) so
/// that concurrent servers — common in tests — never mix their counters.
#[derive(Debug)]
pub(crate) struct StatsInner {
    registry: Arc<Registry>,
    /// One bundle per scheduler shard, indexed by shard id.
    shards: Vec<ShardStats>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    batches: Arc<Counter>,
    max_batch: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    /// Per-request enqueue→reply latency, nanoseconds.
    latency_ns: Arc<Histogram>,
    /// Per-batch fused-forward service time, nanoseconds.
    service_ns: Arc<Histogram>,
    /// Stage breakdown of the same enqueue→reply path, one histogram per
    /// stage, each bucket carrying the last `trace_id` to land in it as an
    /// exemplar — so a tail-latency bucket in a scrape names a concrete
    /// request to grep out of `/tracez`.
    ///
    /// Per-request time spent queued before its batch was formed.
    queue_wait_ns: Arc<Histogram>,
    /// Per-batch input-fusion (gather/copy) time.
    fuse_ns: Arc<Histogram>,
    /// Per-batch fused forward-pass time.
    forward_ns: Arc<Histogram>,
    /// Per-request reply (row copy + channel send) time.
    reply_ns: Arc<Histogram>,
    /// High-water mark of bytes parked in the tensor buffer pool
    /// ([`lightts_tensor::pool::pool_high_water_bytes`]); process-wide, but
    /// the scheduler thread's slabs dominate it in a serving deployment.
    pool_high_water: Arc<Gauge>,
    /// Cumulative tensor-pool hits ([`lightts_tensor::pool::pool_hits`]).
    pool_hits: Arc<Gauge>,
    /// Cumulative tensor-pool misses: steady-state serving must hold this
    /// flat (every miss is a transient heap allocation on the hot path).
    pool_misses: Arc<Gauge>,
    /// Requests shed at admission because the model's queue was full.
    shed_overload: Arc<Counter>,
    /// Requests shed by the scheduler because their deadline had already
    /// passed when their batch was formed.
    shed_deadline: Arc<Counter>,
    /// Requests shed at admission because the model's circuit breaker was
    /// open (or half-open with a probe already in flight).
    shed_circuit: Arc<Counter>,
    /// Submissions that landed on a non-primary replica because the
    /// liveness mask excluded their primary (dead/restarting/failed
    /// shard).
    reroutes: Arc<Counter>,
    /// Shard respawns performed by the supervisor, summed over shards
    /// (the per-shard split is `serve.shard{i}.restarts`).
    restarts: Arc<Counter>,
    /// Shards marked permanently failed (restart budget exhausted or a
    /// respawn probe answered non-identically).
    shards_failed: Arc<Gauge>,
    /// Circuit-open transitions, summed over models.
    circuit_opens: Arc<Counter>,
    /// Per-model breaker state mirrors (`serve.circuit{m}.state`:
    /// 0 closed / 1 open / 2 half-open), indexed by model.
    circuits: Vec<Arc<Gauge>>,
    /// Fused forwards that panicked and were contained by the scheduler.
    batch_panics: Arc<Counter>,
    /// Requests answered by an f32 [`InferencePlan`]
    /// (`lightts_models::inference`).
    plan_f32_requests: Arc<Counter>,
    /// Requests answered by an int8 `QuantizedPlan`
    /// (`lightts_models::qinference`) — the `plan = i8` knob's adoption
    /// signal in a mixed registry.
    plan_i8_requests: Arc<Counter>,
}

impl StatsInner {
    pub(crate) fn new(nshards: usize, nmodels: usize) -> StatsInner {
        let registry = Arc::new(Registry::new());
        let shards = (0..nshards)
            .map(|i| {
                let alive = registry.gauge(&format!("serve.shard{i}.alive"));
                alive.set(1);
                ShardStats {
                    queue_depth: registry.gauge(&format!("serve.shard{i}.queue_depth")),
                    requests: registry.counter(&format!("serve.shard{i}.requests")),
                    batches: registry.counter(&format!("serve.shard{i}.batches")),
                    latency_ns: registry.histogram(&format!("serve.shard{i}.latency_ns")),
                    alive,
                    restarts: registry.counter(&format!("serve.shard{i}.restarts")),
                }
            })
            .collect();
        let circuits = (0..nmodels)
            .map(|m| {
                let g = registry.gauge(&format!("serve.circuit{m}.state"));
                g.set(0);
                g
            })
            .collect();
        StatsInner {
            shards,
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            batches: registry.counter("serve.batches"),
            max_batch: registry.gauge("serve.max_batch"),
            queue_depth: registry.gauge("serve.queue_depth"),
            batch_size: registry.histogram("serve.batch_size"),
            latency_ns: registry.histogram("serve.latency_ns"),
            service_ns: registry.histogram("serve.service_ns"),
            queue_wait_ns: registry.histogram("serve.queue_wait_ns"),
            fuse_ns: registry.histogram("serve.fuse_ns"),
            forward_ns: registry.histogram("serve.forward_ns"),
            reply_ns: registry.histogram("serve.reply_ns"),
            pool_high_water: registry.gauge("serve.pool_high_water_bytes"),
            pool_hits: registry.gauge("serve.pool_hits"),
            pool_misses: registry.gauge("serve.pool_misses"),
            shed_overload: registry.counter("serve.shed_overload"),
            shed_deadline: registry.counter("serve.shed_deadline"),
            shed_circuit: registry.counter("serve.shed_circuit"),
            reroutes: registry.counter("serve.reroutes"),
            restarts: registry.counter("serve.restarts"),
            shards_failed: registry.gauge("serve.shards_failed"),
            circuit_opens: registry.counter("serve.circuit_opens"),
            circuits,
            batch_panics: registry.counter("serve.batch_panics"),
            plan_f32_requests: registry.counter("serve.plan_f32_requests"),
            plan_i8_requests: registry.counter("serve.plan_i8_requests"),
            registry,
        }
    }

    /// Mirrors the tensor buffer-pool counters into this server's registry
    /// so they ride along with [`Server::metrics`](crate::Server::metrics)
    /// exposition. Cheap (three relaxed loads + three stores); called after
    /// every fused batch and on snapshot.
    fn refresh_pool_gauges(&self) {
        self.pool_high_water.set(lightts_tensor::pool::pool_high_water_bytes() as i64);
        self.pool_hits.set(lightts_tensor::pool::pool_hits() as i64);
        self.pool_misses.set(lightts_tensor::pool::pool_misses() as i64);
    }

    /// The registry backing these stats, for exposition.
    pub(crate) fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// A request entered a queue on `shard`.
    pub(crate) fn enqueued(&self, shard: usize) {
        self.queue_depth.add(1);
        self.shards[shard].queue_depth.add(1);
    }

    /// `n` requests left `shard`'s queues (batch formation or drain).
    pub(crate) fn dequeued(&self, shard: usize, n: usize) {
        self.queue_depth.sub(n as i64);
        self.shards[shard].queue_depth.sub(n as i64);
    }

    /// One fused batch completed successfully on `shard`.
    pub(crate) fn record_batch(&self, shard: usize, batch_size: usize, service: Duration) {
        self.requests.add(batch_size as u64);
        self.batches.inc();
        self.batch_size.record(batch_size as u64);
        self.service_ns.record_duration(service);
        self.max_batch.record_max(batch_size as i64);
        self.shards[shard].requests.add(batch_size as u64);
        self.shards[shard].batches.inc();
        self.refresh_pool_gauges();
    }

    /// One answered request's enqueue→reply latency on `shard`.
    pub(crate) fn record_latency(&self, shard: usize, latency: Duration) {
        self.latency_ns.record_duration(latency);
        self.shards[shard].latency_ns.record_duration(latency);
    }

    /// `shard`'s scheduler thread exited (cleanly or not).
    pub(crate) fn shard_dead(&self, shard: usize) {
        self.shards[shard].alive.set(0);
    }

    /// The supervisor respawned `shard`: flip its liveness gauge back and
    /// count the restart, per shard and in aggregate.
    pub(crate) fn shard_reborn(&self, shard: usize) {
        self.shards[shard].alive.set(1);
        self.shards[shard].restarts.inc();
        self.restarts.inc();
    }

    /// A shard was marked permanently failed (budget exhausted or a
    /// respawn probe answered non-identically).
    pub(crate) fn shard_failed(&self) {
        self.shards_failed.add(1);
    }

    /// A submission landed on a non-primary replica because its primary
    /// was masked out as not live.
    pub(crate) fn reroute(&self) {
        self.reroutes.inc();
    }

    /// A submission was shed at admission by an open circuit breaker.
    pub(crate) fn shed_circuit(&self) {
        self.shed_circuit.inc();
    }

    /// Model `m`'s `serve.circuit{m}.state` gauge, for its [`Breaker`]
    /// to mirror state transitions into.
    ///
    /// [`Breaker`]: crate::breaker::Breaker
    pub(crate) fn circuit_gauge(&self, m: usize) -> Arc<Gauge> {
        Arc::clone(&self.circuits[m])
    }

    /// The shared `serve.circuit_opens` counter.
    pub(crate) fn circuit_opens(&self) -> Arc<Counter> {
        Arc::clone(&self.circuit_opens)
    }

    /// One request's time queued before batch formation, with its trace id
    /// as the bucket exemplar.
    pub(crate) fn record_queue_wait(&self, d: Duration, trace_id: u64) {
        self.queue_wait_ns.record_duration_with_exemplar(d, trace_id);
    }

    /// One batch's input-fusion time, exemplified by one member request.
    pub(crate) fn record_fuse(&self, d: Duration, trace_id: u64) {
        self.fuse_ns.record_duration_with_exemplar(d, trace_id);
    }

    /// One batch's forward-pass time, exemplified by one member request.
    pub(crate) fn record_forward(&self, d: Duration, trace_id: u64) {
        self.forward_ns.record_duration_with_exemplar(d, trace_id);
    }

    /// One request's reply time, with its trace id as the bucket exemplar.
    pub(crate) fn record_reply(&self, d: Duration, trace_id: u64) {
        self.reply_ns.record_duration_with_exemplar(d, trace_id);
    }

    pub(crate) fn record_error(&self) {
        self.errors.inc();
    }

    /// A submission was shed at admission (full queue).
    pub(crate) fn shed_overload(&self) {
        self.shed_overload.inc();
    }

    /// A queued request was shed pre-inference (expired deadline).
    pub(crate) fn shed_deadline(&self) {
        self.shed_deadline.inc();
    }

    /// A fused forward panicked and the scheduler contained it.
    pub(crate) fn batch_panic(&self) {
        self.batch_panics.inc();
    }

    /// `n` requests were answered by a plan of `kind`.
    pub(crate) fn record_plan_requests(&self, kind: PlanKind, n: usize) {
        match kind {
            PlanKind::F32 => self.plan_f32_requests.add(n as u64),
            PlanKind::I8 => self.plan_i8_requests.add(n as u64),
        }
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        self.refresh_pool_gauges();
        let latency = self.latency_ns.snapshot();
        let service = self.service_ns.snapshot();
        let q = |p: f64| Duration::from_nanos(latency.quantile(p) as u64);
        ServeStats {
            shards: self.shards.len(),
            shards_alive: self.shards.iter().filter(|s| s.alive.get() == 1).count(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            batches: self.batches.get(),
            max_batch: self.max_batch.get().max(0) as usize,
            shed_overload: self.shed_overload.get(),
            shed_deadline: self.shed_deadline.get(),
            shed_circuit: self.shed_circuit.get(),
            reroutes: self.reroutes.get(),
            restarts: self.restarts.get(),
            shards_failed: self.shards_failed.get().max(0) as usize,
            circuit_opens: self.circuit_opens.get(),
            batch_panics: self.batch_panics.get(),
            plan_f32_requests: self.plan_f32_requests.get(),
            plan_i8_requests: self.plan_i8_requests.get(),
            total_latency: Duration::from_nanos(latency.sum),
            total_service: Duration::from_nanos(service.sum),
            latency_p50: q(0.50),
            latency_p90: q(0.90),
            latency_p99: q(0.99),
        }
    }
}

/// A point-in-time snapshot of serving counters.
///
/// Obtained from [`Server::stats`](crate::Server::stats) /
/// [`ServerHandle::stats`](crate::ServerHandle::stats); all totals are
/// cumulative since the server started. The latency percentiles come from
/// a log-bucketed histogram, so they are order-of-magnitude estimates
/// (within a factor of two of the true order statistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Number of scheduler shards the server runs.
    pub shards: usize,
    /// Shards whose scheduler thread is still running its loop.
    pub shards_alive: usize,
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests rejected with an error (failed forward).
    pub errors: u64,
    /// Fused batches executed.
    pub batches: u64,
    /// Largest batch the scheduler has formed so far.
    pub max_batch: usize,
    /// Submissions shed at admission with
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded).
    pub shed_overload: u64,
    /// Queued requests shed pre-inference with
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded).
    pub shed_deadline: u64,
    /// Submissions shed at admission with
    /// [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen) (open
    /// breaker, or half-open with a probe already in flight).
    pub shed_circuit: u64,
    /// Submissions that landed on a non-primary replica because their
    /// primary shard was dead, restarting, or failed.
    pub reroutes: u64,
    /// Shard respawns performed by the supervisor.
    pub restarts: u64,
    /// Shards marked permanently failed (restart budget exhausted or a
    /// respawn probe answered non-identically).
    pub shards_failed: usize,
    /// Circuit-open transitions, summed over models.
    pub circuit_opens: u64,
    /// Fused forwards that panicked; each failed only its own batch.
    pub batch_panics: u64,
    /// Requests answered by f32 plans.
    pub plan_f32_requests: u64,
    /// Requests answered by int8 plans.
    pub plan_i8_requests: u64,
    /// Σ enqueue→reply latency over all answered requests.
    pub total_latency: Duration,
    /// Σ fused-forward service time over all batches.
    pub total_service: Duration,
    /// Median enqueue→reply latency (histogram estimate).
    pub latency_p50: Duration,
    /// 90th-percentile enqueue→reply latency (histogram estimate).
    pub latency_p90: Duration,
    /// 99th-percentile enqueue→reply latency (histogram estimate).
    pub latency_p99: Duration,
}

impl ServeStats {
    /// Mean number of requests per fused batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Mean per-request latency (enqueue to reply).
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(self.total_latency.as_secs_f64() / self.requests as f64)
        }
    }

    /// Requests served per second of fused-forward service time — the
    /// model-bound throughput, excluding queueing.
    pub fn service_throughput(&self) -> f64 {
        let secs = self.total_service.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} errors, {} shed overload, {} shed deadline, \
             {} shed circuit, {} batch panics) in {} batches (mean {:.2}, max {}) \
             on {}/{} shards ({} restarts, {} failed, {} reroutes), \
             mean latency {:?} (p50 {:?}, p90 {:?}, p99 {:?}), \
             {:.1} req/s service throughput",
            self.requests,
            self.errors,
            self.shed_overload,
            self.shed_deadline,
            self.shed_circuit,
            self.batch_panics,
            self.batches,
            self.mean_batch_size(),
            self.max_batch,
            self.shards_alive,
            self.shards,
            self.restarts,
            self.shards_failed,
            self.reroutes,
            self.mean_latency(),
            self.latency_p50,
            self.latency_p90,
            self.latency_p99,
            self.service_throughput()
        )
    }
}
