//! Serving statistics: per-request latency and per-batch throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal atomic counters, updated by the scheduler thread.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    requests: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    /// Σ enqueue→reply latency over all answered requests, nanoseconds.
    latency_ns: AtomicU64,
    /// Σ fused-forward service time over all batches, nanoseconds.
    service_ns: AtomicU64,
}

impl StatsInner {
    pub(crate) fn record_batch(&self, batch_size: usize, service: Duration, latencies_ns: u64) {
        self.requests.fetch_add(batch_size as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.service_ns.fetch_add(service.as_nanos() as u64, Ordering::Relaxed);
        self.latency_ns.fetch_add(latencies_ns, Ordering::Relaxed);
        self.max_batch.fetch_max(batch_size as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed) as usize,
            total_latency: Duration::from_nanos(self.latency_ns.load(Ordering::Relaxed)),
            total_service: Duration::from_nanos(self.service_ns.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of serving counters.
///
/// Obtained from [`Server::stats`](crate::Server::stats) /
/// [`ServerHandle::stats`](crate::ServerHandle::stats); all totals are
/// cumulative since the server started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests rejected with an error (failed forward).
    pub errors: u64,
    /// Fused batches executed.
    pub batches: u64,
    /// Largest batch the scheduler has formed so far.
    pub max_batch: usize,
    /// Σ enqueue→reply latency over all answered requests.
    pub total_latency: Duration,
    /// Σ fused-forward service time over all batches.
    pub total_service: Duration,
}

impl ServeStats {
    /// Mean number of requests per fused batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Mean per-request latency (enqueue to reply).
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(self.total_latency.as_secs_f64() / self.requests as f64)
        }
    }

    /// Requests served per second of fused-forward service time — the
    /// model-bound throughput, excluding queueing.
    pub fn service_throughput(&self) -> f64 {
        let secs = self.total_service.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} errors) in {} batches (mean {:.2}, max {}), \
             mean latency {:?}, {:.1} req/s service throughput",
            self.requests,
            self.errors,
            self.batches,
            self.mean_batch_size(),
            self.max_batch,
            self.mean_latency(),
            self.service_throughput()
        )
    }
}
