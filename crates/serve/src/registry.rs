//! The model registry: named, compiled inference plans.

use crate::{Result, ServeError};
use lightts_models::inception::InceptionTime;
use lightts_models::inference::InferencePlan;

/// One registered model: its name plus the compiled plan.
#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) plan: InferencePlan,
}

/// A collection of named, compiled models ready to serve.
///
/// Models enter the registry either as packed
/// [`save_bytes`](InceptionTime::save_bytes) exports
/// ([`load_packed`](Self::load_packed)) — the deployment path — or as live
/// [`InceptionTime`] instances ([`register`](Self::register)). Either way
/// they are compiled once into a tape-free
/// [`InferencePlan`](lightts_models::inference::InferencePlan) at
/// registration time, so the serving hot path never re-quantizes weights or
/// touches the autodiff tape.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    pub(crate) entries: Vec<Entry>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a live model under `name`, compiling it for serving.
    ///
    /// Replaces any previous model of the same name.
    pub fn register(&mut self, name: impl Into<String>, model: &InceptionTime) -> Result<()> {
        let name = name.into();
        if name.is_empty() {
            return Err(ServeError::BadRequest { what: "empty model name".into() });
        }
        let plan = model.compile()?;
        self.entries.retain(|e| e.name != name);
        self.entries.push(Entry { name, plan });
        Ok(())
    }

    /// Loads a packed model export (the bytes written by
    /// [`InceptionTime::save_bytes`]) and registers it under `name`.
    pub fn load_packed(&mut self, name: impl Into<String>, bytes: &[u8]) -> Result<()> {
        let model = InceptionTime::load_bytes(bytes)?;
        self.register(name, &model)
    }

    /// Names of all registered models, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Whether a model of this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
