//! The model registry: named, compiled inference plans (f32 or int8).

use crate::{Result, ServeConfig, ServeError};
use lightts_models::inception::InceptionTime;
use lightts_models::inference::InferencePlan;
use lightts_models::qinference::QuantizedPlan;

/// Which compiled plan kind a model is served with — the `plan = f32 | i8`
/// knob.
///
/// * [`PlanKind::F32`] (default): the classic [`InferencePlan`] — f32
///   arithmetic, bitwise identical to the uncompiled eval path.
/// * [`PlanKind::I8`]: the [`QuantizedPlan`] — i8 weights, integer
///   conv/GEMM, ~4× smaller weight storage; approximate vs f32 within the
///   parity gate of `tests/quantized_parity.rs`, and bitwise reproducible
///   across backends/batch splits in its own right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanKind {
    /// Full-precision compiled plan.
    #[default]
    F32,
    /// True-int8 compiled plan.
    I8,
}

impl PlanKind {
    /// Stable lower-case name (`"f32"` / `"i8"`), as recorded in bench
    /// output and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::F32 => "f32",
            PlanKind::I8 => "i8",
        }
    }
}

/// A compiled plan of either kind, dispatched per batch by the scheduler.
/// `Clone` is what makes replica placement possible: each shard hosting a
/// replica of a model owns its own clone of the compiled plan (weights and
/// scratch), so shards never share mutable plan state.
#[derive(Debug, Clone)]
pub(crate) enum AnyPlan {
    F32(InferencePlan),
    I8(QuantizedPlan),
}

impl AnyPlan {
    pub(crate) fn kind(&self) -> PlanKind {
        match self {
            AnyPlan::F32(_) => PlanKind::F32,
            AnyPlan::I8(_) => PlanKind::I8,
        }
    }

    pub(crate) fn sample_len(&self) -> usize {
        match self {
            AnyPlan::F32(p) => p.sample_len(),
            AnyPlan::I8(p) => p.sample_len(),
        }
    }

    pub(crate) fn num_classes(&self) -> usize {
        match self {
            AnyPlan::F32(p) => p.num_classes(),
            AnyPlan::I8(p) => p.num_classes(),
        }
    }

    pub(crate) fn predict_proba_into(
        &mut self,
        inputs: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
    ) -> lightts_models::Result<()> {
        match self {
            AnyPlan::F32(p) => p.predict_proba_into(inputs, batch, out),
            AnyPlan::I8(p) => p.predict_proba_into(inputs, batch, out),
        }
    }
}

/// One registered model: its name plus the compiled plan.
#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) plan: AnyPlan,
}

/// A collection of named, compiled models ready to serve.
///
/// Models enter the registry either as packed
/// [`save_bytes`](InceptionTime::save_bytes) exports
/// ([`load_packed`](Self::load_packed)) — the deployment path — or as live
/// [`InceptionTime`] instances ([`register`](Self::register)). Either way
/// they are compiled once at registration time into a tape-free plan of the
/// registry's default [`PlanKind`] (or an explicit per-model kind via
/// [`register_as`](Self::register_as) / [`load_packed_as`](Self::load_packed_as)),
/// so the serving hot path never re-quantizes weights or touches the
/// autodiff tape. f32 and i8 plans can be resident simultaneously; requests
/// are routed by model name as before.
///
/// Compiling a model for a plan kind it cannot support — e.g. an i8 plan
/// for a packed model trained with 16/32-bit quantization metadata — fails
/// here, at registration, with a typed
/// [`ServeError::Model`]`(`[`UnsupportedPlan`](lightts_models::ModelError::UnsupportedPlan)`)`
/// rather than a panic or silent accuracy loss at request time.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    pub(crate) entries: Vec<Entry>,
    default_plan: PlanKind,
}

impl ModelRegistry {
    /// Creates an empty registry with the default f32 plan kind.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry whose [`register`](Self::register) /
    /// [`load_packed`](Self::load_packed) compile plans of `kind`.
    pub fn with_plan(kind: PlanKind) -> Self {
        ModelRegistry { entries: Vec::new(), default_plan: kind }
    }

    /// Creates an empty registry honouring the config's `plan` knob —
    /// the usual way to build the registry a [`Server`](crate::Server)
    /// will consume.
    pub fn for_config(cfg: &ServeConfig) -> Self {
        Self::with_plan(cfg.plan)
    }

    /// The plan kind [`register`](Self::register) compiles by default.
    pub fn default_plan(&self) -> PlanKind {
        self.default_plan
    }

    /// Changes the default plan kind for subsequent registrations
    /// (already-registered models are unaffected).
    pub fn set_default_plan(&mut self, kind: PlanKind) {
        self.default_plan = kind;
    }

    /// Registers a live model under `name`, compiling it for serving with
    /// the registry's default plan kind.
    ///
    /// Replaces any previous model of the same name.
    pub fn register(&mut self, name: impl Into<String>, model: &InceptionTime) -> Result<()> {
        self.register_as(name, model, self.default_plan)
    }

    /// Registers a live model under `name` with an explicit plan kind,
    /// regardless of the registry default.
    pub fn register_as(
        &mut self,
        name: impl Into<String>,
        model: &InceptionTime,
        kind: PlanKind,
    ) -> Result<()> {
        let name = name.into();
        if name.is_empty() {
            return Err(ServeError::BadRequest { what: "empty model name".into() });
        }
        let plan = match kind {
            PlanKind::F32 => AnyPlan::F32(model.compile()?),
            PlanKind::I8 => AnyPlan::I8(model.compile_quantized()?),
        };
        self.entries.retain(|e| e.name != name);
        self.entries.push(Entry { name, plan });
        Ok(())
    }

    /// Loads a packed model export (the bytes written by
    /// [`InceptionTime::save_bytes`]) and registers it under `name` with
    /// the registry's default plan kind.
    pub fn load_packed(&mut self, name: impl Into<String>, bytes: &[u8]) -> Result<()> {
        self.load_packed_as(name, bytes, self.default_plan)
    }

    /// Loads a packed model export and registers it with an explicit plan
    /// kind. Fails with a typed error (never a panic) both on malformed
    /// bytes and on a model that cannot support `kind`.
    pub fn load_packed_as(
        &mut self,
        name: impl Into<String>,
        bytes: &[u8],
        kind: PlanKind,
    ) -> Result<()> {
        let model = InceptionTime::load_bytes(bytes)?;
        self.register_as(name, &model, kind)
    }

    /// Names of all registered models, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// The plan kind a registered model was compiled with.
    pub fn plan_kind(&self, name: &str) -> Option<PlanKind> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.plan.kind())
    }

    /// Whether a model of this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
