//! Error type for model construction, training, and inference.

use lightts_data::DataError;
use lightts_nn::NnError;
use lightts_tensor::TensorError;
use std::fmt;

/// Errors produced by classifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying layer/optimizer operation failed.
    Nn(NnError),
    /// An underlying dataset operation failed.
    Data(DataError),
    /// A model was configured inconsistently.
    BadConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// The model was used before being trained.
    NotTrained {
        /// The model that was queried.
        model: &'static str,
    },
    /// The model cannot be compiled for the requested inference plan kind
    /// (e.g. an i8 plan was requested for a model trained without ≤ 8-bit
    /// quantization metadata).
    UnsupportedPlan {
        /// Description of the unsupported combination.
        what: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::Nn(e) => write!(f, "nn error: {e}"),
            Self::Data(e) => write!(f, "data error: {e}"),
            Self::BadConfig { what } => write!(f, "bad model configuration: {what}"),
            Self::NotTrained { model } => write!(f, "{model} used before training"),
            Self::UnsupportedPlan { what } => write!(f, "unsupported inference plan: {what}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            Self::Nn(e) => Some(e),
            Self::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<NnError> for ModelError {
    fn from(e: NnError) -> Self {
        ModelError::Nn(e)
    }
}

impl From<DataError> for ModelError {
    fn from(e: DataError) -> Self {
        ModelError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let e: ModelError = TensorError::Empty { op: "x" }.into();
        assert!(matches!(e, ModelError::Tensor(_)));
        let e: ModelError = NnError::BadConfig { what: "w".into() }.into();
        assert!(matches!(e, ModelError::Nn(_)));
        let e: ModelError = DataError::Empty { op: "x" }.into();
        assert!(matches!(e, ModelError::Data(_)));
    }
}
