//! A randomized decision tree over dense feature vectors.
//!
//! The split search follows the Extra-Trees recipe: at each node a random
//! subset of features is considered and, per candidate feature, a random
//! threshold between the observed min and max; the candidate with the lowest
//! weighted Gini impurity wins. This is the standard randomization used by
//! interval forests for time series, is fast, and yields the diversity the
//! forest ensembles need.

use crate::{ModelError, Result};
use rand::Rng;

/// Hyper-parameters of a randomized decision tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_split: usize,
    /// Number of random features considered per split (`None` = all).
    pub feature_subset: Option<usize>,
    /// Random thresholds tried per candidate feature.
    pub thresholds_per_feature: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 10, min_split: 4, feature_subset: None, thresholds_per_feature: 4 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { dist: Vec<f32> },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// A trained decision tree producing class distributions at its leaves.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_classes: usize,
    num_features: usize,
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn class_counts(rows: &[usize], labels: &[usize], k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &r in rows {
        counts[labels[r]] += 1;
    }
    counts
}

impl DecisionTree {
    /// Fits a tree on `features` (row-major `n × f`) and `labels`.
    pub fn fit<R: Rng>(
        features: &[Vec<f32>],
        labels: &[usize],
        num_classes: usize,
        cfg: &TreeConfig,
        rng: &mut R,
    ) -> Result<Self> {
        if features.is_empty() || features.len() != labels.len() {
            return Err(ModelError::BadConfig {
                what: format!("tree fit: {} rows, {} labels", features.len(), labels.len()),
            });
        }
        let num_features = features[0].len();
        if num_features == 0 {
            return Err(ModelError::BadConfig { what: "tree fit: zero features".into() });
        }
        let mut tree = DecisionTree { nodes: Vec::new(), num_classes, num_features };
        let rows: Vec<usize> = (0..features.len()).collect();
        tree.grow(features, labels, rows, 0, cfg, rng);
        Ok(tree)
    }

    fn leaf(&mut self, counts: &[usize]) -> usize {
        let total: usize = counts.iter().sum();
        let dist = if total == 0 {
            vec![1.0 / self.num_classes as f32; self.num_classes]
        } else {
            counts.iter().map(|&c| c as f32 / total as f32).collect()
        };
        self.nodes.push(Node::Leaf { dist });
        self.nodes.len() - 1
    }

    fn grow<R: Rng>(
        &mut self,
        features: &[Vec<f32>],
        labels: &[usize],
        rows: Vec<usize>,
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut R,
    ) -> usize {
        let counts = class_counts(&rows, labels, self.num_classes);
        let impurity = gini(&counts);
        if depth >= cfg.max_depth || rows.len() < cfg.min_split || impurity < 1e-9 {
            return self.leaf(&counts);
        }

        let subset = cfg.feature_subset.unwrap_or(self.num_features).min(self.num_features);
        let mut best: Option<(usize, f32, f64)> = None;
        for _ in 0..subset {
            let f = rng.gen_range(0..self.num_features);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &r in &rows {
                lo = lo.min(features[r][f]);
                hi = hi.max(features[r][f]);
            }
            if hi <= lo {
                continue;
            }
            for _ in 0..cfg.thresholds_per_feature {
                let thr = rng.gen_range(lo..hi);
                let mut lc = vec![0usize; self.num_classes];
                let mut rc = vec![0usize; self.num_classes];
                for &r in &rows {
                    if features[r][f] <= thr {
                        lc[labels[r]] += 1;
                    } else {
                        rc[labels[r]] += 1;
                    }
                }
                let ln: usize = lc.iter().sum();
                let rn: usize = rc.iter().sum();
                if ln == 0 || rn == 0 {
                    continue;
                }
                let n = rows.len() as f64;
                let w = (ln as f64 / n) * gini(&lc) + (rn as f64 / n) * gini(&rc);
                if best.is_none_or(|(_, _, bw)| w < bw) {
                    best = Some((f, thr, w));
                }
            }
        }

        let Some((feature, threshold, w)) = best else {
            return self.leaf(&counts);
        };
        if w >= impurity - 1e-12 {
            return self.leaf(&counts);
        }
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.into_iter().partition(|&r| features[r][feature] <= threshold);
        let left = self.grow(features, labels, left_rows, depth + 1, cfg, rng);
        let right = self.grow(features, labels, right_rows, depth + 1, cfg, rng);
        self.nodes.push(Node::Split { feature, threshold, left, right });
        self.nodes.len() - 1
    }

    /// The root node is always the last node pushed.
    fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The class distribution for one feature vector.
    pub fn predict_dist(&self, row: &[f32]) -> Result<Vec<f32>> {
        if row.len() != self.num_features {
            return Err(ModelError::BadConfig {
                what: format!("expected {} features, got {}", self.num_features, row.len()),
            });
        }
        let mut id = self.root();
        loop {
            match &self.nodes[id] {
                Node::Leaf { dist } => return Ok(dist.clone()),
                Node::Split { feature, threshold, left, right } => {
                    id = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.num_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<usize>) {
        // XOR-ish: class = (x > 0) ⊕ (y > 0); needs depth ≥ 2
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        let mut rng = seeded(1);
        for _ in 0..200 {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let y: f32 = rng.gen_range(-1.0..1.0);
            feats.push(vec![x, y]);
            labels.push(usize::from((x > 0.0) ^ (y > 0.0)));
        }
        (feats, labels)
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[10, 0]).abs() < 1e-12);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!(gini(&[]) == 0.0);
    }

    #[test]
    fn fits_xor_with_enough_depth() {
        let (feats, labels) = xor_data();
        let mut rng = seeded(2);
        let cfg = TreeConfig {
            max_depth: 8,
            min_split: 2,
            feature_subset: None,
            thresholds_per_feature: 12,
        };
        let tree = DecisionTree::fit(&feats, &labels, 2, &cfg, &mut rng).unwrap();
        let mut correct = 0;
        for (f, &l) in feats.iter().zip(labels.iter()) {
            let d = tree.predict_dist(f).unwrap();
            if (d[1] > d[0]) == (l == 1) {
                correct += 1;
            }
        }
        let acc = correct as f64 / feats.len() as f64;
        assert!(acc > 0.9, "xor accuracy {acc}");
    }

    #[test]
    fn depth_zero_gives_prior() {
        let (feats, labels) = xor_data();
        let mut rng = seeded(3);
        let cfg = TreeConfig { max_depth: 0, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&feats, &labels, 2, &cfg, &mut rng).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        let d = tree.predict_dist(&[0.0, 0.0]).unwrap();
        assert!((d[0] + d[1] - 1.0).abs() < 1e-6);
        assert!((d[0] - 0.5).abs() < 0.15, "xor prior is near uniform");
    }

    #[test]
    fn pure_node_stops_early() {
        let feats = vec![vec![0.0f32], vec![1.0], vec![2.0]];
        let labels = vec![1usize, 1, 1];
        let mut rng = seeded(4);
        let tree = DecisionTree::fit(&feats, &labels, 2, &TreeConfig::default(), &mut rng).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_dist(&[5.0]).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn dist_sums_to_one() {
        let (feats, labels) = xor_data();
        let mut rng = seeded(5);
        let tree = DecisionTree::fit(&feats, &labels, 2, &TreeConfig::default(), &mut rng).unwrap();
        for f in feats.iter().take(20) {
            let d = tree.predict_dist(f).unwrap();
            assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_inconsistent_input() {
        let mut rng = seeded(6);
        assert!(DecisionTree::fit(&[], &[], 2, &TreeConfig::default(), &mut rng).is_err());
        let feats = vec![vec![1.0f32]];
        assert!(DecisionTree::fit(&feats, &[0, 1], 2, &TreeConfig::default(), &mut rng).is_err());
        let tree = DecisionTree::fit(&feats, &[0], 1, &TreeConfig::default(), &mut rng).unwrap();
        assert!(tree.predict_dist(&[1.0, 2.0]).is_err());
    }
}
