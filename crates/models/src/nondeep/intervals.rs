//! Random intervals and per-interval summary features.
//!
//! The interval-forest family (TSF \[14\], CIF \[36\]) summarizes random
//! sub-windows of a series with scalar statistics and classifies the
//! resulting feature vectors with trees. TSF uses the classic
//! mean/std/slope triple; CIF extends it with a catch22-inspired catalogue.

use crate::{ModelError, Result};
use lightts_data::TimeSeries;
use rand::Rng;

/// A sub-window `[start, start + len)` of a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First index (inclusive).
    pub start: usize,
    /// Window length.
    pub len: usize,
}

impl Interval {
    /// Samples a random interval of length at least `min_len` inside a
    /// series of length `series_len`.
    pub fn random<R: Rng>(rng: &mut R, series_len: usize, min_len: usize) -> Self {
        let min_len = min_len.min(series_len).max(1);
        let len =
            if series_len > min_len { rng.gen_range(min_len..=series_len) } else { series_len };
        let start = if series_len > len { rng.gen_range(0..=series_len - len) } else { 0 };
        Interval { start, len }
    }
}

/// Samples `count` random intervals for a series of length `series_len`.
pub fn random_intervals<R: Rng>(
    rng: &mut R,
    series_len: usize,
    count: usize,
    min_len: usize,
) -> Vec<Interval> {
    (0..count).map(|_| Interval::random(rng, series_len, min_len)).collect()
}

/// The three classic TSF statistics of one window: mean, standard deviation,
/// and least-squares slope.
pub fn basic_stats(window: &[f32]) -> [f32; 3] {
    let n = window.len() as f32;
    if window.is_empty() {
        return [0.0; 3];
    }
    let mean = window.iter().sum::<f32>() / n;
    let var = window.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    // least-squares slope over t = 0..n-1
    let t_mean = (n - 1.0) / 2.0;
    let mut cov = 0.0f32;
    let mut t_var = 0.0f32;
    for (t, &v) in window.iter().enumerate() {
        let dt = t as f32 - t_mean;
        cov += dt * (v - mean);
        t_var += dt * dt;
    }
    let slope = if t_var > 0.0 { cov / t_var } else { 0.0 };
    [mean, var.sqrt(), slope]
}

/// The extended, catch22-inspired CIF statistics of one window:
/// mean, std, slope, min, max, inter-quartile range, mean-crossing count
/// (normalized), and lag-1 autocorrelation.
pub fn canonical_stats(window: &[f32]) -> [f32; 8] {
    let [mean, std, slope] = basic_stats(window);
    if window.is_empty() {
        return [0.0; 8];
    }
    let mut sorted: Vec<f32> = window.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f32 {
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    };
    let iqr = q(0.75) - q(0.25);
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let crossings =
        window.windows(2).filter(|w| (w[0] - mean).signum() != (w[1] - mean).signum()).count()
            as f32
            / window.len().max(1) as f32;
    let acf1 = {
        let denom: f32 = window.iter().map(|&v| (v - mean) * (v - mean)).sum();
        if denom > 1e-12 && window.len() > 1 {
            let num: f32 = window.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
            num / denom
        } else {
            0.0
        }
    };
    [mean, std, slope, min, max, iqr, crossings, acf1]
}

/// Extracts interval features from every dimension of a series.
///
/// For each `(dimension, interval)` pair the chosen statistic set is
/// appended, producing a fixed-length feature vector usable by trees.
pub fn extract_features(
    series: &TimeSeries,
    intervals: &[Interval],
    canonical: bool,
) -> Result<Vec<f32>> {
    let l = series.len();
    let stats_len = if canonical { 8 } else { 3 };
    let mut out = Vec::with_capacity(series.dims() * intervals.len() * stats_len);
    for m in 0..series.dims() {
        let row = &series.values().data()[m * l..(m + 1) * l];
        for iv in intervals {
            if iv.start + iv.len > l {
                return Err(ModelError::BadConfig {
                    what: format!(
                        "interval [{}, {}) out of series length {l}",
                        iv.start,
                        iv.start + iv.len
                    ),
                });
            }
            let window = &row[iv.start..iv.start + iv.len];
            if canonical {
                out.extend_from_slice(&canonical_stats(window));
            } else {
                out.extend_from_slice(&basic_stats(window));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_tensor::rng::seeded;

    #[test]
    fn random_interval_fits_series() {
        let mut rng = seeded(1);
        for _ in 0..200 {
            let iv = Interval::random(&mut rng, 30, 3);
            assert!(iv.len >= 3 && iv.start + iv.len <= 30);
        }
    }

    #[test]
    fn degenerate_series_length() {
        let mut rng = seeded(2);
        let iv = Interval::random(&mut rng, 1, 3);
        assert_eq!(iv, Interval { start: 0, len: 1 });
    }

    #[test]
    fn basic_stats_of_linear_ramp() {
        let window: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let [mean, std, slope] = basic_stats(&window);
        assert!((mean - 4.5).abs() < 1e-5);
        assert!((slope - 1.0).abs() < 1e-5);
        assert!(std > 0.0);
    }

    #[test]
    fn basic_stats_of_constant() {
        let [mean, std, slope] = basic_stats(&[2.0; 8]);
        assert_eq!(mean, 2.0);
        assert_eq!(std, 0.0);
        assert_eq!(slope, 0.0);
    }

    #[test]
    fn canonical_stats_capture_oscillation() {
        let slow: Vec<f32> = (0..32).map(|i| (i as f32 * 0.1).sin()).collect();
        let fast: Vec<f32> = (0..32).map(|i| (i as f32 * 2.0).sin()).collect();
        let s = canonical_stats(&slow);
        let f = canonical_stats(&fast);
        // fast oscillation: more crossings, lower lag-1 autocorrelation
        assert!(f[6] > s[6], "crossings {} !> {}", f[6], s[6]);
        assert!(f[7] < s[7], "acf1 {} !< {}", f[7], s[7]);
    }

    #[test]
    fn extract_features_shape() {
        let ts = TimeSeries::univariate((0..20).map(|i| i as f32).collect()).unwrap();
        let ivs = vec![Interval { start: 0, len: 10 }, Interval { start: 5, len: 5 }];
        assert_eq!(extract_features(&ts, &ivs, false).unwrap().len(), 6);
        assert_eq!(extract_features(&ts, &ivs, true).unwrap().len(), 16);
    }

    #[test]
    fn extract_rejects_out_of_range() {
        let ts = TimeSeries::univariate(vec![0.0; 8]).unwrap();
        let ivs = vec![Interval { start: 5, len: 5 }];
        assert!(extract_features(&ts, &ivs, false).is_err());
    }
}
