//! Interval forests: Time Series Forest (TSF, \[14\]) and the shared machinery
//! reused by the Canonical Interval Forest.

use crate::nondeep::intervals::{extract_features, random_intervals, Interval};
use crate::nondeep::tree::{DecisionTree, TreeConfig};
use crate::{Classifier, ModelError, Result};
use lightts_data::{LabeledDataset, TimeSeries};
use lightts_tensor::rng::{derive_seed, seeded};
use lightts_tensor::Tensor;

/// Hyper-parameters of an interval forest.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Random intervals per tree.
    pub intervals_per_tree: usize,
    /// Minimum interval length.
    pub min_interval_len: usize,
    /// Tree growth parameters.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 16,
            intervals_per_tree: 8,
            min_interval_len: 3,
            tree: TreeConfig {
                max_depth: 8,
                min_split: 4,
                feature_subset: Some(8),
                thresholds_per_feature: 4,
            },
        }
    }
}

/// One forest member: its sampled intervals and the tree grown on their
/// features.
#[derive(Debug, Clone)]
struct Member {
    intervals: Vec<Interval>,
    tree: DecisionTree,
}

/// The generic interval forest underlying TSF and CIF.
#[derive(Debug, Clone)]
pub(crate) struct IntervalForest {
    members: Vec<Member>,
    num_classes: usize,
    canonical: bool,
    name: String,
}

/// Converts batch row `bi` of `[batch, dims, length]` into a `TimeSeries`.
pub(crate) fn batch_row_to_series(inputs: &Tensor, bi: usize) -> Result<TimeSeries> {
    let (m, l) = (inputs.dims()[1], inputs.dims()[2]);
    let off = bi * m * l;
    let values = Tensor::from_vec(inputs.data()[off..off + m * l].to_vec(), &[m, l])?;
    Ok(TimeSeries::new(values)?)
}

impl IntervalForest {
    pub(crate) fn fit(
        name: &str,
        train: &LabeledDataset,
        cfg: &ForestConfig,
        canonical: bool,
        seed: u64,
    ) -> Result<Self> {
        if cfg.n_trees == 0 || cfg.intervals_per_tree == 0 {
            return Err(ModelError::BadConfig { what: "forest: zero trees or intervals".into() });
        }
        let labels: Vec<usize> = train.labels().to_vec();
        let mut members = Vec::with_capacity(cfg.n_trees);
        for t in 0..cfg.n_trees {
            let mut rng = seeded(derive_seed(seed, t as u64));
            let intervals = random_intervals(
                &mut rng,
                train.series_len(),
                cfg.intervals_per_tree,
                cfg.min_interval_len,
            );
            let mut feats = Vec::with_capacity(train.len());
            for i in 0..train.len() {
                feats.push(extract_features(train.series(i)?, &intervals, canonical)?);
            }
            let tree =
                DecisionTree::fit(&feats, &labels, train.num_classes(), &cfg.tree, &mut rng)?;
            members.push(Member { intervals, tree });
        }
        Ok(IntervalForest {
            members,
            num_classes: train.num_classes(),
            canonical,
            name: name.to_string(),
        })
    }

    fn predict_series(&self, series: &TimeSeries) -> Result<Vec<f32>> {
        let mut acc = vec![0.0f32; self.num_classes];
        for member in &self.members {
            let feats = extract_features(series, &member.intervals, self.canonical)?;
            let dist = member.tree.predict_dist(&feats)?;
            for (a, d) in acc.iter_mut().zip(dist.iter()) {
                *a += d;
            }
        }
        let n = self.members.len() as f32;
        for a in &mut acc {
            *a /= n;
        }
        Ok(acc)
    }

    pub(crate) fn predict_proba_impl(&self, inputs: &Tensor) -> Result<Tensor> {
        let b = inputs.dims()[0];
        let mut out = Vec::with_capacity(b * self.num_classes);
        for bi in 0..b {
            let series = batch_row_to_series(inputs, bi)?;
            out.extend(self.predict_series(&series)?);
        }
        Ok(Tensor::from_vec(out, &[b, self.num_classes])?)
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn num_classes(&self) -> usize {
        self.num_classes
    }

    pub(crate) fn num_trees(&self) -> usize {
        self.members.len()
    }
}

/// The Time Series Forest classifier (\[14\]): random intervals summarized by
/// mean, standard deviation, and slope; one randomized tree per interval
/// set; forest-averaged class distributions.
#[derive(Debug, Clone)]
pub struct TimeSeriesForest {
    inner: IntervalForest,
}

impl TimeSeriesForest {
    /// Trains a forest on `train`.
    pub fn fit(train: &LabeledDataset, cfg: &ForestConfig, seed: u64) -> Result<Self> {
        Ok(TimeSeriesForest { inner: IntervalForest::fit("Forest", train, cfg, false, seed)? })
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.inner.num_trees()
    }
}

impl Classifier for TimeSeriesForest {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict_proba(&self, inputs: &Tensor) -> Result<Tensor> {
        self.inner.predict_proba_impl(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use lightts_data::synth::{Generator, SynthConfig};

    fn data(classes: usize, n: usize, difficulty: f32, seed: u64) -> LabeledDataset {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 40, difficulty, waveforms: 3 },
            seed,
        );
        gen.split("forest-test", n, seed + 1).unwrap()
    }

    #[test]
    fn forest_learns_easy_data() {
        let train = data(3, 90, 0.1, 30);
        let test = data(3, 45, 0.1, 30); // same generator seed ⇒ same prototypes
        let forest = TimeSeriesForest::fit(&train, &ForestConfig::default(), 7).unwrap();
        let batch = test.full_batch().unwrap();
        let probs = forest.predict_proba(&batch.inputs).unwrap();
        let acc = accuracy(&probs, &batch.labels).unwrap();
        assert!(acc > 0.6, "forest accuracy {acc}");
    }

    #[test]
    fn distributions_are_normalized() {
        let train = data(4, 40, 0.3, 31);
        let forest = TimeSeriesForest::fit(&train, &ForestConfig::default(), 8).unwrap();
        let batch = train.full_batch().unwrap();
        let probs = forest.predict_proba(&batch.inputs).unwrap();
        for r in 0..probs.dims()[0] {
            let s: f32 = probs.row(r).unwrap().data().iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn seeds_change_the_forest() {
        let train = data(3, 30, 0.4, 32);
        let f1 = TimeSeriesForest::fit(&train, &ForestConfig::default(), 1).unwrap();
        let f2 = TimeSeriesForest::fit(&train, &ForestConfig::default(), 2).unwrap();
        let batch = train.full_batch().unwrap();
        let p1 = f1.predict_proba(&batch.inputs).unwrap();
        let p2 = f2.predict_proba(&batch.inputs).unwrap();
        assert_ne!(p1, p2, "different seeds should give diverse members");
    }

    #[test]
    fn zero_trees_rejected() {
        let train = data(2, 10, 0.2, 33);
        let cfg = ForestConfig { n_trees: 0, ..ForestConfig::default() };
        assert!(TimeSeriesForest::fit(&train, &cfg, 1).is_err());
    }
}
