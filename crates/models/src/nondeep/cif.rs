//! The Canonical Interval Forest classifier (CIF, \[36\]).
//!
//! CIF augments the Time Series Forest recipe with a richer per-interval
//! feature catalogue (our catch22-inspired set in
//! [`canonical_stats`](crate::nondeep::intervals::canonical_stats)): interval
//! location and summary statistics feed randomized trees whose class
//! distributions are forest-averaged.

use crate::nondeep::forest::{ForestConfig, IntervalForest};
use crate::{Classifier, Result};
use lightts_data::LabeledDataset;
use lightts_tensor::Tensor;

/// The Canonical Interval Forest classifier.
#[derive(Debug, Clone)]
pub struct CanonicalIntervalForest {
    inner: IntervalForest,
}

impl CanonicalIntervalForest {
    /// Trains a CIF on `train` using the canonical feature catalogue.
    pub fn fit(train: &LabeledDataset, cfg: &ForestConfig, seed: u64) -> Result<Self> {
        Ok(CanonicalIntervalForest { inner: IntervalForest::fit("CIF", train, cfg, true, seed)? })
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.inner.num_trees()
    }
}

impl Classifier for CanonicalIntervalForest {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict_proba(&self, inputs: &Tensor) -> Result<Tensor> {
        self.inner.predict_proba_impl(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use lightts_data::synth::{Generator, SynthConfig};

    fn data(classes: usize, n: usize, difficulty: f32, seed: u64) -> LabeledDataset {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 40, difficulty, waveforms: 3 },
            seed,
        );
        gen.split("cif-test", n, seed + 1).unwrap()
    }

    #[test]
    fn cif_learns_easy_data() {
        let train = data(3, 90, 0.1, 40);
        let test = data(3, 45, 0.1, 40);
        let cif = CanonicalIntervalForest::fit(&train, &ForestConfig::default(), 7).unwrap();
        let batch = test.full_batch().unwrap();
        let probs = cif.predict_proba(&batch.inputs).unwrap();
        let acc = accuracy(&probs, &batch.labels).unwrap();
        assert!(acc > 0.6, "CIF accuracy {acc}");
    }

    #[test]
    fn cif_name_and_classes() {
        let train = data(4, 24, 0.3, 41);
        let cif = CanonicalIntervalForest::fit(&train, &ForestConfig::default(), 1).unwrap();
        assert_eq!(cif.name(), "CIF");
        assert_eq!(cif.num_classes(), 4);
        assert_eq!(cif.num_trees(), ForestConfig::default().n_trees);
    }
}
