//! The Temporal Dictionary Ensemble classifier (TDE, \[38\]).
//!
//! TDE "transforms a time series into a bag of segments of a given size and
//! discretizes them as words. Then, it draws a histogram for the word
//! counting and applies a nearest neighbor algorithm to classify the
//! transformed series" (paper Section 4.1.4). We implement that pipeline:
//! sliding windows → piecewise-aggregate approximation (PAA) → per-segment
//! quantile alphabets learned from the training data → word histograms →
//! weighted k-NN over histograms, producing class distributions.
//!
//! Randomized window size and alphabet parameters (per member seed) provide
//! the diversity an N-member TDE teacher ensemble needs.

use crate::nondeep::forest::batch_row_to_series;
use crate::{Classifier, ModelError, Result};
use lightts_data::{LabeledDataset, TimeSeries};
use lightts_tensor::rng::seeded;
use lightts_tensor::Tensor;
use rand::Rng;

/// TDE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TdeConfig {
    /// Sliding-window length (`None` = randomized from the series length).
    pub window: Option<usize>,
    /// PAA segments per window (word length).
    pub segments: usize,
    /// Alphabet size per segment.
    pub alphabet: usize,
    /// Neighbors for the k-NN vote.
    pub k: usize,
}

impl Default for TdeConfig {
    fn default() -> Self {
        TdeConfig { window: None, segments: 4, alphabet: 4, k: 5 }
    }
}

/// A trained Temporal Dictionary Ensemble member.
#[derive(Debug, Clone)]
pub struct TemporalDictionaryEnsemble {
    window: usize,
    segments: usize,
    alphabet: usize,
    k: usize,
    /// Per-(dim, segment) quantile boundaries: `alphabet − 1` thresholds.
    bins: Vec<Vec<f32>>,
    dims: usize,
    train_hists: Vec<Vec<f32>>,
    train_labels: Vec<usize>,
    num_classes: usize,
}

impl TemporalDictionaryEnsemble {
    /// Trains a TDE member on `train`. `seed` randomizes the window length
    /// when the config leaves it unspecified.
    pub fn fit(train: &LabeledDataset, cfg: &TdeConfig, seed: u64) -> Result<Self> {
        if cfg.segments == 0 || cfg.alphabet < 2 || cfg.k == 0 {
            return Err(ModelError::BadConfig { what: "TDE: bad segments/alphabet/k".into() });
        }
        let l = train.series_len();
        let mut rng = seeded(seed);
        let window = cfg
            .window
            .unwrap_or_else(|| {
                let lo = (l / 6).max(cfg.segments).max(4);
                let hi = (l / 2).max(lo + 1);
                rng.gen_range(lo..hi)
            })
            .clamp(cfg.segments, l);
        let dims = train.dims();

        // Learn per-(dim, segment) alphabets from the pooled training PAA
        // values (quantile binning).
        let mut pooled: Vec<Vec<f32>> = vec![Vec::new(); dims * cfg.segments];
        for i in 0..train.len() {
            let s = train.series(i)?;
            for_each_window_paa(s, window, cfg.segments, |dim, seg, v| {
                pooled[dim * cfg.segments + seg].push(v);
            });
        }
        let mut bins = Vec::with_capacity(pooled.len());
        for values in &mut pooled {
            values.sort_by(|a, b| a.total_cmp(b));
            let mut b = Vec::with_capacity(cfg.alphabet - 1);
            for q in 1..cfg.alphabet {
                if values.is_empty() {
                    b.push(0.0);
                } else {
                    let idx = (values.len() - 1) * q / cfg.alphabet;
                    b.push(values[idx]);
                }
            }
            bins.push(b);
        }

        let mut me = TemporalDictionaryEnsemble {
            window,
            segments: cfg.segments,
            alphabet: cfg.alphabet,
            k: cfg.k,
            bins,
            dims,
            train_hists: Vec::new(),
            train_labels: train.labels().to_vec(),
            num_classes: train.num_classes(),
        };
        me.train_hists = (0..train.len())
            .map(|i| me.histogram(train.series(i).expect("index in range")))
            .collect();
        Ok(me)
    }

    /// The (possibly randomized) window length in use.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The word-histogram dimensionality: `dims × alphabet^segments`.
    pub fn histogram_len(&self) -> usize {
        self.dims * self.alphabet.pow(self.segments as u32)
    }

    /// Computes the normalized word histogram of a series.
    fn histogram(&self, series: &TimeSeries) -> Vec<f32> {
        let words_per_dim = self.alphabet.pow(self.segments as u32);
        let mut hist = vec![0.0f32; self.dims * words_per_dim];
        let mut digits = vec![0usize; self.dims * self.segments];
        for_each_window_paa(series, self.window, self.segments, |dim, seg, v| {
            let b = &self.bins[dim * self.segments + seg];
            let digit = b.iter().filter(|&&thr| v > thr).count();
            digits[dim * self.segments + seg] = digit;
            if seg == self.segments - 1 {
                // window complete for this dim: commit the word
                let mut word = 0usize;
                for s in 0..self.segments {
                    word = word * self.alphabet + digits[dim * self.segments + s];
                }
                hist[dim * words_per_dim + word] += 1.0;
            }
        });
        let total: f32 = hist.iter().sum();
        if total > 0.0 {
            for h in &mut hist {
                *h /= total;
            }
        }
        hist
    }

    fn predict_series(&self, series: &TimeSeries) -> Vec<f32> {
        let h = self.histogram(series);
        // histogram-intersection similarity to every training series
        let mut sims: Vec<(f32, usize)> = self
            .train_hists
            .iter()
            .zip(self.train_labels.iter())
            .map(|(th, &l)| {
                let sim: f32 = th.iter().zip(h.iter()).map(|(&a, &b)| a.min(b)).sum();
                (sim, l)
            })
            .collect();
        sims.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut dist = vec![0.0f32; self.num_classes];
        let mut weight_sum = 0.0f32;
        for &(sim, label) in sims.iter().take(self.k) {
            let w = sim + 1e-6;
            dist[label] += w;
            weight_sum += w;
        }
        if weight_sum > 0.0 {
            for d in &mut dist {
                *d /= weight_sum;
            }
        } else {
            dist.fill(1.0 / self.num_classes as f32);
        }
        dist
    }
}

/// Iterates over all sliding windows (stride `window / 2`, minimum 1) of all
/// dimensions, reporting the PAA value of every segment.
///
/// The callback receives `(dim, segment, paa_value)` in segment order per
/// window, so callers can assemble words when `segment == segments − 1`.
fn for_each_window_paa(
    series: &TimeSeries,
    window: usize,
    segments: usize,
    mut f: impl FnMut(usize, usize, f32),
) {
    let l = series.len();
    let window = window.min(l);
    let stride = (window / 2).max(1);
    for m in 0..series.dims() {
        let row = &series.values().data()[m * l..(m + 1) * l];
        let mut start = 0usize;
        loop {
            let win = &row[start..start + window];
            for seg in 0..segments {
                let lo = seg * window / segments;
                let hi = ((seg + 1) * window / segments).max(lo + 1).min(window);
                let v = win[lo..hi].iter().sum::<f32>() / (hi - lo) as f32;
                f(m, seg, v);
            }
            if start + window >= l {
                break;
            }
            start = (start + stride).min(l - window);
        }
    }
}

impl Classifier for TemporalDictionaryEnsemble {
    fn name(&self) -> &str {
        "TDE"
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn predict_proba(&self, inputs: &Tensor) -> Result<Tensor> {
        let b = inputs.dims()[0];
        let mut out = Vec::with_capacity(b * self.num_classes);
        for bi in 0..b {
            let series = batch_row_to_series(inputs, bi)?;
            out.extend(self.predict_series(&series));
        }
        Ok(Tensor::from_vec(out, &[b, self.num_classes])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use lightts_data::synth::{Generator, SynthConfig};

    fn data(classes: usize, n: usize, difficulty: f32, seed: u64) -> LabeledDataset {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 48, difficulty, waveforms: 3 },
            seed,
        );
        gen.split("tde-test", n, seed + 1).unwrap()
    }

    #[test]
    fn tde_learns_easy_data() {
        let train = data(3, 90, 0.1, 50);
        let test = data(3, 45, 0.1, 50);
        let tde = TemporalDictionaryEnsemble::fit(&train, &TdeConfig::default(), 3).unwrap();
        let batch = test.full_batch().unwrap();
        let probs = tde.predict_proba(&batch.inputs).unwrap();
        let acc = accuracy(&probs, &batch.labels).unwrap();
        assert!(acc > 0.55, "TDE accuracy {acc}");
    }

    #[test]
    fn histograms_are_normalized() {
        let train = data(2, 20, 0.3, 51);
        let tde = TemporalDictionaryEnsemble::fit(&train, &TdeConfig::default(), 4).unwrap();
        for h in &tde.train_hists {
            let s: f32 = h.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
            assert_eq!(h.len(), tde.histogram_len());
        }
    }

    #[test]
    fn predictions_are_distributions() {
        let train = data(4, 40, 0.4, 52);
        let tde = TemporalDictionaryEnsemble::fit(&train, &TdeConfig::default(), 5).unwrap();
        let batch = train.full_batch().unwrap();
        let probs = tde.predict_proba(&batch.inputs).unwrap();
        for r in 0..probs.dims()[0] {
            let s: f32 = probs.row(r).unwrap().data().iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn random_windows_differ_across_seeds() {
        let train = data(2, 20, 0.3, 53);
        let t1 = TemporalDictionaryEnsemble::fit(&train, &TdeConfig::default(), 10).unwrap();
        let t2 = TemporalDictionaryEnsemble::fit(&train, &TdeConfig::default(), 11).unwrap();
        // With randomized windows, members usually differ (diversity source).
        assert!(
            t1.window() != t2.window() || t1.train_hists != t2.train_hists,
            "TDE members with different seeds should differ"
        );
    }

    #[test]
    fn rejects_bad_config() {
        let train = data(2, 10, 0.3, 54);
        let cfg = TdeConfig { segments: 0, ..TdeConfig::default() };
        assert!(TemporalDictionaryEnsemble::fit(&train, &cfg, 1).is_err());
        let cfg = TdeConfig { alphabet: 1, ..TdeConfig::default() };
        assert!(TemporalDictionaryEnsemble::fit(&train, &cfg, 1).is_err());
    }

    #[test]
    fn fixed_window_is_respected() {
        let train = data(2, 16, 0.3, 55);
        let cfg = TdeConfig { window: Some(12), ..TdeConfig::default() };
        let tde = TemporalDictionaryEnsemble::fit(&train, &cfg, 1).unwrap();
        assert_eq!(tde.window(), 12);
    }
}
