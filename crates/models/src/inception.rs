//! The InceptionTime classifier (paper Section 2.2).
//!
//! An InceptionTime model is a stack of *blocks*; each block applies several
//! same-padded 1-D convolutions **in parallel** to the block input — the
//! filter length halving from layer to layer (e.g. 40, 20, 10) so patterns of
//! different time spans are captured — and concatenates their outputs
//! channel-wise (`T^(i) = ∥_k T^(i-1) * F_k`). Batch-norm + ReLU follow each
//! block; global average pooling and a fully-connected softmax head produce
//! the class distribution.
//!
//! The same type serves as the full-precision teacher (32-bit everywhere)
//! and the quantized student: every block carries its own bit-width, exactly
//! the `(L_j, F_j, W_j)` per-block search space of Section 3.3.1.

use crate::{Classifier, ModelError, Result};
use lightts_data::LabeledDataset;
use lightts_nn::layers::{BatchNorm1d, Conv1d, Linear};
use lightts_nn::optim::{Adam, Optimizer, Sgd};
use lightts_nn::{size, Bindings, Mode, ParamStore};
use lightts_tensor::rng::seeded;
use lightts_tensor::tape::{Tape, Var};
use lightts_tensor::Tensor;
use rand::Rng;

/// Configuration of one InceptionTime block: the `(L_j, F_j, W_j)` tuple of
/// the paper's student-setting encoding (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Number of parallel convolution layers `L_j`.
    pub layers: usize,
    /// Filter length of the first layer `F_j`; subsequent layers halve it.
    pub filter_len: usize,
    /// Storage bit-width `W_j` of this block's parameters.
    pub bits: u8,
}

impl BlockSpec {
    /// The kernel length of layer `j` within the block: `max(1, F >> j)`,
    /// additionally capped at the series length so degenerate kernels are
    /// never built.
    pub fn kernel(&self, layer: usize, series_len: usize) -> usize {
        (self.filter_len >> layer).max(1).min(series_len.max(1))
    }
}

/// Full configuration of an InceptionTime model.
#[derive(Debug, Clone, PartialEq)]
pub struct InceptionConfig {
    /// Per-block specs.
    pub blocks: Vec<BlockSpec>,
    /// Convolution filters (output channels) per layer.
    pub filters: usize,
    /// Input dimensionality `M` of the series.
    pub in_dims: usize,
    /// Series length (used to cap kernels).
    pub in_len: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl InceptionConfig {
    /// The paper's default full-precision teacher: 3 blocks of 3 layers,
    /// first-layer filter length 40, 32-bit parameters.
    pub fn teacher(in_dims: usize, in_len: usize, num_classes: usize, filters: usize) -> Self {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 3, filter_len: 40, bits: 32 }; 3],
            filters,
            in_dims,
            in_len,
            num_classes,
        }
    }

    /// The Problem-Scenario-1 student: 3 blocks × 3 layers, a uniform
    /// bit-width, filter length 40 (paper Section 4.2.1).
    pub fn student(
        in_dims: usize,
        in_len: usize,
        num_classes: usize,
        filters: usize,
        bits: u8,
    ) -> Self {
        InceptionConfig {
            blocks: vec![BlockSpec { layers: 3, filter_len: 40, bits }; 3],
            filters,
            in_dims,
            in_len,
            num_classes,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.blocks.is_empty() {
            return Err(ModelError::BadConfig { what: "no blocks".into() });
        }
        if self.filters == 0 || self.in_dims == 0 || self.num_classes == 0 || self.in_len == 0 {
            return Err(ModelError::BadConfig { what: "zero-sized dimension".into() });
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.layers == 0 || b.filter_len == 0 {
                return Err(ModelError::BadConfig { what: format!("block {i} empty") });
            }
            if b.bits == 0 || b.bits > 32 {
                return Err(ModelError::BadConfig {
                    what: format!("block {i}: bits {} out of 1..=32", b.bits),
                });
            }
        }
        Ok(())
    }

    /// Input channels of block `i`.
    fn block_in_channels(&self, i: usize) -> usize {
        if i == 0 {
            self.in_dims
        } else {
            self.blocks[i - 1].layers * self.filters
        }
    }

    /// Analytic model size in bits, matching
    /// [`ParamStore::size_bits`](lightts_nn::ParamStore::size_bits) of the
    /// instantiated model (verified by test). Batch-norm parameters are
    /// counted at 32 bits; the FC head uses the last block's bit-width.
    pub fn size_bits(&self) -> u64 {
        let mut bits = 0u64;
        for (i, b) in self.blocks.iter().enumerate() {
            let cin = self.block_in_channels(i);
            for j in 0..b.layers {
                let k = b.kernel(j, self.in_len);
                bits += size::conv1d_params(cin, self.filters, k) as u64 * u64::from(b.bits);
            }
            bits += size::batchnorm_params(b.layers * self.filters) as u64 * 32;
        }
        let last_c = self.blocks.last().map_or(0, |b| b.layers * self.filters);
        let fc_bits = self.blocks.last().map_or(32, |b| b.bits);
        bits += size::linear_params(last_c, self.num_classes) as u64 * u64::from(fc_bits);
        bits
    }

    /// Analytic size in kilobytes.
    pub fn size_kb(&self) -> f64 {
        size::bits_to_kb(self.size_bits())
    }
}

/// Hyper-parameters for supervised training (used for teachers; students are
/// trained by the distillation crate with composite losses).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Learning rate (paper: 0.01 for teachers).
    pub lr: f32,
    /// Use Adam (teachers) rather than SGD.
    pub adam: bool,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 60, batch_size: 64, lr: 0.01, adam: true, seed: 7 }
    }
}

#[derive(Debug, Clone)]
struct Block {
    convs: Vec<Conv1d>,
    bn: BatchNorm1d,
}

/// An InceptionTime classifier instance.
#[derive(Debug, Clone)]
pub struct InceptionTime {
    config: InceptionConfig,
    store: ParamStore,
    blocks: Vec<Block>,
    fc: Linear,
    name: String,
}

impl InceptionTime {
    /// Builds a randomly initialized model.
    pub fn new<R: Rng>(config: InceptionConfig, rng: &mut R) -> Result<Self> {
        config.validate()?;
        let mut store = ParamStore::new();
        let mut blocks = Vec::with_capacity(config.blocks.len());
        for (i, spec) in config.blocks.iter().enumerate() {
            let cin = config.block_in_channels(i);
            let mut convs = Vec::with_capacity(spec.layers);
            for j in 0..spec.layers {
                let k = spec.kernel(j, config.in_len);
                convs.push(Conv1d::new(
                    &mut store,
                    rng,
                    &format!("block{i}.conv{j}"),
                    cin,
                    config.filters,
                    k,
                    spec.bits,
                )?);
            }
            let bn = BatchNorm1d::new(
                &mut store,
                &format!("block{i}.bn"),
                spec.layers * config.filters,
            )?;
            blocks.push(Block { convs, bn });
        }
        let last_c = config.blocks.last().map_or(0, |b| b.layers * config.filters);
        let fc_bits = config.blocks.last().map_or(32, |b| b.bits);
        let fc = Linear::with_name(&mut store, rng, "fc", last_c, config.num_classes, fc_bits)?;
        Ok(InceptionTime { config, store, blocks, fc, name: "InceptionTime".to_string() })
    }

    /// The model configuration.
    pub fn config(&self) -> &InceptionConfig {
        &self.config
    }

    /// The parameter store (for optimizers and size accounting).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Instantiated model size in bits.
    pub fn size_bits(&self) -> u64 {
        self.store.size_bits()
    }

    /// Training-path forward pass producing logits `[batch, classes]` on the
    /// tape. `mode` selects batch vs. running statistics for batch norm.
    pub fn forward_train(
        &mut self,
        tape: &mut Tape,
        bind: &mut Bindings,
        inputs: &Tensor,
        mode: Mode,
    ) -> Result<Var> {
        let mut x = tape.constant(inputs.clone());
        // Split borrows: blocks need &mut for BN running stats, store is read.
        let store = &self.store;
        for block in &mut self.blocks {
            let mut outs = Vec::with_capacity(block.convs.len());
            for conv in &block.convs {
                outs.push(conv.forward(tape, bind, store, x)?);
            }
            let cat = tape.concat_channels(&outs)?;
            let normed = block.bn.forward(tape, bind, store, cat, mode)?;
            x = tape.relu(normed)?;
        }
        let pooled = tape.gap(x)?;
        Ok(self.fc.forward(tape, bind, store, pooled)?)
    }

    /// Inference logits on plain tensors (running statistics, quantized
    /// weights).
    pub fn logits(&self, inputs: &Tensor) -> Result<Tensor> {
        let mut x = inputs.clone();
        for block in &self.blocks {
            let mut outs = Vec::with_capacity(block.convs.len());
            for conv in &block.convs {
                outs.push(conv.eval_forward(&self.store, &x)?);
            }
            let cat = concat_channels_plain(&outs)?;
            let normed = block.bn.eval_forward(&self.store, &cat)?;
            x = normed.map(|v| v.max(0.0));
        }
        let pooled = gap_plain(&x)?;
        Ok(self.fc.eval_forward(&self.store, &pooled)?)
    }

    /// Compiles the model into a tape-free [`InferencePlan`](crate::inference::InferencePlan)
    /// (pre-quantized weights, folded batch-norm, reusable scratch).
    ///
    /// The plan's outputs are bitwise identical to [`Self::logits`] /
    /// [`Classifier::predict_proba`]; see [`crate::inference`] for why.
    pub fn compile(&self) -> Result<crate::inference::InferencePlan> {
        use crate::inference::{PlanBlock, PlanConv};
        let mut sp = lightts_obs::span!("inference.compile", {
            blocks: self.blocks.len(),
            size_bits: self.size_bits(),
        });
        lightts_obs::global().counter("inference.plans_compiled").inc();
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let mut convs = Vec::with_capacity(block.convs.len());
            for conv in &block.convs {
                let (w, b) = conv.quantized_params(&self.store)?;
                convs.push(PlanConv { weight: w, bias: b.into_vec() });
            }
            let (bn_scale, bn_shift) = block.bn.folded_affine(&self.store)?;
            blocks.push(PlanBlock { convs, bn_scale, bn_shift });
        }
        let (fw, fb) = self.fc.quantized_params(&self.store)?;
        sp.record("classes", self.config.num_classes);
        Ok(crate::inference::InferencePlan::from_parts(
            blocks,
            fw.into_vec(),
            fb.into_vec(),
            self.fc.in_features(),
            self.config.in_dims,
            self.config.in_len,
            self.config.num_classes,
        ))
    }

    /// Compiles the model into a true-int8
    /// [`QuantizedPlan`](crate::qinference::QuantizedPlan): every conv / FC
    /// weight is quantized once to `i8` codes with per-output-channel
    /// symmetric scales (from the same fake-quantized parameters the f32
    /// plan hoists, so QAT-trained grids carry over), batch-norm is folded
    /// exactly as in [`Self::compile`], and inference runs the integer
    /// kernels.
    ///
    /// Requires ≤ 8-bit quantization metadata on every quantized layer:
    /// a model configured with 16- or 32-bit blocks (or FC) was never
    /// trained to tolerate 8-bit codes, so compiling it to i8 is refused
    /// with [`ModelError::UnsupportedPlan`] rather than served with silent
    /// accuracy loss.
    pub fn compile_quantized(&self) -> Result<crate::qinference::QuantizedPlan> {
        use crate::qinference::{QPlanBlock, QPlanConv, QuantizedPlan};
        use lightts_tensor::qint::QuantizedMatrix;
        for (i, block) in self.blocks.iter().enumerate() {
            for conv in &block.convs {
                if conv.bits() > 8 {
                    return Err(ModelError::UnsupportedPlan {
                        what: format!(
                            "i8 plan: block {i} convs trained at {} bits (> 8); \
                             retrain with bits ≤ 8 or serve the f32 plan",
                            conv.bits()
                        ),
                    });
                }
            }
        }
        if self.fc.bits() > 8 {
            return Err(ModelError::UnsupportedPlan {
                what: format!(
                    "i8 plan: FC head trained at {} bits (> 8); \
                     retrain with bits ≤ 8 or serve the f32 plan",
                    self.fc.bits()
                ),
            });
        }
        let mut sp = lightts_obs::span!("inference.compile_i8", {
            blocks: self.blocks.len(),
            size_bits: self.size_bits(),
        });
        lightts_obs::global().counter("inference.quantized_plans_compiled").inc();
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let mut convs = Vec::with_capacity(block.convs.len());
            for conv in &block.convs {
                let (w, b) = conv.quantized_params(&self.store)?;
                let (filters, cin, k) = (w.dims()[0], w.dims()[1], w.dims()[2]);
                let weight = QuantizedMatrix::quantize_rows_symmetric(w.data(), filters, cin * k)?;
                convs.push(QPlanConv { weight, kernel: k, bias: b.into_vec() });
            }
            let (bn_scale, bn_shift) = block.bn.folded_affine(&self.store)?;
            blocks.push(QPlanBlock { convs, bn_scale, bn_shift });
        }
        let (fw, fb) = self.fc.quantized_params(&self.store)?;
        // The stored FC weight is `[fc_in, num_classes]`; the integer GEMM
        // wants class rows with a contiguous reduction axis, so transpose
        // once here.
        let fin = self.fc.in_features();
        let nc = self.config.num_classes;
        let fwd = fw.data();
        let mut fwt = vec![0.0f32; nc * fin];
        for i in 0..fin {
            for c in 0..nc {
                fwt[c * fin + i] = fwd[i * nc + c];
            }
        }
        let fc_weight = QuantizedMatrix::quantize_rows_symmetric(&fwt, nc, fin)?;
        sp.record("classes", nc);
        Ok(QuantizedPlan::from_parts(
            blocks,
            fc_weight,
            fb.into_vec(),
            fin,
            self.config.in_dims,
            self.config.in_len,
            nc,
        ))
    }

    /// Channel count of each block's batch-norm layer, in block order.
    pub fn bn_channel_counts(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.bn.channels()).collect()
    }

    /// Overwrites block `i`'s batch-norm running statistics (model surgery
    /// and tests that need non-trivial statistics without training).
    pub fn set_bn_running_stats(&mut self, block: usize, mean: &[f32], var: &[f32]) -> Result<()> {
        let b = self
            .blocks
            .get_mut(block)
            .ok_or_else(|| ModelError::BadConfig { what: format!("no block {block}") })?;
        Ok(b.bn.set_running_stats(mean, var)?)
    }

    /// Supervised training with cross-entropy (used for teachers).
    ///
    /// Returns the mean training loss of the final epoch.
    pub fn fit(&mut self, train: &LabeledDataset, cfg: &TrainConfig) -> Result<f32> {
        let mut rng = seeded(cfg.seed);
        let mut adam = Adam::new(cfg.lr);
        let mut sgd = Sgd::new(cfg.lr, 0.9);
        let mut last_loss = f32::INFINITY;
        // One tape and one binding set for the whole fit: `reset` between
        // mini-batches re-records into the retained node storage, so the
        // steady-state step allocates nothing (see `lightts_tensor::pool`).
        let mut tape = Tape::new();
        let mut bind = Bindings::new();
        for _epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in train.minibatches(&mut rng, cfg.batch_size)? {
                tape.reset();
                bind.reset();
                let logits =
                    self.forward_train(&mut tape, &mut bind, &batch.inputs, Mode::Train)?;
                let logp = tape.log_softmax(logits)?;
                let loss = tape.nll_mean(logp, &batch.labels)?;
                epoch_loss += tape.value(loss)?.item()?;
                batches += 1;
                let grads = tape.backward(loss)?;
                let pairs = bind.collect_grads(grads);
                if cfg.adam {
                    adam.step(&mut self.store, &pairs)?;
                } else {
                    sgd.step(&mut self.store, &pairs)?;
                }
            }
            last_loss = epoch_loss / batches.max(1) as f32;
        }
        Ok(last_loss)
    }

    /// Overrides the display name (e.g. `"teacher-3"`).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Serializes the model — configuration, batch-norm running statistics,
    /// and bit-packed quantized parameters — into a deployable byte buffer.
    ///
    /// A 4-bit student really occupies ≈ 4 bits per parameter on the wire
    /// (see [`lightts_nn::serialize`]); the loaded model's inference path is
    /// bit-identical to the saved one.
    pub fn save_bytes(&self) -> Result<Vec<u8>> {
        self.save_with(b"LTIM", |store| Ok(lightts_nn::serialize::serialize_store(store)?.to_vec()))
    }

    /// Serializes the model at **full precision** — same layout as
    /// [`save_bytes`](Self::save_bytes) but the parameter payload is the
    /// raw `f32` shadow weights (magic `LTIX`).
    ///
    /// This is the mid-training *checkpoint* format: resuming training
    /// needs the exact shadow parameters the quantized forward is a view
    /// of, which the size-honest packed format deliberately discards.
    /// Loading via [`load_bytes_exact`](Self::load_bytes_exact) is
    /// bit-identical; the two formats reject each other's bytes.
    pub fn save_bytes_exact(&self) -> Result<Vec<u8>> {
        self.save_with(b"LTIX", |store| {
            Ok(lightts_nn::serialize::serialize_store_exact(store)?.to_vec())
        })
    }

    fn save_with(
        &self,
        magic: &[u8; 4],
        serialize: impl Fn(&lightts_nn::ParamStore) -> Result<Vec<u8>>,
    ) -> Result<Vec<u8>> {
        use bytes::BufMut;
        let mut buf = Vec::new();
        buf.put_slice(magic);
        buf.put_u16_le(1); // model-format version
                           // config
        buf.put_u32_le(self.config.blocks.len() as u32);
        for b in &self.config.blocks {
            buf.put_u32_le(b.layers as u32);
            buf.put_u32_le(b.filter_len as u32);
            buf.put_u8(b.bits);
        }
        buf.put_u32_le(self.config.filters as u32);
        buf.put_u32_le(self.config.in_dims as u32);
        buf.put_u32_le(self.config.in_len as u32);
        buf.put_u32_le(self.config.num_classes as u32);
        // batch-norm running statistics, block order
        for block in &self.blocks {
            let (mean, var) = block.bn.running_stats();
            for &m in mean {
                buf.put_f32_le(m);
            }
            for &v in var {
                buf.put_f32_le(v);
            }
        }
        // parameter store payload
        let store_bytes = serialize(&self.store)?;
        buf.put_u64_le(store_bytes.len() as u64);
        buf.put_slice(&store_bytes);
        Ok(buf)
    }

    /// Loads a model saved by [`InceptionTime::save_bytes`].
    pub fn load_bytes(bytes: &[u8]) -> Result<Self> {
        Self::load_with(bytes, b"LTIM", |payload| {
            Ok(lightts_nn::serialize::deserialize_store(payload)?)
        })
    }

    /// Loads an exact snapshot saved by
    /// [`save_bytes_exact`](Self::save_bytes_exact), bit-identically.
    pub fn load_bytes_exact(bytes: &[u8]) -> Result<Self> {
        Self::load_with(bytes, b"LTIX", |payload| {
            Ok(lightts_nn::serialize::deserialize_store_exact(payload)?)
        })
    }

    fn load_with(
        bytes: &[u8],
        expect_magic: &[u8; 4],
        deserialize: impl Fn(&[u8]) -> Result<lightts_nn::ParamStore>,
    ) -> Result<Self> {
        use bytes::Buf;
        let mut buf = bytes;
        let err = |what: &str| ModelError::BadConfig { what: format!("load: {what}") };
        if buf.remaining() < 10 {
            return Err(err("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != expect_magic {
            return Err(err("bad magic"));
        }
        if buf.get_u16_le() != 1 {
            return Err(err("unsupported version"));
        }
        let n_blocks = buf.get_u32_le() as usize;
        if n_blocks > 64 || buf.remaining() < n_blocks * 9 {
            return Err(err("bad block table"));
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let layers = buf.get_u32_le() as usize;
            let filter_len = buf.get_u32_le() as usize;
            let bits = buf.get_u8();
            blocks.push(BlockSpec { layers, filter_len, bits });
        }
        if buf.remaining() < 16 {
            return Err(err("truncated config"));
        }
        let config = InceptionConfig {
            blocks,
            filters: buf.get_u32_le() as usize,
            in_dims: buf.get_u32_le() as usize,
            in_len: buf.get_u32_le() as usize,
            num_classes: buf.get_u32_le() as usize,
        };
        // Sanity caps on untrusted sizes, before any allocation is sized
        // from them (a corrupted header must fail cleanly, not OOM).
        if config.blocks.iter().any(|b| b.layers > 256 || b.filter_len > 1 << 16)
            || config.filters > 1 << 16
            || config.in_dims > 1 << 16
            || config.in_len > 1 << 20
            || config.num_classes > 1 << 20
        {
            return Err(err("implausible configuration"));
        }
        // rebuild the structure deterministically, then overwrite its state
        let mut rng = seeded(0);
        let mut model = InceptionTime::new(config.clone(), &mut rng)?;
        for (bi, block) in model.blocks.iter_mut().enumerate() {
            let c = config.blocks[bi].layers * config.filters;
            if buf.remaining() < c * 8 {
                return Err(err("truncated batch-norm statistics"));
            }
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for m in &mut mean {
                *m = buf.get_f32_le();
            }
            for v in &mut var {
                *v = buf.get_f32_le();
            }
            block.bn.set_running_stats(&mean, &var)?;
        }
        if buf.remaining() < 8 {
            return Err(err("truncated store length"));
        }
        let store_len = buf.get_u64_le() as usize;
        if buf.remaining() != store_len {
            return Err(err("store length mismatch"));
        }
        let store = deserialize(buf)?;
        // the rebuilt model must agree with the stored parameters
        if store.len() != model.store.len() {
            return Err(err("parameter count mismatch"));
        }
        for ((_, a), (_, b)) in model.store.iter().zip(store.iter()) {
            if a.name != b.name || a.value.dims() != b.value.dims() || a.bits != b.bits {
                return Err(ModelError::BadConfig {
                    what: format!("load: parameter mismatch at {} vs {}", a.name, b.name),
                });
            }
        }
        model.store = store;
        Ok(model)
    }
}

impl Classifier for InceptionTime {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn predict_proba(&self, inputs: &Tensor) -> Result<Tensor> {
        Ok(self.logits(inputs)?.softmax_rows()?)
    }
}

/// Channel-wise concatenation of `[b, c_i, l]` tensors (inference path).
pub(crate) fn concat_channels_plain(parts: &[Tensor]) -> Result<Tensor> {
    let first =
        parts.first().ok_or_else(|| ModelError::BadConfig { what: "concat of nothing".into() })?;
    let (b, l) = (first.dims()[0], first.dims()[2]);
    let c_total: usize = parts.iter().map(|p| p.dims()[1]).sum();
    let mut out = vec![0.0f32; b * c_total * l];
    for bi in 0..b {
        let mut c_off = 0usize;
        for p in parts {
            let ci = p.dims()[1];
            let src = &p.data()[bi * ci * l..(bi + 1) * ci * l];
            let dst = (bi * c_total + c_off) * l;
            out[dst..dst + ci * l].copy_from_slice(src);
            c_off += ci;
        }
    }
    Ok(Tensor::from_vec(out, &[b, c_total, l])?)
}

/// Global average pooling `[b,c,l] → [b,c]` (inference path).
pub(crate) fn gap_plain(x: &Tensor) -> Result<Tensor> {
    let (b, c, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let mut out = vec![0.0f32; b * c];
    for bi in 0..b {
        for ci in 0..c {
            let off = (bi * c + ci) * l;
            out[bi * c + ci] = x.data()[off..off + l].iter().sum::<f32>() / l as f32;
        }
    }
    Ok(Tensor::from_vec(out, &[b, c])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightts_data::synth::{Generator, SynthConfig};

    fn tiny_config(classes: usize) -> InceptionConfig {
        InceptionConfig {
            blocks: vec![
                BlockSpec { layers: 2, filter_len: 8, bits: 32 },
                BlockSpec { layers: 2, filter_len: 4, bits: 32 },
            ],
            filters: 4,
            in_dims: 1,
            in_len: 24,
            num_classes: classes,
        }
    }

    fn tiny_data(classes: usize, n: usize, seed: u64) -> LabeledDataset {
        let gen = Generator::new(
            SynthConfig { classes, dims: 1, length: 24, difficulty: 0.1, waveforms: 3 },
            seed,
        );
        gen.split("tiny", n, seed + 1).unwrap()
    }

    #[test]
    fn analytic_size_matches_instantiated_store() {
        let mut rng = seeded(1);
        for bits in [4u8, 8, 16, 32] {
            let mut cfg = tiny_config(5);
            for b in &mut cfg.blocks {
                b.bits = bits;
            }
            let model = InceptionTime::new(cfg.clone(), &mut rng).unwrap();
            assert_eq!(cfg.size_bits(), model.size_bits(), "bits={bits}");
        }
    }

    #[test]
    fn lower_bits_give_smaller_models() {
        let cfg4 = {
            let mut c = tiny_config(5);
            c.blocks.iter_mut().for_each(|b| b.bits = 4);
            c
        };
        let cfg16 = {
            let mut c = tiny_config(5);
            c.blocks.iter_mut().for_each(|b| b.bits = 16);
            c
        };
        assert!(cfg4.size_bits() < cfg16.size_bits());
    }

    #[test]
    fn forward_shapes() {
        let mut rng = seeded(2);
        let model = InceptionTime::new(tiny_config(5), &mut rng).unwrap();
        let x = Tensor::ones(&[3, 1, 24]);
        let logits = model.logits(&x).unwrap();
        assert_eq!(logits.dims(), &[3, 5]);
        let probs = model.predict_proba(&x).unwrap();
        for r in 0..3 {
            let s: f32 = probs.row(r).unwrap().data().iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn kernels_are_capped_at_series_length() {
        let spec = BlockSpec { layers: 2, filter_len: 160, bits: 32 };
        assert_eq!(spec.kernel(0, 24), 24);
        assert_eq!(spec.kernel(1, 24), 24); // 80 capped
        assert_eq!(spec.kernel(5, 24), 5); // 160>>5 = 5
        assert_eq!(spec.kernel(30, 24), 1); // floor at 1
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let mut rng = seeded(3);
        let mut model = InceptionTime::new(tiny_config(3), &mut rng).unwrap();
        let train = tiny_data(3, 48, 10);
        let cfg = TrainConfig { epochs: 25, batch_size: 16, lr: 0.01, adam: true, seed: 5 };

        // untrained accuracy ≈ chance
        let batch = train.full_batch().unwrap();
        let probs0 = model.predict_proba(&batch.inputs).unwrap();
        let acc0 = crate::metrics::accuracy(&probs0, &batch.labels).unwrap();

        let loss = model.fit(&train, &cfg).unwrap();
        assert!(loss < 1.0f32, "final loss {loss}");

        let probs1 = model.predict_proba(&batch.inputs).unwrap();
        let acc1 = crate::metrics::accuracy(&probs1, &batch.labels).unwrap();
        assert!(acc1 > acc0.max(0.5), "training did not help: {acc0} -> {acc1}");
    }

    #[test]
    fn quantized_student_still_learns() {
        let mut rng = seeded(4);
        let mut cfg = tiny_config(2);
        cfg.blocks.iter_mut().for_each(|b| b.bits = 8);
        let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
        let train = tiny_data(2, 32, 20);
        let tc = TrainConfig { epochs: 20, batch_size: 16, lr: 0.01, adam: true, seed: 6 };
        model.fit(&train, &tc).unwrap();
        let batch = train.full_batch().unwrap();
        let probs = model.predict_proba(&batch.inputs).unwrap();
        let acc = crate::metrics::accuracy(&probs, &batch.labels).unwrap();
        assert!(acc > 0.7, "8-bit student training accuracy {acc}");
    }

    #[test]
    fn config_validation() {
        let mut rng = seeded(5);
        let mut cfg = tiny_config(3);
        cfg.blocks.clear();
        assert!(InceptionTime::new(cfg, &mut rng).is_err());
        let mut cfg = tiny_config(3);
        cfg.blocks[0].bits = 0;
        assert!(InceptionTime::new(cfg, &mut rng).is_err());
        let mut cfg = tiny_config(3);
        cfg.filters = 0;
        assert!(InceptionTime::new(cfg, &mut rng).is_err());
    }

    #[test]
    fn teacher_config_matches_paper_defaults() {
        let cfg = InceptionConfig::teacher(1, 100, 10, 8);
        assert_eq!(cfg.blocks.len(), 3);
        assert!(cfg.blocks.iter().all(|b| b.layers == 3 && b.filter_len == 40 && b.bits == 32));
        let student = InceptionConfig::student(1, 100, 10, 8, 4);
        assert!(student.blocks.iter().all(|b| b.bits == 4));
        assert!(student.size_bits() < cfg.size_bits());
    }

    #[test]
    fn save_load_roundtrip_preserves_inference() {
        let mut rng = seeded(8);
        let mut cfg = tiny_config(3);
        cfg.blocks.iter_mut().for_each(|b| b.bits = 4);
        let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
        // train briefly so BN running stats are non-trivial
        let train = tiny_data(3, 24, 40);
        let tc = TrainConfig { epochs: 4, batch_size: 12, lr: 0.01, adam: true, seed: 9 };
        model.fit(&train, &tc).unwrap();

        let bytes = model.save_bytes().unwrap();
        let loaded = InceptionTime::load_bytes(&bytes).unwrap();
        let x = train.full_batch().unwrap().inputs;
        let p1 = model.predict_proba(&x).unwrap();
        let p2 = loaded.predict_proba(&x).unwrap();
        for (a, b) in p1.data().iter().zip(p2.data().iter()) {
            assert!((a - b).abs() < 1e-5, "inference differs after reload");
        }
        assert_eq!(loaded.size_bits(), model.size_bits());
    }

    #[test]
    fn save_bytes_reflect_bit_width() {
        let mut rng = seeded(9);
        let mut size_of = |bits: u8| {
            let mut cfg = tiny_config(3);
            cfg.blocks.iter_mut().for_each(|b| b.bits = bits);
            let model = InceptionTime::new(cfg, &mut rng).unwrap();
            model.save_bytes().unwrap().len()
        };
        let s4 = size_of(4);
        let s32 = size_of(32);
        assert!(s4 * 2 < s32, "4-bit export {s4}B should be well below 32-bit {s32}B");
    }

    #[test]
    fn exact_snapshot_roundtrips_bit_identically_and_rejects_packed() {
        let mut rng = seeded(12);
        let mut cfg = tiny_config(3);
        cfg.blocks.iter_mut().for_each(|b| b.bits = 4);
        let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
        let train = tiny_data(3, 24, 40);
        let tc = TrainConfig { epochs: 2, batch_size: 12, lr: 0.01, adam: true, seed: 9 };
        model.fit(&train, &tc).unwrap();

        let bytes = model.save_bytes_exact().unwrap();
        let loaded = InceptionTime::load_bytes_exact(&bytes).unwrap();
        // the full-precision shadow parameters survive exactly — this is
        // what lets a resumed training run continue bit-identically
        for ((_, a), (_, b)) in model.store().iter().zip(loaded.store().iter()) {
            assert_eq!(a.bits, b.bits);
            for (x, y) in a.value.data().iter().zip(b.value.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{} differs after exact reload", a.name);
            }
        }
        let x = train.full_batch().unwrap().inputs;
        let p1 = model.predict_proba(&x).unwrap();
        let p2 = loaded.predict_proba(&x).unwrap();
        for (a, b) in p1.data().iter().zip(p2.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "inference differs after exact reload");
        }
        // the two formats must not be confusable
        assert!(InceptionTime::load_bytes_exact(&model.save_bytes().unwrap()).is_err());
        assert!(InceptionTime::load_bytes(&bytes).is_err());
    }

    #[test]
    fn load_rejects_corruption() {
        let mut rng = seeded(10);
        let model = InceptionTime::new(tiny_config(2), &mut rng).unwrap();
        let bytes = model.save_bytes().unwrap();
        assert!(InceptionTime::load_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(InceptionTime::load_bytes(&bad).is_err());
        let mut extra = bytes;
        extra.push(7);
        assert!(InceptionTime::load_bytes(&extra).is_err());
    }

    #[test]
    fn multivariate_input_works() {
        let mut rng = seeded(6);
        let mut cfg = tiny_config(4);
        cfg.in_dims = 3;
        let model = InceptionTime::new(cfg, &mut rng).unwrap();
        let x = Tensor::ones(&[2, 3, 24]);
        assert_eq!(model.logits(&x).unwrap().dims(), &[2, 4]);
    }
}
