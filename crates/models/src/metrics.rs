//! Evaluation metrics (paper Section 4.1.2): Accuracy and Top-5 Accuracy.

use crate::{ModelError, Result};
use lightts_tensor::Tensor;

/// Fraction of rows whose highest-probability class equals the label.
pub fn accuracy(probs: &Tensor, labels: &[usize]) -> Result<f64> {
    top_k_accuracy(probs, labels, 1)
}

/// Fraction of rows whose label is among the `k` highest-probability
/// classes. The paper reports `k = 5` for many-class datasets.
///
/// If a dataset has at most `k` classes the metric saturates at 1.0, as the
/// paper observes for the 8-class `UWave`.
pub fn top_k_accuracy(probs: &Tensor, labels: &[usize], k: usize) -> Result<f64> {
    if probs.rank() != 2 {
        return Err(ModelError::BadConfig { what: "top_k_accuracy expects [batch, k]".into() });
    }
    let (b, classes) = (probs.dims()[0], probs.dims()[1]);
    if labels.len() != b {
        return Err(ModelError::BadConfig {
            what: format!("labels length {} != batch {b}", labels.len()),
        });
    }
    if k == 0 {
        return Err(ModelError::BadConfig { what: "k must be positive".into() });
    }
    let mut hits = 0usize;
    for (bi, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(ModelError::BadConfig {
                what: format!("label {label} out of {classes} classes"),
            });
        }
        let row = &probs.data()[bi * classes..(bi + 1) * classes];
        let target_p = row[label];
        // rank of the label = number of classes with strictly higher prob
        let higher = row.iter().filter(|&&p| p > target_p).count();
        if higher < k {
            hits += 1;
        }
    }
    Ok(hits as f64 / b as f64)
}

/// A confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from predicted distributions and true labels.
    pub fn from_probs(probs: &Tensor, labels: &[usize]) -> Result<Self> {
        if probs.rank() != 2 {
            return Err(ModelError::BadConfig { what: "confusion expects [batch, k]".into() });
        }
        let (b, k) = (probs.dims()[0], probs.dims()[1]);
        if labels.len() != b {
            return Err(ModelError::BadConfig {
                what: format!("labels length {} != batch {b}", labels.len()),
            });
        }
        let mut counts = vec![vec![0usize; k]; k];
        for (bi, &label) in labels.iter().enumerate() {
            if label >= k {
                return Err(ModelError::BadConfig {
                    what: format!("label {label} out of {k} classes"),
                });
            }
            let row = Tensor::from_vec(probs.data()[bi * k..(bi + 1) * k].to_vec(), &[k])?;
            counts[label][row.argmax()?] += 1;
        }
        Ok(ConfusionMatrix { counts })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of series with true class `t` predicted as class `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Per-class recall (diagonal over row sums; 0 for absent classes).
    pub fn recall(&self) -> Vec<f64> {
        self.counts
            .iter()
            .enumerate()
            .map(|(t, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    0.0
                } else {
                    row[t] as f64 / total as f64
                }
            })
            .collect()
    }

    /// Per-class precision (diagonal over column sums; 0 for never-predicted
    /// classes).
    pub fn precision(&self) -> Vec<f64> {
        let k = self.counts.len();
        (0..k)
            .map(|p| {
                let col: usize = self.counts.iter().map(|row| row[p]).sum();
                if col == 0 {
                    0.0
                } else {
                    self.counts[p][p] as f64 / col as f64
                }
            })
            .collect()
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let trace: usize = self.counts.iter().enumerate().map(|(i, r)| r[i]).sum();
        trace as f64 / total as f64
    }
}

/// Mean per-class (balanced) accuracy; robust to class imbalance.
pub fn balanced_accuracy(probs: &Tensor, labels: &[usize]) -> Result<f64> {
    let (b, classes) = (probs.dims()[0], probs.dims()[1]);
    if labels.len() != b {
        return Err(ModelError::BadConfig {
            what: format!("labels length {} != batch {b}", labels.len()),
        });
    }
    let mut correct = vec![0usize; classes];
    let mut total = vec![0usize; classes];
    for (bi, &label) in labels.iter().enumerate() {
        total[label] += 1;
        let row =
            Tensor::from_vec(probs.data()[bi * classes..(bi + 1) * classes].to_vec(), &[classes])?;
        if row.argmax()? == label {
            correct[label] += 1;
        }
    }
    let mut acc = 0.0f64;
    let mut seen = 0usize;
    for c in 0..classes {
        if total[c] > 0 {
            acc += correct[c] as f64 / total[c] as f64;
            seen += 1;
        }
    }
    Ok(if seen > 0 { acc / seen as f64 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs3() -> Tensor {
        // row 0: best class 2; row 1: best class 0; row 2: best class 1
        Tensor::from_vec(vec![0.1, 0.2, 0.7, 0.6, 0.3, 0.1, 0.2, 0.5, 0.3], &[3, 3]).unwrap()
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let p = probs3();
        assert_eq!(accuracy(&p, &[2, 0, 1]).unwrap(), 1.0);
        assert!((accuracy(&p, &[2, 0, 0]).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&p, &[0, 1, 2]).unwrap(), 0.0);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let p = probs3();
        let labels = [1usize, 1, 0];
        let a1 = top_k_accuracy(&p, &labels, 1).unwrap();
        let a2 = top_k_accuracy(&p, &labels, 2).unwrap();
        let a3 = top_k_accuracy(&p, &labels, 3).unwrap();
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a3, 1.0);
    }

    #[test]
    fn top5_saturates_for_few_classes() {
        // UWave effect: ≤5 classes ⇒ top-5 accuracy is always 1.0
        let p = Tensor::full(&[4, 3], 1.0 / 3.0);
        assert_eq!(top_k_accuracy(&p, &[0, 1, 2, 0], 5).unwrap(), 1.0);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let p = probs3();
        assert!(top_k_accuracy(&p, &[0, 0], 1).is_err());
        assert!(top_k_accuracy(&p, &[0, 0, 9], 1).is_err());
        assert!(top_k_accuracy(&p, &[0, 0, 0], 0).is_err());
    }

    #[test]
    fn confusion_matrix_counts_and_derived_metrics() {
        // rows: true 0 predicted 0; true 0 predicted 1; true 1 predicted 1
        let p = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.3, 0.7], &[3, 2]).unwrap();
        let cm = ConfusionMatrix::from_probs(&p, &[0, 0, 1]).unwrap();
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 1);
        assert_eq!(cm.get(1, 0), 0);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        let recall = cm.recall();
        assert!((recall[0] - 0.5).abs() < 1e-12);
        assert!((recall[1] - 1.0).abs() < 1e-12);
        let precision = cm.precision();
        assert!((precision[0] - 1.0).abs() < 1e-12);
        assert!((precision[1] - 0.5).abs() < 1e-12);
        // consistency with the accuracy() metric
        assert!((cm.accuracy() - accuracy(&p, &[0, 0, 1]).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_rejects_bad_input() {
        let p = Tensor::full(&[2, 2], 0.5);
        assert!(ConfusionMatrix::from_probs(&p, &[0]).is_err());
        assert!(ConfusionMatrix::from_probs(&p, &[0, 5]).is_err());
    }

    #[test]
    fn balanced_accuracy_weights_classes_equally() {
        // 3 rows of class 0 (all correct), 1 row of class 1 (wrong)
        let p = Tensor::from_vec(vec![0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1], &[4, 2]).unwrap();
        let labels = [0usize, 0, 0, 1];
        let plain = accuracy(&p, &labels).unwrap();
        let balanced = balanced_accuracy(&p, &labels).unwrap();
        assert!((plain - 0.75).abs() < 1e-12);
        assert!((balanced - 0.5).abs() < 1e-12);
    }
}
