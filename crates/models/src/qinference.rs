//! True int8 compiled inference for InceptionTime models.
//!
//! [`QuantizedPlan`] is the deployment-side sibling of
//! [`InferencePlan`](crate::inference::InferencePlan). Where the f32 plan
//! hoists fake-quantized f32 weights, this plan stores every conv / FC
//! weight as real `i8` codes with per-output-channel scales
//! ([`QuantizedMatrix`]) and executes the convolutions and the FC head in
//! pure integer arithmetic (`i8×i8→i32` via
//! [`lightts_tensor::simd::qgemm_i8t`]), dequantizing once per layer.
//!
//! Per forward pass and per sample, activations are re-quantized
//! dynamically: an [`ActQuant`] affine is fitted to each sample's activation
//! range at every block input (and at the pooled features before the FC
//! head), so no calibration dataset is needed and the f32 elementwise tail
//! of each layer (bias, folded batch-norm, ReLU, global average pooling,
//! softmax) is reused unchanged from the f32 plan's algorithms.
//!
//! # Numerics & determinism
//!
//! The i8 path is *approximate* with respect to the f32 plan — quantizing
//! weights to 8 bits and activations per sample perturbs logits — and the
//! contract is the **parity gate** in `tests/quantized_parity.rs`: argmax
//! agreement with the f32 plan on ≥ 99% of golden-fixture samples inside a
//! pinned logit tolerance (`docs/NUMERICS.md`, "Quantized inference").
//!
//! In exchange the path sits in the strongest determinism class: integer
//! accumulation is exact and every f32 step is element-wise scalar code, so
//! quantized inference is **bitwise identical across SIMD backends, thread
//! counts, and batch splits** — per-sample quantization means a sample's
//! codes never depend on its batch neighbours.
//!
//! Scratch discipline matches the f32 plan: f32 buffers come from the
//! thread-local [`pool`] and are recycled on drop;
//! the i8/i32 buffers (which the pool does not serve) are plan-owned and
//! grow-only. Steady-state forwards allocate nothing.

use crate::{ModelError, Result};
use lightts_obs::Histogram;
use lightts_tensor::qint::{qconv1d_same_into, ActQuant, QuantizedMatrix};
use lightts_tensor::{pool, simd, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// One compiled int8 convolution layer.
#[derive(Debug, Clone)]
pub(crate) struct QPlanConv {
    /// Quantized filter bank, flattened `[filters, cin·kernel]`.
    pub(crate) weight: QuantizedMatrix,
    /// Filter length (needed to rebuild patch rows).
    pub(crate) kernel: usize,
    /// Bias in f32, one entry per output channel (added after dequant).
    pub(crate) bias: Vec<f32>,
}

/// One compiled int8 Inception block: parallel quantized convolutions plus
/// the folded batch-norm affine (f32, identical to the f32 plan's).
#[derive(Debug, Clone)]
pub(crate) struct QPlanBlock {
    pub(crate) convs: Vec<QPlanConv>,
    pub(crate) bn_scale: Vec<f32>,
    pub(crate) bn_shift: Vec<f32>,
}

/// Reusable scratch. The f32 buffers are pool-backed (recycled on drop,
/// like the f32 plan's); the integer buffers are plan-owned grow-only Vecs
/// because the buffer pool only serves f32 slabs. Either way, nothing is
/// allocated in steady state.
#[derive(Debug, Clone, Default)]
struct QScratch {
    /// Current block input `[batch, c, l]` (f32, pool-backed).
    a: Vec<f32>,
    /// Next block output `[batch, c', l]` (f32, pool-backed).
    b: Vec<f32>,
    /// Pooled features `[batch, c_last]` (f32, pool-backed).
    pooled: Vec<f32>,
    /// One sample's quantized activation codes (grow-only).
    qx: Vec<i8>,
    /// im2row patch rows for one sample (grow-only).
    patch: Vec<i8>,
    /// Integer accumulators for one sample's conv / FC output (grow-only).
    acc: Vec<i32>,
}

impl Drop for QScratch {
    fn drop(&mut self) {
        for v in [&mut self.a, &mut self.b, &mut self.pooled] {
            pool::recycle(std::mem::take(v));
        }
    }
}

/// Grows a pool-backed f32 buffer to hold at least `n` elements (same
/// contract as the f32 plan's helper: callers fully overwrite what they
/// read).
fn ensure_f32(v: &mut Vec<f32>, n: usize) {
    if v.capacity() < n {
        let fresh = pool::take_empty(n);
        pool::recycle(std::mem::replace(v, fresh));
    }
    if v.len() < n {
        v.resize(n, 0.0);
    }
}

/// A compiled, tape-free, allocation-free **int8** inference pass over an
/// [`InceptionTime`](crate::inception::InceptionTime) model.
///
/// Build one with
/// [`InceptionTime::compile_quantized`](crate::inception::InceptionTime::compile_quantized)
/// (which requires every quantized layer to have been configured with
/// bit-width ≤ 8, and fails with [`ModelError::UnsupportedPlan`] otherwise),
/// then call [`predict_proba_into`](Self::predict_proba_into) per request,
/// exactly like the f32 plan.
#[derive(Debug, Clone)]
pub struct QuantizedPlan {
    blocks: Vec<QPlanBlock>,
    /// Quantized FC weight `[num_classes, fc_in]` (transposed at compile so
    /// the reduction axis is contiguous for the integer kernels).
    fc_weight: QuantizedMatrix,
    fc_bias: Vec<f32>,
    fc_in: usize,
    in_dims: usize,
    in_len: usize,
    num_classes: usize,
    scratch: QScratch,
    /// Per-forward wall-clock histogram (`inference.forward_i8_ns`),
    /// resolved once at compile time.
    forward_ns: Arc<Histogram>,
}

impl QuantizedPlan {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        blocks: Vec<QPlanBlock>,
        fc_weight: QuantizedMatrix,
        fc_bias: Vec<f32>,
        fc_in: usize,
        in_dims: usize,
        in_len: usize,
        num_classes: usize,
    ) -> Self {
        QuantizedPlan {
            blocks,
            fc_weight,
            fc_bias,
            fc_in,
            in_dims,
            in_len,
            num_classes,
            scratch: QScratch::default(),
            forward_ns: lightts_obs::global().histogram("inference.forward_i8_ns"),
        }
    }

    /// Input dimensionality `M` each sample must have.
    pub fn in_dims(&self) -> usize {
        self.in_dims
    }

    /// Series length each sample must have.
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Number of scalars one sample occupies (`in_dims · in_len`).
    pub fn sample_len(&self) -> usize {
        self.in_dims * self.in_len
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Heap bytes of quantized weight storage (codes + per-channel
    /// metadata), the number compared against the f32 plan's `4 ·
    /// parameter-count` in the README size table.
    pub fn weight_bytes(&self) -> usize {
        let conv: usize = self
            .blocks
            .iter()
            .flat_map(|b| b.convs.iter())
            .map(|c| c.weight.size_bytes() + c.bias.len() * 4)
            .sum();
        let bn: usize = self.blocks.iter().map(|b| (b.bn_scale.len() + b.bn_shift.len()) * 4).sum();
        conv + bn + self.fc_weight.size_bytes() + self.fc_bias.len() * 4
    }

    /// Computes logits for a `[batch, in_dims, in_len]` slice of inputs into
    /// `out` (resized to `batch · num_classes`).
    ///
    /// Approximate with respect to the f32 plan (see the parity gate), but
    /// bitwise reproducible across backends, thread counts, and batch
    /// splits for identical sample bytes.
    pub fn logits_into(&mut self, inputs: &[f32], batch: usize, out: &mut Vec<f32>) -> Result<()> {
        let t0 = Instant::now();
        let _prof = lightts_obs::prof::scope("qplan.forward");
        let l = self.in_len;
        if batch == 0 {
            return Err(ModelError::BadConfig { what: "inference: empty batch".into() });
        }
        if inputs.len() != batch * self.in_dims * l {
            return Err(ModelError::BadConfig {
                what: format!(
                    "inference: input length {} != batch {batch} × {} × {l}",
                    inputs.len(),
                    self.in_dims
                ),
            });
        }

        let scratch = &mut self.scratch;
        let mut cin = self.in_dims;
        ensure_f32(&mut scratch.a, batch * cin * l);
        scratch.a[..batch * cin * l].copy_from_slice(inputs);

        for block in &self.blocks {
            let filters = block.convs[0].weight.rows();
            let c_total = block.convs.len() * filters;
            ensure_f32(&mut scratch.b, batch * c_total * l);
            if scratch.qx.len() < cin * l {
                scratch.qx.resize(cin * l, 0);
            }
            if scratch.acc.len() < filters * l {
                scratch.acc.resize(filters * l, 0);
            }
            for bi in 0..batch {
                // Per-sample dynamic activation quantization: codes depend
                // only on this sample's bytes, never on batch neighbours.
                let x_b = &scratch.a[bi * cin * l..(bi + 1) * cin * l];
                let aq = ActQuant::fit(x_b);
                aq.quantize_into(x_b, &mut scratch.qx[..cin * l]);
                for (j, conv) in block.convs.iter().enumerate() {
                    qconv1d_same_into(
                        &mut scratch.acc[..filters * l],
                        &mut scratch.patch,
                        &scratch.qx[..cin * l],
                        cin,
                        l,
                        &conv.weight,
                        conv.kernel,
                        aq.zero_point,
                    )?;
                    // Dequantize + bias, scattered into the channel-
                    // concatenated layout — the i8 analogue of the f32
                    // plan's conv-scatter loop. Fixed scalar rounding
                    // sequence: combined scale, subtract zero-point
                    // correction, multiply, add bias.
                    let zp = i32::from(aq.zero_point);
                    for ci in 0..filters {
                        let s = aq.scale * conv.weight.scales()[ci];
                        let corr = zp * conv.weight.row_sums()[ci];
                        let bias_v = conv.bias[ci];
                        let dst = (bi * c_total + j * filters + ci) * l;
                        for (o, &acc) in scratch.b[dst..dst + l]
                            .iter_mut()
                            .zip(&scratch.acc[ci * l..(ci + 1) * l])
                        {
                            *o = (acc - corr) as f32 * s + bias_v;
                        }
                    }
                }
            }
            // Folded batch-norm affine + ReLU, identical to the f32 plan.
            for bi in 0..batch {
                for ci in 0..c_total {
                    let scale = block.bn_scale[ci];
                    let shift = block.bn_shift[ci];
                    let off = (bi * c_total + ci) * l;
                    for v in &mut scratch.b[off..off + l] {
                        let t = *v * scale + shift;
                        *v = t.max(0.0);
                    }
                }
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
            cin = c_total;
        }

        // Global average pooling, identical summation order to the f32 plan.
        ensure_f32(&mut scratch.pooled, batch * cin);
        for bi in 0..batch {
            for ci in 0..cin {
                let off = (bi * cin + ci) * l;
                scratch.pooled[bi * cin + ci] =
                    scratch.a[off..off + l].iter().sum::<f32>() / l as f32;
            }
        }

        // Quantized FC head: per-sample quantization of the pooled features,
        // integer matrix-vector product, dequant + bias.
        let nc = self.num_classes;
        let fin = self.fc_in;
        out.resize(batch * nc, 0.0);
        if scratch.qx.len() < fin {
            scratch.qx.resize(fin, 0);
        }
        if scratch.acc.len() < nc {
            scratch.acc.resize(nc, 0);
        }
        for bi in 0..batch {
            let p = &scratch.pooled[bi * fin..(bi + 1) * fin];
            let aq = ActQuant::fit(p);
            aq.quantize_into(p, &mut scratch.qx[..fin]);
            simd::qgemm_i8t(
                &mut scratch.acc[..nc],
                self.fc_weight.data(),
                &scratch.qx[..fin],
                nc,
                fin,
                1,
            );
            let zp = i32::from(aq.zero_point);
            for ci in 0..nc {
                let s = aq.scale * self.fc_weight.scales()[ci];
                let corr = zp * self.fc_weight.row_sums()[ci];
                out[bi * nc + ci] = (scratch.acc[ci] - corr) as f32 * s + self.fc_bias[ci];
            }
        }
        self.forward_ns.record_duration(t0.elapsed());
        Ok(())
    }

    /// Computes class probabilities (softmax over the i8-path logits) into
    /// `out`, via the same canonical softmax family as every other path
    /// (`simd::log_softmax_row` + `simd::vec_exp`).
    pub fn predict_proba_into(
        &mut self,
        inputs: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.logits_into(inputs, batch, out)?;
        let nc = self.num_classes;
        for row in out.chunks_exact_mut(nc) {
            simd::log_softmax_row(row);
            simd::vec_exp(row);
        }
        Ok(())
    }

    /// Convenience wrapper returning probabilities as a `[batch, classes]`
    /// tensor (allocates; tests and non-hot-path callers).
    pub fn predict_proba(&mut self, inputs: &Tensor) -> Result<Tensor> {
        if inputs.rank() != 3 {
            return Err(ModelError::BadConfig {
                what: format!(
                    "inference: expected [batch, dims, len] input, rank {}",
                    inputs.rank()
                ),
            });
        }
        let batch = inputs.dims()[0];
        let mut out = Vec::new();
        self.predict_proba_into(inputs.data(), batch, &mut out)?;
        Ok(Tensor::from_vec(out, &[batch, self.num_classes])?)
    }
}

#[cfg(test)]
mod tests {
    use crate::inception::{BlockSpec, InceptionConfig, InceptionTime};
    use crate::ModelError;
    use lightts_tensor::rng::seeded;
    use lightts_tensor::tape::tapes_created;
    use lightts_tensor::Tensor;

    fn build_model(bits: u8) -> InceptionTime {
        let cfg = InceptionConfig {
            blocks: vec![
                BlockSpec { layers: 2, filter_len: 8, bits },
                BlockSpec { layers: 3, filter_len: 4, bits },
            ],
            filters: 4,
            in_dims: 2,
            in_len: 20,
            num_classes: 5,
        };
        let mut rng = seeded(11);
        let mut model = InceptionTime::new(cfg, &mut rng).unwrap();
        let stats: Vec<(Vec<f32>, Vec<f32>)> = model
            .bn_channel_counts()
            .iter()
            .map(|&c| {
                let mean: Vec<f32> = (0..c).map(|i| 0.05 * i as f32 - 0.1).collect();
                let var: Vec<f32> = (0..c).map(|i| 0.5 + 0.03 * i as f32).collect();
                (mean, var)
            })
            .collect();
        for (i, (mean, var)) in stats.iter().enumerate() {
            model.set_bn_running_stats(i, mean, var).unwrap();
        }
        model
    }

    fn test_inputs(batch: usize, dims: usize, len: usize) -> Tensor {
        let data: Vec<f32> = (0..batch * dims * len)
            .map(|i| ((i as u64 * 2_654_435_761) % 1000) as f32 / 500.0 - 1.0)
            .collect();
        Tensor::from_vec(data, &[batch, dims, len]).unwrap()
    }

    #[test]
    fn quantized_plan_tracks_f32_argmax() {
        let model = build_model(8);
        let mut f32_plan = model.compile().unwrap();
        let mut i8_plan = model.compile_quantized().unwrap();
        let x = test_inputs(8, 2, 20);
        let reference = f32_plan.predict_proba(&x).unwrap();
        let got = i8_plan.predict_proba(&x).unwrap();
        assert_eq!(reference.dims(), got.dims());
        let nc = 5;
        let mut agree = 0;
        for bi in 0..8 {
            let argmax = |d: &[f32]| {
                d.iter()
                    .enumerate()
                    .fold((0, f32::MIN), |m, (i, &v)| if v > m.1 { (i, v) } else { m })
                    .0
            };
            if argmax(&reference.data()[bi * nc..(bi + 1) * nc])
                == argmax(&got.data()[bi * nc..(bi + 1) * nc])
            {
                agree += 1;
            }
        }
        assert!(agree >= 7, "i8 plan agreed on only {agree}/8 argmaxes");
    }

    #[test]
    fn quantized_plan_is_batch_invariant_bitwise() {
        let model = build_model(8);
        let mut plan = model.compile_quantized().unwrap();
        let x = test_inputs(6, 2, 20);
        let mut batched = Vec::new();
        plan.predict_proba_into(x.data(), 6, &mut batched).unwrap();
        let sample = 2 * 20;
        for bi in 0..6 {
            let mut single = Vec::new();
            plan.predict_proba_into(&x.data()[bi * sample..(bi + 1) * sample], 1, &mut single)
                .unwrap();
            for (a, b) in batched[bi * 5..(bi + 1) * 5].iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "sample {bi}");
            }
        }
    }

    #[test]
    fn quantized_plan_is_tape_free() {
        let model = build_model(8);
        let mut plan = model.compile_quantized().unwrap();
        let x = test_inputs(4, 2, 20);
        plan.predict_proba(&x).unwrap();
        let before = tapes_created();
        for _ in 0..10 {
            plan.predict_proba(&x).unwrap();
        }
        assert_eq!(tapes_created(), before, "quantized inference constructed a Tape");
    }

    #[test]
    fn quantized_plan_is_pool_miss_free_after_warmup() {
        use lightts_tensor::pool::thread_pool_misses;
        let model = build_model(8);
        let mut plan = model.compile_quantized().unwrap();
        let x = test_inputs(3, 2, 20);
        let mut out = Vec::new();
        plan.logits_into(x.data(), 3, &mut out).unwrap();
        let before = thread_pool_misses();
        for _ in 0..10 {
            plan.logits_into(x.data(), 3, &mut out).unwrap();
        }
        assert_eq!(
            thread_pool_misses(),
            before,
            "steady-state quantized inference allocated fresh pool slabs"
        );
    }

    #[test]
    fn quantized_plan_shrinks_weight_storage() {
        let model = build_model(8);
        let plan = model.compile_quantized().unwrap();
        // The f32 plan stores 4 bytes per conv/FC weight code plus the same
        // f32 bias/BN vectors. The i8 plan's codes + per-channel metadata
        // must undercut that by at least 2× even on this tiny model
        // (larger models approach the full 4×).
        let codes: usize = plan
            .blocks
            .iter()
            .flat_map(|b| b.convs.iter())
            .map(|c| c.weight.data().len())
            .sum::<usize>()
            + plan.fc_weight.data().len();
        let aux: usize =
            plan.blocks.iter().map(|b| (b.bn_scale.len() + b.bn_shift.len()) * 4).sum::<usize>()
                + plan
                    .blocks
                    .iter()
                    .flat_map(|b| b.convs.iter())
                    .map(|c| c.bias.len() * 4)
                    .sum::<usize>()
                + plan.fc_bias.len() * 4;
        let f32_total = 4 * codes + aux;
        let i8_total = plan.weight_bytes();
        assert!(i8_total * 2 < f32_total, "no storage win: {i8_total} vs {f32_total} bytes");
    }

    #[test]
    fn high_bit_models_cannot_compile_quantized() {
        for bits in [16u8, 32] {
            let model = build_model(bits);
            match model.compile_quantized() {
                Err(ModelError::UnsupportedPlan { .. }) => {}
                other => panic!("bits={bits}: expected UnsupportedPlan, got {other:?}"),
            }
        }
    }

    #[test]
    fn quantized_plan_rejects_bad_input_lengths() {
        let model = build_model(8);
        let mut plan = model.compile_quantized().unwrap();
        let mut out = Vec::new();
        assert!(plan.logits_into(&[0.0; 7], 1, &mut out).is_err());
        assert!(plan.logits_into(&[], 0, &mut out).is_err());
    }
}
